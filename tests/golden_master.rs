//! Golden-master regression pins: exact metric values for fixed
//! (workload, mechanism, seed) triples.
//!
//! These WILL break whenever simulator behaviour changes — that is the
//! point: any timing, protocol, or policy change must be a conscious
//! decision, visible in the diff that updates these constants. Update them
//! by running `cargo test --test golden_master -- --nocapture` and copying
//! the printed actuals after confirming the change is intended.

use puno_repro::prelude::*;

fn run(mech: Mechanism) -> RunMetrics {
    run_workload(mech, &micro::hotspot(10), 12345)
}

#[test]
fn golden_hotspot_baseline() {
    let m = run(Mechanism::Baseline);
    let got = (
        m.cycles,
        m.committed,
        m.htm.aborts.get(),
        m.traffic_router_traversals,
        m.oracle.false_abort_episodes,
    );
    println!("baseline golden: {got:?}");
    assert_eq!(got.1, 160, "commit count is workload-determined");
    // Pin the rest loosely enough to survive platform FP differences (there
    // are none — all integer) but exactly enough to catch logic drift.
    assert_eq!(
        (got.0, got.2, got.3, got.4),
        GOLDEN_BASELINE,
        "update golden after intentional changes"
    );
}

#[test]
fn golden_hotspot_puno() {
    let m = run(Mechanism::Puno);
    let got = (
        m.cycles,
        m.committed,
        m.htm.aborts.get(),
        m.traffic_router_traversals,
        m.oracle.false_abort_episodes,
    );
    println!("puno golden: {got:?}");
    assert_eq!(got.1, 160);
    assert_eq!(
        (got.0, got.2, got.3, got.4),
        GOLDEN_PUNO,
        "update golden after intentional changes"
    );
}

// (cycles, aborts, router traversals, false-abort episodes)
// Note the story these four numbers tell: PUNO commits identical work in
// 8% fewer cycles, with 16% fewer aborts, 20% less traffic, and 76% fewer
// false-aborting episodes.
const GOLDEN_BASELINE: (u64, u64, u64, u64) = (87076, 1605, 157736, 500);
const GOLDEN_PUNO: (u64, u64, u64, u64) = (79951, 1343, 126322, 121);
