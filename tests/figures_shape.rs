//! Shape tests for the paper's headline results, at reduced scale so the
//! suite stays fast. These pin the *qualitative* claims (who wins, in which
//! regime), not exact magnitudes.

use puno_repro::prelude::*;

const SCALE: f64 = 0.15;
const SEED: u64 = 1;

fn run(w: WorkloadId, m: Mechanism) -> RunMetrics {
    run_workload(m, &w.params().scaled(SCALE), SEED)
}

#[test]
fn baseline_exhibits_false_aborting_in_high_contention() {
    // Section II-C: a sizable share of transactional GETX incur false
    // aborting in contended workloads.
    for w in [
        WorkloadId::Bayes,
        WorkloadId::Intruder,
        WorkloadId::Labyrinth,
    ] {
        let m = run(w, Mechanism::Baseline);
        assert!(
            m.oracle.false_abort_fraction() > 0.03,
            "{}: false-abort fraction {:.3} too small",
            w.name(),
            m.oracle.false_abort_fraction()
        );
    }
}

#[test]
fn low_contention_workloads_have_negligible_false_aborting() {
    for w in [WorkloadId::Genome, WorkloadId::Ssca2] {
        let m = run(w, Mechanism::Baseline);
        assert!(
            m.oracle.false_abort_fraction() < 0.05,
            "{}: unexpected false aborting {:.3}",
            w.name(),
            m.oracle.false_abort_fraction()
        );
    }
}

#[test]
fn puno_suppresses_false_aborting() {
    // The core claim: predictive unicast prevents the multicast from
    // disrupting sharers when the request would be nacked anyway.
    for w in [WorkloadId::Bayes, WorkloadId::Intruder] {
        let base = run(w, Mechanism::Baseline);
        let puno = run(w, Mechanism::Puno);
        assert!(
            (puno.oracle.false_aborted_transactions as f64)
                < base.oracle.false_aborted_transactions as f64 * 0.6,
            "{}: PUNO false victims {} vs baseline {}",
            w.name(),
            puno.oracle.false_aborted_transactions,
            base.oracle.false_aborted_transactions
        );
    }
}

#[test]
fn puno_reduces_aborts_in_high_contention() {
    for w in [WorkloadId::Bayes, WorkloadId::Intruder, WorkloadId::Yada] {
        let base = run(w, Mechanism::Baseline);
        let puno = run(w, Mechanism::Puno);
        assert!(
            puno.htm.aborts.get() < base.htm.aborts.get(),
            "{}: PUNO {} vs baseline {} aborts",
            w.name(),
            puno.htm.aborts.get(),
            base.htm.aborts.get()
        );
    }
}

#[test]
fn puno_reduces_network_traffic_in_high_contention() {
    // Figure 11's direction, over the whole high-contention group (small
    // scaled-down runs are individually noisy).
    let mut base_total = 0u64;
    let mut puno_total = 0u64;
    for w in WorkloadId::HIGH_CONTENTION {
        base_total += run(w, Mechanism::Baseline).traffic_router_traversals;
        puno_total += run(w, Mechanism::Puno).traffic_router_traversals;
    }
    assert!(
        puno_total < base_total,
        "PUNO traffic {puno_total} vs baseline {base_total}"
    );
}

#[test]
fn puno_reduces_directory_blocking() {
    // Figure 12's direction: unicast shrinks the responder set the
    // directory waits on.
    let mut better = 0;
    for w in WorkloadId::HIGH_CONTENTION {
        let base = run(w, Mechanism::Baseline);
        let puno = run(w, Mechanism::Puno);
        if puno.dir_blocking_per_tx_getx() < base.dir_blocking_per_tx_getx() {
            better += 1;
        }
    }
    assert!(
        better >= 3,
        "PUNO should cut blocking in most HC workloads ({better}/4)"
    );
}

#[test]
fn rmw_pred_helps_low_contention_but_hurts_high_contention() {
    // Section IV-B: RMW-Pred shines on kmeans/ssca2-style short
    // transactions and backfires under contention (converts read-read
    // sharing into write conflicts).
    let kmeans_base = run(WorkloadId::Kmeans, Mechanism::Baseline);
    let kmeans_rmw = run(WorkloadId::Kmeans, Mechanism::RmwPred);
    assert!(
        kmeans_rmw.htm.aborts.get() <= kmeans_base.htm.aborts.get(),
        "kmeans: RMW-Pred should not increase aborts ({} vs {})",
        kmeans_rmw.htm.aborts.get(),
        kmeans_base.htm.aborts.get()
    );

    let bayes_base = run(WorkloadId::Bayes, Mechanism::Baseline);
    let bayes_rmw = run(WorkloadId::Bayes, Mechanism::RmwPred);
    assert!(
        bayes_rmw.cycles > bayes_base.cycles,
        "bayes: RMW-Pred should slow the run down ({} vs {})",
        bayes_rmw.cycles,
        bayes_base.cycles
    );
}

#[test]
fn puno_beats_random_backoff_on_execution_time_in_high_contention() {
    // Figure 13: notification-guided waits beat blind randomized waits.
    let mut puno_total = 0u64;
    let mut backoff_total = 0u64;
    for w in WorkloadId::HIGH_CONTENTION {
        puno_total += run(w, Mechanism::Puno).cycles;
        backoff_total += run(w, Mechanism::RandomBackoff).cycles;
    }
    assert!(
        puno_total < backoff_total,
        "PUNO {puno_total} vs random backoff {backoff_total} cycles"
    );
}

#[test]
fn prediction_accuracy_is_reasonable() {
    for w in [WorkloadId::Bayes, WorkloadId::Intruder] {
        let puno = run(w, Mechanism::Puno);
        assert!(
            puno.puno.unicasts.get() > 0,
            "{}: predictor never engaged",
            w.name()
        );
        assert!(
            puno.puno.accuracy() > 0.5,
            "{}: accuracy {:.2} too low",
            w.name(),
            puno.puno.accuracy()
        );
    }
}

#[test]
fn all_mechanisms_commit_identical_offered_load() {
    for w in [WorkloadId::Vacation, WorkloadId::Genome] {
        let commits: Vec<u64> = Mechanism::ALL
            .iter()
            .map(|&m| run(w, m).committed)
            .collect();
        assert!(
            commits.windows(2).all(|p| p[0] == p[1]),
            "{}: {:?}",
            w.name(),
            commits
        );
    }
}

#[test]
fn mechanisms_are_noops_without_sharing() {
    // Private-only workload: no conflicts, so every mechanism must behave
    // identically on aborts (zero) and nearly identically on time.
    let params = micro::private_only(15);
    for mech in Mechanism::ALL {
        let m = run_workload(mech, &params, 9);
        assert_eq!(m.htm.aborts.get(), 0, "{mech:?} aborted without conflicts");
        assert_eq!(m.oracle.false_abort_episodes, 0);
    }
}
