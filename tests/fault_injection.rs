//! Fault injection end-to-end: runs perturbed by deterministic fault plans
//! must stay correct (serializable, invariant-clean, fully committed — every
//! fault kind is abort-recoverable), reproducible (same plan + seed =>
//! identical metrics), and free (empty plan => bit-identical to no plan).

use puno_repro::prelude::*;
use puno_repro::sim::{FaultEvent, LineAddr, NodeId};

fn faulted_run(
    mechanism: Mechanism,
    params: &WorkloadParams,
    seed: u64,
    plan: FaultPlan,
) -> RunMetrics {
    run_workload_with_faults(mechanism, params, seed, plan)
        .expect("fault-injected run must still complete")
}

#[test]
fn counter_stays_serializable_under_increasing_fault_intensity() {
    let params = micro::counter(4, 10);
    for &intensity in &[0.2, 0.6, 1.0] {
        let plan = FaultPlan::background(99, intensity);
        let config = SystemConfig::paper(Mechanism::Puno);
        let mut sys = System::new(config, &params, 11);
        sys.set_fault_plan(plan);
        let (metrics, memory) = sys
            .try_run_full()
            .unwrap_or_else(|e| panic!("intensity {intensity}: {e}"));
        // Every fault is abort-recoverable: the offered load still commits.
        assert_eq!(
            metrics.committed,
            16 * 10,
            "intensity {intensity}: lost transactions"
        );
        let total: u64 = (0..4).map(|i| memory.read(LineAddr(i))).sum();
        assert_eq!(
            total,
            16 * 10,
            "intensity {intensity}: committed increments lost or duplicated"
        );
    }
}

#[test]
fn coherence_invariants_hold_under_faults() {
    let params = micro::hotspot(8);
    let lines: Vec<LineAddr> = (0..8).map(LineAddr).collect();
    let config = SystemConfig::paper(Mechanism::Puno);
    let mut sys = System::new(config, &params, 5);
    sys.set_fault_plan(FaultPlan::background(21, 1.0));
    // run_checked scans single-writer/multi-reader + directory agreement
    // every 64 events and panics on the first violation.
    let (metrics, _) = sys.run_checked(&lines, 64);
    assert_eq!(metrics.committed, 16 * 8);
}

#[test]
fn background_faults_actually_fire_and_are_accounted() {
    let params = micro::hotspot(12);
    let m = faulted_run(
        Mechanism::Baseline,
        &params,
        7,
        FaultPlan::background(13, 1.0),
    );
    assert!(m.faults.total() > 0, "intensity 1.0 must inject something");
    assert!(m.faults.delay_jitters.get() > 0, "no jitter fired");
    assert!(m.faults.forced_aborts.get() > 0, "no forced abort fired");
    // Forced aborts surface under their own cause, never misattributed to
    // a protocol conflict.
    assert_eq!(
        m.htm.aborts_for(puno_repro::htm::AbortCause::Injected),
        m.faults.forced_aborts.get()
    );
}

#[test]
fn fault_injected_runs_are_deterministic() {
    let params = micro::hotspot(10);
    let run = || faulted_run(Mechanism::Puno, &params, 9, FaultPlan::background(33, 0.8));
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.htm.aborts.get(), b.htm.aborts.get());
    assert_eq!(a.faults.total(), b.faults.total());
    assert_eq!(a.traffic_router_traversals, b.traffic_router_traversals);
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let params = micro::hotspot(10);
    let config = SystemConfig::paper(Mechanism::Puno);
    let bare = System::new(config, &params, 9).run();
    let mut sys = System::new(config, &params, 9);
    sys.set_fault_plan(FaultPlan::none());
    let with_empty = sys.try_run().unwrap();
    // No RNG is consulted and no event scheduled on the no-fault path, so
    // the runs must be indistinguishable.
    assert_eq!(bare.cycles, with_empty.cycles);
    assert_eq!(bare.htm.aborts.get(), with_empty.htm.aborts.get());
    assert_eq!(
        bare.traffic_flits_injected,
        with_empty.traffic_flits_injected
    );
    assert_eq!(with_empty.faults.total(), 0);
}

#[test]
fn scheduled_events_fire_at_their_cycle() {
    let params = micro::counter(2, 10);
    let mut plan = FaultPlan::none();
    // Aim point faults at mid-run: a link stall and a jittered message on
    // node 1 (magnitude-carrying kinds are unconditionally recordable).
    plan.events = vec![
        FaultEvent {
            at: 500,
            kind: FaultKind::LinkStall,
            node: NodeId(1),
            magnitude: 32,
        },
        FaultEvent {
            at: 600,
            kind: FaultKind::DelayJitter,
            node: NodeId(1),
            magnitude: 12,
        },
    ];
    let m = faulted_run(Mechanism::Baseline, &params, 4, plan);
    assert_eq!(m.committed, 16 * 10);
    assert_eq!(m.faults.link_stalls.get(), 1);
    assert_eq!(m.faults.delay_jitters.get(), 1);
    assert_eq!(m.faults.jitter_cycles.get(), 12);
}

#[test]
fn spurious_nacks_are_recovered_from() {
    let params = micro::counter(1, 8);
    let mut plan = FaultPlan::none();
    plan.seed = 17;
    plan.spurious_nack_rate = 0.3;
    let m = faulted_run(Mechanism::Baseline, &params, 6, plan);
    assert_eq!(m.committed, 16 * 8, "refused forwards must be retried");
    assert!(
        m.faults.spurious_nacks.get() > 0,
        "a 30% nack rate on a single hot line must apply at least once"
    );
}
