//! Randomized whole-system tests: random workload shapes and seeds must
//! never violate the simulator's global invariants. Shapes are generated
//! from a fixed-seed `SimRng` (the registryless build cannot use proptest),
//! so every case is reproducible by its index.

use puno_repro::prelude::*;
use puno_repro::sim::{LineAddr, SimRng};
use puno_repro::workloads::{StaticTxParams, WorkloadParams};

fn gen_params(rng: &mut SimRng) -> WorkloadParams {
    let r0 = rng.gen_range(6) as u32;
    let dr = rng.gen_range(4) as u32;
    let w0 = rng.gen_range(3) as u32;
    let dw = rng.gen_range(3) as u32;
    WorkloadParams {
        name: "prop".into(),
        static_txs: vec![StaticTxParams {
            weight: 1.0,
            reads: (r0, r0 + dr),
            writes: (w0, w0 + dw),
            rmw_fraction: rng.gen_f64(),
            read_shared_fraction: 0.9,
            write_shared_fraction: 0.9,
            think_per_op: 1 + rng.gen_range(19),
            scan_shared: 0,
            lead_reads: rng.gen_range(3) as u32,
        }],
        shared_lines: 1 + rng.gen_range(63),
        zipf_theta: rng.gen_f64(),
        private_lines_per_node: 16,
        tx_per_node: 2 + rng.gen_range(8) as u32,
        inter_tx_think: 20,
        non_tx_accesses: 1,
    }
}

/// Any random workload completes under every mechanism with the full offered
/// load committed, and committed writes are value-conserving.
#[test]
fn random_workloads_complete_and_conserve() {
    let mut rng = SimRng::new(0x5eed_0006);
    for case in 0..24 {
        let params = gen_params(&mut rng);
        let seed = rng.gen_range(1000);
        let mechanism = Mechanism::ALL[rng.gen_range(4) as usize];
        let config = SystemConfig::paper(mechanism);
        let (metrics, memory) = System::new(config, &params, seed).run_full();

        // Fixed offered load: every transaction eventually commits.
        assert_eq!(
            metrics.committed,
            16 * params.tx_per_node as u64,
            "case {case} ({mechanism:?} seed {seed})"
        );

        // Value conservation: every write (tx committed or non-tx) is an
        // increment; aborted increments must have been rolled back. The
        // shared-region sum therefore equals the committed tx write count;
        // we can bound it by ops statically.
        let shared_sum: u64 = (0..params.shared_lines)
            .map(|i| memory.read(LineAddr(i)))
            .sum();
        let max_writes = metrics.committed * (params.static_txs[0].writes.1 as u64);
        assert!(
            shared_sum <= max_writes,
            "case {case}: shared sum {shared_sum} exceeds maximum committed writes {max_writes}"
        );

        // Abort bookkeeping matches the per-cause split.
        let causes: u64 = puno_repro::htm::AbortCause::ALL
            .iter()
            .map(|&c| metrics.htm.aborts_for(c))
            .sum();
        assert_eq!(causes, metrics.htm.aborts.get(), "case {case}");
    }
}

/// Determinism: identical (params, seed, mechanism) yield identical metrics.
#[test]
fn runs_are_reproducible() {
    let mut rng = SimRng::new(0x5eed_0007);
    for case in 0..8 {
        let params = gen_params(&mut rng);
        let seed = rng.gen_range(100);
        let a = run_workload(Mechanism::Puno, &params, seed);
        let b = run_workload(Mechanism::Puno, &params, seed);
        assert_eq!(a.cycles, b.cycles, "case {case}");
        assert_eq!(a.htm.aborts.get(), b.htm.aborts.get(), "case {case}");
        assert_eq!(
            a.traffic_router_traversals, b.traffic_router_traversals,
            "case {case}"
        );
        assert_eq!(
            a.oracle.false_aborted_transactions, b.oracle.false_aborted_transactions,
            "case {case}"
        );
    }
}
