//! Property-based whole-system tests: random workload shapes and seeds must
//! never violate the simulator's global invariants.

use proptest::prelude::*;
use puno_repro::prelude::*;
use puno_repro::sim::LineAddr;
use puno_repro::workloads::{StaticTxParams, WorkloadParams};

fn arb_params() -> impl Strategy<Value = WorkloadParams> {
    (
        1u64..64,    // shared lines
        0u32..6,     // reads min
        0u32..4,     // extra reads
        0u32..3,     // writes min
        0u32..3,     // extra writes
        0.0f64..1.0, // rmw fraction
        0.0f64..1.0, // zipf theta
        1u64..20,    // think per op
        0u32..3,     // lead reads
        2u32..10,    // tx per node
    )
        .prop_map(
            |(lines, r0, dr, w0, dw, rmw, theta, think, lead, txs)| WorkloadParams {
                name: "prop".into(),
                static_txs: vec![StaticTxParams {
                    weight: 1.0,
                    reads: (r0, r0 + dr),
                    writes: (w0, w0 + dw),
                    rmw_fraction: rmw,
                    read_shared_fraction: 0.9,
                    write_shared_fraction: 0.9,
                    think_per_op: think,
                    scan_shared: 0,
                    lead_reads: lead,
                }],
                shared_lines: lines,
                zipf_theta: theta,
                private_lines_per_node: 16,
                tx_per_node: txs,
                inter_tx_think: 20,
                non_tx_accesses: 1,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 40,
        .. ProptestConfig::default()
    })]

    /// Any random workload completes under every mechanism with the full
    /// offered load committed, and committed writes are value-conserving.
    #[test]
    fn random_workloads_complete_and_conserve(
        params in arb_params(),
        seed in 0u64..1000,
        mech_idx in 0usize..4,
    ) {
        let mechanism = Mechanism::ALL[mech_idx];
        let config = SystemConfig::paper(mechanism);
        let (metrics, memory) = System::new(config, &params, seed).run_full();

        // Fixed offered load: every transaction eventually commits.
        prop_assert_eq!(metrics.committed, 16 * params.tx_per_node as u64);

        // Value conservation: every write (tx committed or non-tx) is an
        // increment; aborted increments must have been rolled back. The
        // shared-region sum therefore equals the committed tx write count;
        // we can bound it by ops statically.
        let shared_sum: u64 = (0..params.shared_lines)
            .map(|i| memory.read(LineAddr(i)))
            .sum();
        let max_writes = metrics.committed
            * (params.static_txs[0].writes.1 as u64);
        prop_assert!(
            shared_sum <= max_writes,
            "shared sum {} exceeds maximum committed writes {}",
            shared_sum, max_writes
        );

        // Effort accounting is consistent: good + discarded >= commit count
        // (every commit contributes at least... zero-length txs allowed) and
        // the abort bookkeeping matches the per-cause split.
        let causes: u64 = [
            puno_repro::htm::AbortCause::TxWriteInvalidation,
            puno_repro::htm::AbortCause::TxReadConflict,
            puno_repro::htm::AbortCause::NonTxConflict,
            puno_repro::htm::AbortCause::Capacity,
        ]
        .iter()
        .map(|&c| metrics.htm.aborts_for(c))
        .sum();
        prop_assert_eq!(causes, metrics.htm.aborts.get());
    }

    /// Determinism: identical (params, seed, mechanism) yield identical
    /// metrics.
    #[test]
    fn runs_are_reproducible(params in arb_params(), seed in 0u64..100) {
        let a = run_workload(Mechanism::Puno, &params, seed);
        let b = run_workload(Mechanism::Puno, &params, seed);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.htm.aborts.get(), b.htm.aborts.get());
        prop_assert_eq!(a.traffic_router_traversals, b.traffic_router_traversals);
        prop_assert_eq!(a.oracle.false_aborted_transactions, b.oracle.false_aborted_transactions);
    }
}
