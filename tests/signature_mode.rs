//! Signature-based conflict detection ablation: Bloom signatures must
//! preserve correctness (no false negatives => still serializable) while
//! adding alias-induced conflicts when undersized.

use puno_repro::htm::SignatureConfig;
use puno_repro::prelude::*;
use puno_repro::sim::LineAddr;

fn config_with_sigs(bits: u32) -> SystemConfig {
    let mut c = SystemConfig::paper(Mechanism::Baseline);
    c.signatures = Some(SignatureConfig { bits, hashes: 2 });
    c
}

#[test]
fn signatures_preserve_serializability() {
    let params = micro::counter(4, 12);
    let (metrics, memory) = System::new(config_with_sigs(2048), &params, 3).run_full();
    assert_eq!(metrics.committed, 16 * 12);
    let total: u64 = (0..4).map(|i| memory.read(LineAddr(i))).sum();
    assert_eq!(total, 16 * 12);
}

#[test]
fn generous_signatures_behave_like_exact_sets() {
    // 2 Kbit signatures vs footprints of a few lines: aliasing ~ 0, so the
    // run should be metrically indistinguishable from the precise baseline.
    let params = micro::hotspot(15);
    let exact = run_workload(Mechanism::Baseline, &params, 5);
    let sig = puno_repro::harness::run::run_with_config(config_with_sigs(2048), &params, 5);
    assert_eq!(sig.committed, exact.committed);
    assert_eq!(
        sig.htm.sig_alias_conflicts.get(),
        0,
        "tiny footprints must not alias in 2 Kbit"
    );
    assert_eq!(sig.htm.aborts.get(), exact.htm.aborts.get());
    assert_eq!(sig.cycles, exact.cycles);
}

#[test]
fn undersized_signatures_manufacture_conflicts() {
    // Big read sets (bayes) into 64-bit signatures: heavy aliasing. The
    // run must remain correct, but alias conflicts appear and aborts and/or
    // nacks go up relative to exact tracking.
    let params = WorkloadId::Bayes.params().scaled(0.1);
    let exact = run_workload(Mechanism::Baseline, &params, 5);
    let sig = puno_repro::harness::run::run_with_config(config_with_sigs(64), &params, 5);
    assert_eq!(
        sig.committed, exact.committed,
        "correctness is unconditional"
    );
    assert!(
        sig.htm.sig_alias_conflicts.get() > 0,
        "64-bit signatures must alias on bayes footprints"
    );
    let exact_pressure = exact.htm.aborts.get() + exact.htm.nacks_received.get();
    let sig_pressure = sig.htm.aborts.get() + sig.htm.nacks_received.get();
    assert!(
        sig_pressure > exact_pressure,
        "aliasing should raise conflict pressure ({sig_pressure} vs {exact_pressure})"
    );
}

#[test]
fn signature_mode_is_deterministic() {
    let params = micro::hotspot(10);
    let a = puno_repro::harness::run::run_with_config(config_with_sigs(256), &params, 7);
    let b = puno_repro::harness::run::run_with_config(config_with_sigs(256), &params, 7);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(
        a.htm.sig_alias_conflicts.get(),
        b.htm.sig_alias_conflicts.get()
    );
}
