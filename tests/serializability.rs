//! End-to-end serializability: every committed transactional write is an
//! increment, so under *any* mechanism and seed, the final memory values
//! must sum to exactly the number of committed writes — no lost updates, no
//! duplicated effects, no leakage from aborted transactions.

use puno_repro::prelude::*;
use puno_repro::sim::LineAddr;

fn check_counter(mechanism: Mechanism, lines: u64, tx_per_node: u32, seed: u64) {
    let params = micro::counter(lines, tx_per_node);
    let config = SystemConfig::paper(mechanism);
    let (metrics, memory) = System::new(config, &params, seed).run_full();
    assert_eq!(
        metrics.committed,
        16 * tx_per_node as u64,
        "{mechanism:?}/seed{seed}: wrong commit count"
    );
    let total: u64 = (0..lines).map(|i| memory.read(LineAddr(i))).sum();
    assert_eq!(
        total,
        16 * tx_per_node as u64,
        "{mechanism:?}/seed{seed}: committed increments lost or duplicated"
    );
}

#[test]
fn counter_is_serializable_under_baseline() {
    check_counter(Mechanism::Baseline, 4, 15, 1);
}

#[test]
fn counter_is_serializable_under_random_backoff() {
    check_counter(Mechanism::RandomBackoff, 4, 15, 2);
}

#[test]
fn counter_is_serializable_under_rmw_pred() {
    check_counter(Mechanism::RmwPred, 4, 15, 3);
}

#[test]
fn counter_is_serializable_under_puno() {
    check_counter(Mechanism::Puno, 4, 15, 4);
}

#[test]
fn counter_is_serializable_on_a_single_line() {
    // Maximum conflict: every transaction increments the same line.
    for mech in Mechanism::ALL {
        check_counter(mech, 1, 10, 7);
    }
}

#[test]
fn counter_is_serializable_across_seeds() {
    for seed in 10..15 {
        check_counter(Mechanism::Puno, 2, 8, seed);
    }
}

#[test]
fn mixed_workload_conserves_committed_writes() {
    // The hotspot micro workload writes 1-2 lines per tx; sum of memory
    // values must equal the number of committed transactional writes plus
    // non-tx writes (hotspot has none).
    let params = micro::hotspot(10);
    let config = SystemConfig::paper(Mechanism::Puno);
    let (metrics, memory) = System::new(config, &params, 5).run_full();
    let total: u64 = (0..8).map(|i| memory.read(LineAddr(i))).sum();
    assert!(metrics.committed > 0);
    assert!(total > 0, "committed writes must land");
    // Each commit wrote 1..=2 shared lines.
    assert!(total >= metrics.committed && total <= 2 * metrics.committed);
}
