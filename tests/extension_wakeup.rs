//! Tests for the §VI future-work extension: finish-time wake-up hints.

use puno_repro::prelude::*;
use puno_repro::sim::LineAddr;

fn puno_config(hints: bool) -> SystemConfig {
    let mut c = SystemConfig::paper(Mechanism::Puno);
    c.puno.wakeup_hints = hints;
    c
}

#[test]
fn hints_preserve_serializability() {
    let params = micro::counter(4, 12);
    let (metrics, memory) = System::new(puno_config(true), &params, 3).run_full();
    assert_eq!(metrics.committed, 16 * 12);
    let total: u64 = (0..4).map(|i| memory.read(LineAddr(i))).sum();
    assert_eq!(total, 16 * 12);
}

#[test]
fn hints_complete_the_same_offered_load() {
    let params = WorkloadId::Bayes.params().scaled(0.1);
    let with = run_with_config(puno_config(true), &params, 5);
    let without = run_with_config(puno_config(false), &params, 5);
    assert_eq!(with.committed, without.committed);
}

#[test]
fn hints_cut_oversleeping_on_high_contention() {
    // The point of the extension: a sleeping requester whose nacker
    // aborted early no longer waits out a stale T_est. Aggregate over the
    // HC group; backoff (sleep) cycles must drop, and runtime must not get
    // worse by more than noise.
    let mut sleep_with = 0u64;
    let mut sleep_without = 0u64;
    let mut cycles_with = 0u64;
    let mut cycles_without = 0u64;
    for w in WorkloadId::HIGH_CONTENTION {
        let params = w.params().scaled(0.15);
        let a = run_with_config(puno_config(true), &params, 2);
        let b = run_with_config(puno_config(false), &params, 2);
        sleep_with += a.htm.backoff_cycles.get();
        sleep_without += b.htm.backoff_cycles.get();
        cycles_with += a.cycles;
        cycles_without += b.cycles;
    }
    assert!(
        cycles_with as f64 <= cycles_without as f64 * 1.03,
        "hints must not slow the system: {cycles_with} vs {cycles_without}"
    );
    // Scheduled sleeps are cut short, so *experienced* waits shrink even
    // though the scheduled amounts are identical; we can only observe this
    // through runtime above and through more retries landing earlier —
    // sanity-check the mechanism actually fired by requiring SOME change.
    assert_ne!(
        (sleep_with, cycles_with),
        (sleep_without, cycles_without),
        "hints had no observable effect"
    );
}

#[test]
fn hints_are_deterministic() {
    let params = WorkloadId::Intruder.params().scaled(0.1);
    let a = run_with_config(puno_config(true), &params, 9);
    let b = run_with_config(puno_config(true), &params, 9);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.htm.aborts.get(), b.htm.aborts.get());
}
