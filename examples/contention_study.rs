//! Contention study: how false aborting grows with sharing skew, and how
//! much of it PUNO suppresses — the motivation experiment of the paper's
//! Section II-C rebuilt as a parameter sweep over a synthetic hotspot.
//!
//! ```sh
//! cargo run --release --example contention_study
//! ```

use puno_repro::prelude::*;
use puno_repro::workloads::{StaticTxParams, WorkloadParams};

fn hotspot(shared_lines: u64, zipf: f64) -> WorkloadParams {
    WorkloadParams {
        name: format!("hotspot-{shared_lines}l-z{zipf}"),
        static_txs: vec![StaticTxParams {
            weight: 1.0,
            reads: (4, 8),
            writes: (1, 2),
            rmw_fraction: 0.4,
            read_shared_fraction: 1.0,
            write_shared_fraction: 1.0,
            think_per_op: 10,
            scan_shared: 0,
            lead_reads: 1,
        }],
        shared_lines,
        zipf_theta: zipf,
        private_lines_per_node: 16,
        tx_per_node: 40,
        inter_tx_think: 30,
        non_tx_accesses: 0,
    }
}

fn main() {
    println!("false aborting vs. sharing skew (16 cores, 40 tx/node)\n");
    println!(
        "{:<10}{:>6}{:>14}{:>14}{:>16}{:>16}",
        "region", "zipf", "base abort%", "base false%", "puno aborts rel", "puno traffic rel"
    );
    for &(lines, zipf) in &[
        (512u64, 0.0),
        (128, 0.0),
        (64, 0.4),
        (32, 0.6),
        (16, 0.8),
        (8, 0.9),
    ] {
        let params = hotspot(lines, zipf);
        let base = run_workload(Mechanism::Baseline, &params, 7);
        let puno = run_workload(Mechanism::Puno, &params, 7);
        let rel = |p: u64, b: u64| {
            if b == 0 {
                1.0
            } else {
                p as f64 / b as f64
            }
        };
        println!(
            "{:<10}{:>6.1}{:>13.1}%{:>13.1}%{:>16.3}{:>16.3}",
            lines,
            zipf,
            base.htm.abort_rate() * 100.0,
            base.oracle.false_abort_fraction() * 100.0,
            rel(puno.htm.aborts.get(), base.htm.aborts.get()),
            rel(
                puno.traffic_router_traversals,
                base.traffic_router_traversals
            ),
        );
    }
    println!("\nSmaller/hotter shared regions -> more read-sharing per line ->");
    println!("more false aborting for the baseline, and more for PUNO to reclaim.");
}
