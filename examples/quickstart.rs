//! Quickstart: simulate one STAMP-like workload on the paper's 16-core CMP
//! under the baseline HTM and under PUNO, and compare the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart [workload] [scale]
//! ```

use puno_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("intruder");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let workload = WorkloadId::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name}; pick one of:");
            for w in WorkloadId::ALL {
                eprintln!("  {}", w.name());
            }
            std::process::exit(1);
        });
    let params = workload.params().scaled(scale);

    println!(
        "simulating `{}` (x{scale} scale) on a 4x4-mesh, 16-core CMP...",
        params.name
    );
    let base = run_workload(Mechanism::Baseline, &params, 42);
    let puno = run_workload(Mechanism::Puno, &params, 42);

    println!("\n                      baseline        PUNO       delta");
    let row = |label: &str, b: f64, p: f64| {
        let delta = if b != 0.0 { (p / b - 1.0) * 100.0 } else { 0.0 };
        println!("{label:<18}{b:>12.0}{p:>12.0}{delta:>+10.1}%");
    };
    row("commits", base.committed as f64, puno.committed as f64);
    row(
        "aborts",
        base.htm.aborts.get() as f64,
        puno.htm.aborts.get() as f64,
    );
    row(
        "false-abort evts",
        base.oracle.false_abort_episodes as f64,
        puno.oracle.false_abort_episodes as f64,
    );
    row(
        "router traversals",
        base.traffic_router_traversals as f64,
        puno.traffic_router_traversals as f64,
    );
    row("cycles", base.cycles as f64, puno.cycles as f64);
    println!(
        "\nPUNO predictor: {} unicasts, {:.1}% accurate, {} notifications sent",
        puno.puno.unicasts.get(),
        puno.puno.accuracy() * 100.0,
        puno.htm.notifications_sent.get()
    );
}
