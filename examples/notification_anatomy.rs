//! Anatomy of the notification mechanism: how the TxLB's per-static-
//! transaction length tracking (formula (1)) feeds T_est, and what the
//! notified backoffs look like compared against fixed 20-cycle polling.
//!
//! ```sh
//! cargo run --release --example notification_anatomy
//! ```

use puno_repro::htm::backoff::{BackoffConfig, BackoffKind};
use puno_repro::htm::BackoffEngine;
use puno_repro::prelude::*;
use puno_repro::puno::{notification_estimate, TxLengthBuffer};
use puno_repro::sim::{SimRng, StaticTxId};

fn main() {
    // 1. TxLB tracking: two static transactions with very different lengths.
    let mut txlb = TxLengthBuffer::paper();
    println!("TxLB tracking (formula (1): new = (prev + sample) / 2)");
    for (tx, len) in [
        (0u32, 100u64),
        (1, 4000),
        (0, 140),
        (1, 3600),
        (0, 120),
        (1, 4400),
    ] {
        txlb.record_commit(StaticTxId(tx), len);
        println!(
            "  commit static_tx={tx} len={len:<5} -> estimates: S0={:?} S1={:?}",
            txlb.estimate(StaticTxId(0)),
            txlb.estimate(StaticTxId(1))
        );
    }
    println!("  per-static tracking keeps the short and long transactions apart;");
    println!("  a single global average would mis-time both.\n");

    // 2. T_est and the backoff rule.
    let avg = txlb.estimate(StaticTxId(1)).unwrap();
    println!("notification for the long transaction (avg {avg} cycles):");
    let mut engine = BackoffEngine::new(
        BackoffKind::NotificationGuided,
        BackoffConfig::default(),
        SimRng::new(1),
    );
    for elapsed in [0u64, 1000, 2000, 3500, 5000] {
        let t_est = notification_estimate(avg, elapsed);
        let backoff = engine.on_nack(Some(t_est));
        println!(
            "  nacker elapsed {elapsed:>5} -> T_est {t_est:>5} -> requester sleeps {backoff:>5}"
        );
    }
    println!("  (fixed polling would retry every 20 cycles regardless)\n");

    // 3. End to end: what the mechanism buys on a high-contention run.
    let params = WorkloadId::Bayes.params().scaled(0.15);
    let base = run_workload(Mechanism::Baseline, &params, 3);
    let puno = run_workload(Mechanism::Puno, &params, 3);
    println!(
        "bayes x0.15: baseline retries {} vs PUNO retries {} —",
        base.htm.retries.get(),
        puno.htm.retries.get()
    );
    println!(
        "but baseline false-abort victims {} vs PUNO {} ({} notifications guided the waits)",
        base.oracle.false_aborted_transactions,
        puno.oracle.false_aborted_transactions,
        puno.htm.notifications_sent.get()
    );
}
