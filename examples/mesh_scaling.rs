//! Mesh scaling: the paper's future-work question — does the mechanism
//! still pay off as the CMP grows? Runs the same hotspot contention on
//! 2x2, 4x4 and 8x8 meshes, baseline vs PUNO.
//!
//! ```sh
//! cargo run --release --example mesh_scaling
//! ```

use puno_repro::noc::Mesh;
use puno_repro::prelude::*;

fn main() {
    println!("hotspot contention vs mesh size (fixed tx/node)\n");
    println!(
        "{:<8}{:>8}{:>14}{:>14}{:>14}{:>16}",
        "mesh", "cores", "base aborts", "puno aborts", "abort ratio", "traffic ratio"
    );
    for (w, h) in [(2u16, 2u16), (4, 4), (8, 8)] {
        let mut base_cfg = SystemConfig::paper(Mechanism::Baseline);
        base_cfg.mesh = Mesh::new(w, h);
        let mut puno_cfg = SystemConfig::paper(Mechanism::Puno);
        puno_cfg.mesh = Mesh::new(w, h);

        let params = micro::hotspot(12);
        let base = run_with_config(base_cfg, &params, 3);
        let puno = run_with_config(puno_cfg, &params, 3);
        let ratio = |p: u64, b: u64| if b == 0 { 1.0 } else { p as f64 / b as f64 };
        println!(
            "{:<8}{:>8}{:>14}{:>14}{:>14.3}{:>16.3}",
            format!("{w}x{h}"),
            w as u32 * h as u32,
            base.htm.aborts.get(),
            puno.htm.aborts.get(),
            ratio(puno.htm.aborts.get(), base.htm.aborts.get()),
            ratio(
                puno.traffic_router_traversals,
                base.traffic_router_traversals
            ),
        );
    }
    println!("\nMore cores sharing the same hot lines -> wider multicasts -> more");
    println!("false-abort victims per nacked write -> a larger PUNO win.");
}
