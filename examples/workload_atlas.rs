//! Workload atlas: the static contention signature of each STAMP-analogue
//! generator (the data behind DESIGN.md's workload table), computed from
//! the actual generated programs.
//!
//! ```sh
//! cargo run --release --example workload_atlas
//! ```

use puno_repro::prelude::*;
use puno_repro::sim::NodeId;
use puno_repro::workloads::{characterize, generate_program};

fn main() {
    println!(
        "{:<11}{:>9}{:>9}{:>9}{:>10}{:>10}{:>9}{:>9}",
        "workload", "txs", "rd/tx", "wr/tx", "think/tx", "readers*", "rmw%", "abort%"
    );
    for w in WorkloadId::ALL {
        let params = w.params().scaled(0.25);
        let programs: Vec<_> = (0..16)
            .map(|i| generate_program(&params, NodeId(i), 7))
            .collect();
        let s = characterize(&programs, params.shared_lines);
        let run = run_workload(Mechanism::Baseline, &params, 7);
        println!(
            "{:<11}{:>9}{:>9.1}{:>9.1}{:>10.0}{:>10.1}{:>8.0}%{:>8.1}%",
            w.name(),
            s.transactions,
            s.mean_reads_per_tx,
            s.mean_writes_per_tx,
            s.mean_think_per_tx,
            s.mean_readers_of_written_lines,
            s.rmw_write_fraction * 100.0,
            run.htm.abort_rate() * 100.0,
        );
    }
    println!("\n* mean number of distinct nodes reading each written shared line —");
    println!("  the crowd a transactional GETX multicast lands on.");
}
