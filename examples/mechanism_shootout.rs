//! Mechanism shootout: the paper's full comparison matrix — baseline,
//! randomized linear backoff [17], the RMW predictor [5], and PUNO — on one
//! workload, with every metric the evaluation section reports.
//!
//! ```sh
//! cargo run --release --example mechanism_shootout [workload] [scale] [seed]
//! ```

use puno_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("bayes");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

    let workload = WorkloadId::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .expect("unknown workload");
    let params = workload.params().scaled(scale);

    println!(
        "{} (x{scale}, seed {seed}): 16 cores, MESI directory, eager HTM\n",
        params.name
    );
    println!(
        "{:<11}{:>9}{:>9}{:>8}{:>11}{:>11}{:>9}{:>8}",
        "mechanism", "commits", "aborts", "rate%", "traffic", "cycles", "blk/req", "G/D"
    );
    for mech in Mechanism::ALL {
        let m = run_workload(mech, &params, seed);
        println!(
            "{:<11}{:>9}{:>9}{:>8.1}{:>11}{:>11}{:>9.1}{:>8.2}",
            mech.name(),
            m.committed,
            m.htm.aborts.get(),
            m.htm.abort_rate() * 100.0,
            m.traffic_router_traversals,
            m.cycles,
            m.dir_blocking_per_tx_getx(),
            m.htm.gd_ratio(),
        );
    }
    println!("\nColumns map to the paper's figures: aborts = Fig 10, traffic = Fig 11,");
    println!("blk/req = Fig 12, cycles = Fig 13, G/D = Fig 14.");
}
