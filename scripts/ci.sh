#!/usr/bin/env bash
# Full CI gate: formatting, lints, the test suite, and a fault-injection
# smoke sweep (every cell must complete with zero structured failures).
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== fault smoke (0.05 scale, intensity 1.0) =="
# PUNO_SWEEP_THREADS pins the sweep's worker count so CI machine load is
# reproducible (per-cell results are deterministic at any thread count).
PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin fault_smoke -- 0.05 1.0 1

echo "== result-cache smoke (4-cell sweep twice; warm pass must replay byte-for-byte) =="
# Cold pass simulates and stores every cell; the warm pass must serve all
# four cells from the cache and produce byte-identical stdout (cached
# replay carries the cold run's metrics verbatim, host counters included).
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 --filter ssca2 \
    > "$CACHE_DIR/cold.txt" 2> "$CACHE_DIR/cold.err"
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 --filter ssca2 \
    > "$CACHE_DIR/warm.txt" 2> "$CACHE_DIR/warm.err"
diff "$CACHE_DIR/cold.txt" "$CACHE_DIR/warm.txt" \
    || { echo "warm sweep output differs from cold sweep"; exit 1; }
grep -q "result cache: 4 hits, 0 misses" "$CACHE_DIR/warm.err" \
    || { echo "warm pass did not hit the cache:"; cat "$CACHE_DIR/warm.err"; exit 1; }
echo "cache smoke OK (4/4 warm hits, byte-identical output)"

echo "== traced smoke (one cell, JSONL schema + Chrome export) =="
# Re-run one sweep cell fully traced: every JSONL line must parse as a
# trace record within the requested channel filter, and the Chrome-trace
# conversion must succeed. Runs inside the cache dir to prove --trace
# bypasses the result cache (the cell is warm from the cache smoke above).
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_TRACE="htm,coh,noc" PUNO_TRACE_OUT="$CACHE_DIR" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 \
    --trace ssca2:baseline > "$CACHE_DIR/traced.txt"
TRACE_JSONL="$CACHE_DIR/trace_ssca2_baseline_s1.jsonl"
[ -s "$TRACE_JSONL" ] || { echo "traced cell produced no JSONL stream"; exit 1; }
cargo run --offline --release -q -p puno-harness --bin trace_export -- \
    "$TRACE_JSONL" --validate --channels htm,coh,noc
cargo run --offline --release -q -p puno-harness --bin trace_export -- \
    "$TRACE_JSONL" --out "$CACHE_DIR/trace.chrome.json"
[ -s "$CACHE_DIR/trace.chrome.json" ] || { echo "Chrome export is empty"; exit 1; }
grep -q "abort blame" "$CACHE_DIR/traced.txt" \
    || { echo "traced cell printed no telemetry summary"; exit 1; }
echo "traced smoke OK"

echo "== substrate bench smoke (vs checked-in baseline) =="
# Fails if any benchmark runs >25% slower than results/BENCH_substrate_baseline.json,
# or on missing-key drift in either direction (a benchmark added without a
# baseline refresh, or one that silently vanished from the run).
# On a noisy/shared machine, set PUNO_BENCH_ALLOW_REGRESSION=1 to demote the
# failure to a warning; refresh the baseline with:
#   BENCH_SUBSTRATE_ITERS=smoke scripts/bench.sh results/BENCH_substrate_baseline.json
BENCH_SUBSTRATE_ITERS=smoke \
BENCH_SUBSTRATE_BASELINE="$PWD/results/BENCH_substrate_baseline.json" \
    cargo bench --offline -q -p puno-bench --bench substrate

echo "CI OK"
