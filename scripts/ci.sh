#!/usr/bin/env bash
# Full CI gate: formatting, lints, the test suite, and a fault-injection
# smoke sweep (every cell must complete with zero structured failures).
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== fault smoke (0.05 scale, intensity 1.0) =="
# PUNO_SWEEP_THREADS pins the sweep's worker count so CI machine load is
# reproducible (per-cell results are deterministic at any thread count).
PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin fault_smoke -- 0.05 1.0 1

echo "== result-cache smoke (4-cell sweep twice; warm pass must replay byte-for-byte) =="
# Cold pass simulates and stores every cell; the warm pass must serve all
# four cells from the cache and produce byte-identical stdout (cached
# replay carries the cold run's metrics verbatim, host counters included).
CACHE_DIR="$(mktemp -d)"
RES_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$RES_DIR"' EXIT
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 --filter ssca2 \
    > "$CACHE_DIR/cold.txt" 2> "$CACHE_DIR/cold.err"
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 --filter ssca2 \
    > "$CACHE_DIR/warm.txt" 2> "$CACHE_DIR/warm.err"
diff "$CACHE_DIR/cold.txt" "$CACHE_DIR/warm.txt" \
    || { echo "warm sweep output differs from cold sweep"; exit 1; }
grep -q "result cache: 4 hits, 0 misses" "$CACHE_DIR/warm.err" \
    || { echo "warm pass did not hit the cache:"; cat "$CACHE_DIR/warm.err"; exit 1; }
echo "cache smoke OK (4/4 warm hits, byte-identical output)"

echo "== resilience smoke (corrupt cache record: skip-and-count, then compact) =="
# Tamper with a field inside the FIRST persisted record: the JSON still
# parses but its content checksum no longer verifies, so the next open
# must skip exactly that record (re-simulating its cell) instead of
# replaying corrupt metrics — and the sweep output must stay identical.
RESULTS_JSONL="$CACHE_DIR/results.jsonl"
[ -s "$RESULTS_JSONL" ] || { echo "cache smoke left no results.jsonl"; exit 1; }
sed -i '1s/"seed":1/"seed":9/' "$RESULTS_JSONL"
grep -q '"seed":9' "$RESULTS_JSONL" || { echo "failed to corrupt a cache record"; exit 1; }
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 --filter ssca2 \
    > "$CACHE_DIR/corrupt.txt" 2> "$CACHE_DIR/corrupt.err"
# The skipped cell re-simulates, so its host wall-clock row is honestly
# fresh; everything deterministic must still match the cold run.
sed '/^simulator throughput/,$d' "$CACHE_DIR/cold.txt" > "$CACHE_DIR/cold.det.txt"
sed '/^simulator throughput/,$d' "$CACHE_DIR/corrupt.txt" > "$CACHE_DIR/corrupt.det.txt"
diff "$CACHE_DIR/cold.det.txt" "$CACHE_DIR/corrupt.det.txt" \
    || { echo "sweep output changed after cache corruption"; exit 1; }
grep -q "result cache recovered: 1 corrupt, 0 stale" "$CACHE_DIR/corrupt.err" \
    || { echo "corrupt record was not skip-and-counted:"; cat "$CACHE_DIR/corrupt.err"; exit 1; }
grep -q "result cache: 3 hits, 1 misses" "$CACHE_DIR/corrupt.err" \
    || { echo "corrupted cell was not re-simulated:"; cat "$CACHE_DIR/corrupt.err"; exit 1; }
# A compacting open must rewrite the file without the corrupt line; the
# following warm pass then serves every cell with nothing left to skip.
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_RESULT_CACHE_COMPACT=1 \
    PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 --filter ssca2 \
    > "$CACHE_DIR/compact.txt" 2> "$CACHE_DIR/compact.err"
sed '/^simulator throughput/,$d' "$CACHE_DIR/compact.txt" > "$CACHE_DIR/compact.det.txt"
diff "$CACHE_DIR/cold.det.txt" "$CACHE_DIR/compact.det.txt" \
    || { echo "sweep output changed after compaction"; exit 1; }
grep -q "result cache compacted: 4 kept, 1 corrupt, 0 stale" "$CACHE_DIR/compact.err" \
    || { echo "compaction did not drop the corrupt record:"; cat "$CACHE_DIR/compact.err"; exit 1; }
grep -q "result cache: 4 hits, 0 misses" "$CACHE_DIR/compact.err" \
    || { echo "compacted cache missed a warm cell:"; cat "$CACHE_DIR/compact.err"; exit 1; }
# A final plain pass proves the compacted file is clean: every cell warm,
# nothing left to skip at open.
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_SWEEP_THREADS="${PUNO_SWEEP_THREADS:-4}" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 --filter ssca2 \
    > /dev/null 2> "$CACHE_DIR/clean.err"
grep -q "result cache: 4 hits, 0 misses" "$CACHE_DIR/clean.err" \
    || { echo "post-compaction cache missed a warm cell:"; cat "$CACHE_DIR/clean.err"; exit 1; }
! grep -q "result cache recovered" "$CACHE_DIR/clean.err" \
    || { echo "compacted file still held skippable records"; exit 1; }
echo "corruption smoke OK (1 record skipped, re-simulated, compacted away)"

echo "== resilience smoke (mid-flight kill + checkpoint resume) =="
# Kill a checkpointed sweep partway, then resume from the checkpoint: the
# resumed run replays completed cells from the JSONL file (including a
# torn final append, if the kill landed mid-write) and must produce the
# same deterministic aggregate output as an uninterrupted sweep. The
# host-perf section is stripped from the diff — wall-clock readings are
# the one part of the report that is honestly not reproducible.
cargo build --offline --release -q -p puno-harness --bin sweep_all
SWEEP_BIN="target/release/sweep_all"
PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 \
    > "$RES_DIR/ref.txt" 2> /dev/null
timeout -s KILL 0.3 env PUNO_SWEEP_CHECKPOINT="$RES_DIR/ckpt.jsonl" PUNO_SWEEP_THREADS=4 \
    "$SWEEP_BIN" 0.05 1 > /dev/null 2>&1 || true
PUNO_SWEEP_CHECKPOINT="$RES_DIR/ckpt.jsonl" PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 \
    > "$RES_DIR/resumed.txt" 2> /dev/null
sed '/^simulator throughput/,$d' "$RES_DIR/ref.txt" > "$RES_DIR/ref.det.txt"
sed '/^simulator throughput/,$d' "$RES_DIR/resumed.txt" > "$RES_DIR/resumed.det.txt"
grep -q "Table I check" "$RES_DIR/ref.det.txt" || { echo "reference sweep printed no report"; exit 1; }
diff "$RES_DIR/ref.det.txt" "$RES_DIR/resumed.det.txt" \
    || { echo "checkpoint-resumed sweep diverged from the uninterrupted run"; exit 1; }
[ -s "$RES_DIR/ckpt.jsonl" ] || { echo "resumed sweep wrote no checkpoint"; exit 1; }
echo "checkpoint smoke OK (resume matches uninterrupted aggregate output)"

echo "== parallel-executor smoke (golden sweep, 1 vs 4 run-threads) =="
# The sharded cycle-epoch executor must be bit-identical to the serial
# loop: the full golden-scale sweep runs once serial and once with 4
# intra-run workers, and everything deterministic (all rows above the
# host-perf section) must match byte for byte. The serial pass doubles as
# a sanity check that PUNO_RUN_THREADS=1 takes the plain serial path (no
# "parallel:" line in its host-perf section).
PUNO_RUN_THREADS=1 PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 \
    > "$RES_DIR/run1.txt" 2> /dev/null
PUNO_RUN_THREADS=4 PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 \
    > "$RES_DIR/run4.txt" 2> /dev/null
sed '/^simulator throughput/,$d' "$RES_DIR/run1.txt" > "$RES_DIR/run1.det.txt"
sed '/^simulator throughput/,$d' "$RES_DIR/run4.txt" > "$RES_DIR/run4.det.txt"
diff "$RES_DIR/run1.det.txt" "$RES_DIR/run4.det.txt" \
    || { echo "4-run-thread sweep diverged from the serial loop"; exit 1; }
grep -q "parallel: 4 run thread(s)" "$RES_DIR/run4.txt" \
    || { echo "4-run-thread sweep never engaged the worker pool"; exit 1; }
! grep -q "parallel:" "$RES_DIR/run1.txt" \
    || { echo "serial sweep unexpectedly reported pool activity"; exit 1; }
echo "parallel smoke OK (serial and 4-thread sweeps byte-identical)"

echo "== prefix-fork smoke (golden sweep, fork-off vs fork-on) =="
# Prefix-fork execution runs each (workload, seed) group's mechanism-neutral
# prefix once and forks every sibling cell from the snapshot. The full
# golden sweep must be byte-identical fork-on vs fork-off in everything
# deterministic (all rows above the host-perf section); only the host
# section may differ — fork-on honestly reports the sharing it did. With 8
# workloads x 4 mechanisms and one prefix runner per group, exactly 24
# cells must fork.
PUNO_PREFIX_FORK=0 PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 \
    > "$RES_DIR/fork0.txt" 2> /dev/null
PUNO_PREFIX_FORK=1 PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 \
    > "$RES_DIR/fork1.txt" 2> /dev/null
sed '/^simulator throughput/,$d' "$RES_DIR/fork0.txt" > "$RES_DIR/fork0.det.txt"
sed '/^simulator throughput/,$d' "$RES_DIR/fork1.txt" > "$RES_DIR/fork1.det.txt"
diff "$RES_DIR/fork0.det.txt" "$RES_DIR/fork1.det.txt" \
    || { echo "prefix-fork sweep diverged from straight-line execution"; exit 1; }
grep -q "prefix-fork: 24 forked cell(s)" "$RES_DIR/fork1.txt" \
    || { echo "fork-on sweep did not fork every non-runner cell"; exit 1; }
! grep -q "prefix-fork:" "$RES_DIR/fork0.txt" \
    || { echo "fork-off sweep unexpectedly reported prefix sharing"; exit 1; }
echo "prefix-fork smoke OK (fork-on and fork-off sweeps byte-identical, 24 cells forked)"

echo "== NoC express smoke (golden sweep, express-on vs express-off) =="
# The analytic express path fast-forwards contention-free packets past the
# cycle-stepped routers and quiesces the run loop while only express
# flights are in the air. It must be invisible in everything deterministic:
# the full golden-scale sweep runs once with express on (the default) and
# once with it off, and all rows above the host-perf section must match
# byte for byte. The on-sweep must honestly report its express activity
# (and a filtered ssca2 sweep proves the hit rate is nonzero on the
# workload the throughput claim is made on); the off-sweep must not.
PUNO_NOC_EXPRESS=1 PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 \
    > "$RES_DIR/express1.txt" 2> /dev/null
PUNO_NOC_EXPRESS=0 PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 \
    > "$RES_DIR/express0.txt" 2> /dev/null
sed '/^simulator throughput/,$d' "$RES_DIR/express1.txt" > "$RES_DIR/express1.det.txt"
sed '/^simulator throughput/,$d' "$RES_DIR/express0.txt" > "$RES_DIR/express0.det.txt"
diff "$RES_DIR/express1.det.txt" "$RES_DIR/express0.det.txt" \
    || { echo "express sweep diverged from the cycle-stepped run"; exit 1; }
grep -q "express: " "$RES_DIR/express1.txt" \
    || { echo "express-on sweep reported no express activity"; exit 1; }
! grep -q "express: " "$RES_DIR/express0.txt" \
    || { echo "express-off sweep unexpectedly reported express activity"; exit 1; }
PUNO_NOC_EXPRESS=1 PUNO_SWEEP_THREADS=4 "$SWEEP_BIN" 0.05 1 --filter ssca2 \
    > "$RES_DIR/express_ssca2.txt" 2> /dev/null
grep -q "express: " "$RES_DIR/express_ssca2.txt" \
    || { echo "ssca2 cells never took the express path"; exit 1; }
echo "express smoke OK (express-on and express-off sweeps byte-identical, ssca2 hit rate nonzero)"

echo "== traced smoke (one cell, JSONL schema + Chrome export) =="
# Re-run one sweep cell fully traced: every JSONL line must parse as a
# trace record within the requested channel filter, and the Chrome-trace
# conversion must succeed. Runs inside the cache dir to prove --trace
# bypasses the result cache (the cell is warm from the cache smoke above).
PUNO_RESULT_CACHE="$CACHE_DIR" PUNO_TRACE="htm,coh,noc" PUNO_TRACE_OUT="$CACHE_DIR" \
    cargo run --offline --release -q -p puno-harness --bin sweep_all -- 0.05 1 \
    --trace ssca2:baseline > "$CACHE_DIR/traced.txt"
TRACE_JSONL="$CACHE_DIR/trace_ssca2_baseline_s1.jsonl"
[ -s "$TRACE_JSONL" ] || { echo "traced cell produced no JSONL stream"; exit 1; }
cargo run --offline --release -q -p puno-harness --bin trace_export -- \
    "$TRACE_JSONL" --validate --channels htm,coh,noc
cargo run --offline --release -q -p puno-harness --bin trace_export -- \
    "$TRACE_JSONL" --out "$CACHE_DIR/trace.chrome.json"
[ -s "$CACHE_DIR/trace.chrome.json" ] || { echo "Chrome export is empty"; exit 1; }
grep -q "abort blame" "$CACHE_DIR/traced.txt" \
    || { echo "traced cell printed no telemetry summary"; exit 1; }
echo "traced smoke OK"

echo "== observability smoke (mid-flight scrape, heartbeat, warehouse, byte-diff) =="
# A metrics-enabled sweep must serve valid Prometheus exposition text while
# it runs, stream progress heartbeats to stderr, record one warehouse row
# per cell — and leave the deterministic stdout byte-identical to the plain
# sweep captured above (ref.det.txt). The scrape uses bash's /dev/tcp so
# the gate needs no extra tooling.
OBS_DIR="$RES_DIR/obs"
mkdir -p "$OBS_DIR"
METRICS_PORT=$((20000 + RANDOM % 20000))
PUNO_METRICS_ADDR="127.0.0.1:$METRICS_PORT" PUNO_PROGRESS=0.2 \
    PUNO_WAREHOUSE="$OBS_DIR/wh" PUNO_RUN_ID=ci-a PUNO_SWEEP_THREADS=1 \
    "$SWEEP_BIN" 0.05 1 > "$OBS_DIR/obs_on.txt" 2> "$OBS_DIR/obs_on.err" &
OBS_PID=$!
GOT_EXPO=0
GOT_SERIES=0
while kill -0 "$OBS_PID" 2>/dev/null; do
    BODY="$( (exec 3<>"/dev/tcp/127.0.0.1/$METRICS_PORT" \
        && printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3 && cat <&3) 2>/dev/null || true)"
    if printf '%s' "$BODY" | grep -q '# TYPE puno_sweep_cells_started_total counter'; then
        GOT_EXPO=1
    fi
    if printf '%s' "$BODY" | grep -Eq '^puno_sim_cycles_total\{[^}]*\} [1-9]'; then
        GOT_SERIES=1
    fi
    if [ "$GOT_EXPO" = 1 ] && [ "$GOT_SERIES" = 1 ]; then break; fi
    sleep 0.05
done
wait "$OBS_PID" || { echo "metrics-enabled sweep failed"; cat "$OBS_DIR/obs_on.err"; exit 1; }
[ "$GOT_EXPO" = 1 ] \
    || { echo "never scraped valid exposition text from the live sweep"; exit 1; }
[ "$GOT_SERIES" = 1 ] \
    || { echo "never saw a nonzero puno_sim_cycles_total series mid-flight"; exit 1; }
grep -q '^progress: ' "$OBS_DIR/obs_on.err" \
    || { echo "no progress heartbeat on stderr:"; cat "$OBS_DIR/obs_on.err"; exit 1; }
sed '/^simulator throughput/,$d' "$OBS_DIR/obs_on.txt" > "$OBS_DIR/obs_on.det.txt"
diff "$RES_DIR/ref.det.txt" "$OBS_DIR/obs_on.det.txt" \
    || { echo "observability changed the deterministic sweep output"; exit 1; }
# Record a second (filtered) run under another run id, then reproduce the
# cross-run aggregates from the persisted warehouse alone.
PUNO_WAREHOUSE="$OBS_DIR/wh" PUNO_RUN_ID=ci-b PUNO_SWEEP_THREADS=1 \
    "$SWEEP_BIN" 0.05 1 --filter ssca2 > /dev/null 2>/dev/null
cargo build --offline --release -q -p puno-harness --bin warehouse
WAREHOUSE_BIN="target/release/warehouse"
"$WAREHOUSE_BIN" --dir "$OBS_DIR/wh" stats > "$OBS_DIR/wh_stats.txt"
grep -q "across 2 run(s)" "$OBS_DIR/wh_stats.txt" \
    || { echo "warehouse did not record both runs:"; cat "$OBS_DIR/wh_stats.txt"; exit 1; }
"$WAREHOUSE_BIN" --dir "$OBS_DIR/wh" trend > "$OBS_DIR/wh_trend.txt"
grep -q "ci-a" "$OBS_DIR/wh_trend.txt" && grep -q "ci-b" "$OBS_DIR/wh_trend.txt" \
    || { echo "throughput trend is missing a recorded run:"; cat "$OBS_DIR/wh_trend.txt"; exit 1; }
"$WAREHOUSE_BIN" --dir "$OBS_DIR/wh" delta > "$OBS_DIR/wh_delta.txt"
grep -q "ci-b.*ssca2" "$OBS_DIR/wh_delta.txt" \
    || { echo "abort-rate delta missing for the second run:"; cat "$OBS_DIR/wh_delta.txt"; exit 1; }
echo "observability smoke OK (live scrape valid, heartbeat streamed, 2-run warehouse aggregates, stdout byte-identical)"

echo "== substrate bench smoke (vs checked-in baseline) =="
# Fails if any benchmark runs >25% slower than results/BENCH_substrate_baseline.json,
# or on missing-key drift in either direction (a benchmark added without a
# baseline refresh, or one that silently vanished from the run).
# On a noisy/shared machine, set PUNO_BENCH_ALLOW_REGRESSION=1 to demote the
# failure to a warning; refresh the baseline with:
#   BENCH_SUBSTRATE_ITERS=smoke scripts/bench.sh results/BENCH_substrate_baseline.json
BENCH_SUBSTRATE_ITERS=smoke \
BENCH_SUBSTRATE_BASELINE="$PWD/results/BENCH_substrate_baseline.json" \
    cargo bench --offline -q -p puno-bench --bench substrate

echo "CI OK"
