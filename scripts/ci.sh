#!/usr/bin/env bash
# Full CI gate: formatting, lints, the test suite, and a fault-injection
# smoke sweep (every cell must complete with zero structured failures).
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== fault smoke (0.05 scale, intensity 1.0) =="
cargo run --offline --release -q -p puno-harness --bin fault_smoke -- 0.05 1.0 1

echo "CI OK"
