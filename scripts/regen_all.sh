#!/usr/bin/env bash
# Regenerate every paper artifact at full scale into results/.
# Usage: scripts/regen_all.sh [scale] [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"
SEED="${2:-1}"
export PUNO_JSON_DIR="$PWD/results"
mkdir -p results

echo "== building =="
cargo build --release -q -p puno-bench -p puno-harness

run() {
    local bin="$1"
    echo "== $bin (scale $SCALE, seed $SEED) =="
    cargo run --release -q -p puno-bench --bin "$bin" -- "$SCALE" "$SEED" \
        | tee "results/${bin}.txt"
}

run table1
cargo run --release -q -p puno-bench --bin table2 | tee results/table2.txt
cargo run --release -q -p puno-bench --bin table3 | tee results/table3.txt
run fig2
run fig3
run fig10
run fig11
run fig12
run fig13
run fig14
run ablation
run sensitivity
run characterize

echo "== done; artifacts in results/ =="
