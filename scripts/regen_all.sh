#!/usr/bin/env bash
# Regenerate every paper artifact at full scale into results/.
# Usage: scripts/regen_all.sh [scale] [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"
SEED="${2:-1}"
export PUNO_JSON_DIR="$PWD/results"
# Persistent result cache: every figure binary sweeps the same grid, so
# after the first binary populates the cache the rest replay their cells
# (and a re-run at unchanged inputs skips simulation entirely). Set
# PUNO_RESULT_CACHE=off to force cold runs; delete results/cache (or bump
# ENGINE_VERSION in crates/harness/src/cache.rs) to invalidate.
export PUNO_RESULT_CACHE="${PUNO_RESULT_CACHE:-$PWD/results/cache}"
mkdir -p results

echo "== building =="
cargo build --release -q -p puno-bench -p puno-harness

run() {
    local bin="$1"
    echo "== $bin (scale $SCALE, seed $SEED) =="
    cargo run --release -q -p puno-bench --bin "$bin" -- "$SCALE" "$SEED" \
        | tee "results/${bin}.txt"
}

run table1
cargo run --release -q -p puno-bench --bin table2 | tee results/table2.txt
cargo run --release -q -p puno-bench --bin table3 | tee results/table3.txt
run fig2
run fig3
run fig10
run fig11
run fig12
run fig13
run fig14
run ablation
run sensitivity
run characterize

echo "== done; artifacts in results/ =="
