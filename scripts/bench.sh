#!/usr/bin/env bash
# Substrate benchmark runner: times the simulation substrate (event queue,
# NoC, directory, predictor structures, hot-state containers: rwset/linemap/
# l1) plus end-to-end system/throughput runs, and emits a machine-readable
# BENCH_substrate.json.
#
# Usage: scripts/bench.sh [out.json]
#
# Environment passthrough (see crates/bench/benches/substrate.rs):
#   BENCH_SUBSTRATE_ITERS      smoke | float multiplier (default full-size)
#   BENCH_SUBSTRATE_BASELINE   compare against a prior JSON, fail on >25%
#                              slowdown per benchmark or missing-key drift
#   PUNO_BENCH_ALLOW_REGRESSION=1  demote baseline failures to warnings
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_substrate.json}"
# cargo runs the bench with cwd = crates/bench; anchor the output path here.
case "$out" in
    /*) ;;
    *) out="$PWD/$out" ;;
esac

BENCH_SUBSTRATE_JSON="$out" \
    cargo bench --offline -q -p puno-bench --bench substrate

echo "benchmark results written to $out"
