//! Affine SRAM/register-array area & power model, calibrated at 65 nm,
//! 2.3 GHz, 0.9 V against the paper's Table III.
//!
//! Area: `instances * A_FIX + total_bits * A_BIT` — macro overhead
//! (decoder, sense amps, periphery) per instance plus cell area per bit.
//! The two constants are solved exactly from the paper's P-Buffer
//! (16 instances x 544 bits) and TxLB (16 instances x 1024 bits) rows.
//!
//! Power: same shape, but wide shallow structures embedded next to the
//! directory tags (the UD pointers) burn less per bit than clocked SRAM
//! macros, so the model carries two array kinds with separate per-bit power
//! coefficients; the `RegisterFile` coefficient is solved from the UD row.

use serde::{Deserialize, Serialize};

/// Per-instance fixed area (um^2): decoder + periphery of a small macro.
const A_FIX: f64 = 245.58;
/// Area per bit (um^2) at 65 nm.
const A_BIT: f64 = 0.088_541_67;
/// Per-instance fixed power (mW).
const P_FIX: f64 = 0.438;
/// Per-bit power (mW) for clocked SRAM macros.
const P_BIT_MACRO: f64 = 3.125e-5;
/// Per-bit power (mW) for register-file style arrays.
const P_BIT_RF: f64 = 1.917e-5;

/// Physical style of the array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrayKind {
    /// Compiled SRAM macro (P-Buffer, TxLB).
    Macro,
    /// Wide, shallow register array co-located with other logic
    /// (UD pointers alongside directory entries).
    RegisterFile,
}

/// One hardware structure to estimate.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SramArray {
    pub name: &'static str,
    pub kind: ArrayKind,
    /// Physical instances on the chip (e.g. one per node / per bank).
    pub instances: u32,
    pub entries_per_instance: u32,
    pub bits_per_entry: u32,
}

/// Area/power estimate for one structure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SramEstimate {
    pub area_um2: f64,
    pub power_mw: f64,
}

impl SramArray {
    pub fn total_bits(&self) -> u64 {
        self.instances as u64 * self.entries_per_instance as u64 * self.bits_per_entry as u64
    }

    pub fn estimate(&self) -> SramEstimate {
        let bits = self.total_bits() as f64;
        let area_um2 = self.instances as f64 * A_FIX + bits * A_BIT;
        let p_bit = match self.kind {
            ArrayKind::Macro => P_BIT_MACRO,
            ArrayKind::RegisterFile => P_BIT_RF,
        };
        let power_mw = self.instances as f64 * P_FIX + bits * p_bit;
        SramEstimate { area_um2, power_mw }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_err(got: f64, want: f64) -> f64 {
        (got - want).abs() / want * 100.0
    }

    #[test]
    fn pbuffer_matches_table_iii() {
        // 16 banks x 16 entries x (32-bit priority + 2-bit validity).
        let pb = SramArray {
            name: "Prio-Buffer",
            kind: ArrayKind::Macro,
            instances: 16,
            entries_per_instance: 16,
            bits_per_entry: 34,
        };
        let e = pb.estimate();
        assert!(pct_err(e.area_um2, 4700.0) < 1.0, "area {}", e.area_um2);
        assert!(pct_err(e.power_mw, 7.28) < 1.0, "power {}", e.power_mw);
    }

    #[test]
    fn txlb_matches_table_iii() {
        // 16 nodes x 32 entries x 32-bit average length.
        let txlb = SramArray {
            name: "TxLB",
            kind: ArrayKind::Macro,
            instances: 16,
            entries_per_instance: 32,
            bits_per_entry: 32,
        };
        let e = txlb.estimate();
        assert!(pct_err(e.area_um2, 5380.0) < 1.0, "area {}", e.area_um2);
        assert!(pct_err(e.power_mw, 7.52) < 1.0, "power {}", e.power_mw);
    }

    #[test]
    fn ud_pointers_match_table_iii() {
        // 16 banks x 3840 tracked directory entries x 8 bits (the paper's
        // memory-compiler-constrained overestimate; 4 bits suffice for 16
        // nodes).
        let ud = SramArray {
            name: "UD pointers",
            kind: ArrayKind::RegisterFile,
            instances: 16,
            entries_per_instance: 3840,
            bits_per_entry: 8,
        };
        let e = ud.estimate();
        assert!(pct_err(e.area_um2, 47400.0) < 1.0, "area {}", e.area_um2);
        assert!(pct_err(e.power_mw, 16.43) < 3.0, "power {}", e.power_mw);
    }

    #[test]
    fn area_scales_linearly_in_entries() {
        let small = SramArray {
            name: "s",
            kind: ArrayKind::Macro,
            instances: 1,
            entries_per_instance: 16,
            bits_per_entry: 32,
        };
        let big = SramArray {
            entries_per_instance: 32,
            ..small
        };
        let ds = big.estimate().area_um2 - small.estimate().area_um2;
        assert!((ds - 16.0 * 32.0 * A_BIT).abs() < 1e-9);
    }
}
