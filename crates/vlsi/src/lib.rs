//! # puno-vlsi
//!
//! Analytic area/power model reproducing the paper's Table III overhead
//! estimation.
//!
//! The paper used a commercial memory compiler at 65 nm / 2.3 GHz / 0.9 V
//! and compared against the Sun Rock (16 cores, 14,000,000 um^2 and 10 W
//! per core, same node and frequency). We cannot run a proprietary memory
//! compiler, so this module uses a CACTI-style analytic SRAM model — area
//! and dynamic+leakage power as affine functions of bit count with
//! per-port overheads — **calibrated so the three structures the paper
//! sizes land on its reported values** (P-Buffer 4700 um^2 / 7.28 mW,
//! TxLB 5380 um^2 / 7.52 mW, UD pointers 47400 um^2 / 16.43 mW). The model
//! then extrapolates to other configurations (different node counts, entry
//! counts, widths) for the sensitivity ablations.

pub mod rock;
pub mod sensitivity;
pub mod sram;
pub mod table3;

pub use rock::RockBaseline;
pub use sensitivity::PunoHardwareConfig;
pub use sram::{SramArray, SramEstimate};
pub use table3::{paper_components, table3, Table3, Table3Row};
