//! Table III assembly: the three PUNO structures, their estimates, and the
//! overhead versus the Rock baseline.

use crate::rock::RockBaseline;
use crate::sram::{ArrayKind, SramArray, SramEstimate};
use serde::Serialize;

/// One row of Table III.
#[derive(Clone, Debug, Serialize)]
pub struct Table3Row {
    pub component: &'static str,
    pub area_um2: f64,
    pub power_mw: f64,
    /// The paper's reported value, for side-by-side display.
    pub paper_area_um2: f64,
    pub paper_power_mw: f64,
}

/// The full table.
#[derive(Clone, Debug, Serialize)]
pub struct Table3 {
    pub rows: Vec<Table3Row>,
    pub total_area_um2: f64,
    pub total_power_mw: f64,
    pub area_overhead_pct: f64,
    pub power_overhead_pct: f64,
}

/// The three structures PUNO adds, sized per Table II (16 nodes, 16-entry
/// P-Buffer, 32-entry TxLB, 8-bit UD pointers per tracked directory entry).
pub fn paper_components() -> [(SramArray, f64, f64); 3] {
    [
        (
            SramArray {
                name: "Prio-Buffer",
                kind: ArrayKind::Macro,
                instances: 16,
                entries_per_instance: 16,
                bits_per_entry: 34,
            },
            4700.0,
            7.28,
        ),
        (
            SramArray {
                name: "TxLB",
                kind: ArrayKind::Macro,
                instances: 16,
                entries_per_instance: 32,
                bits_per_entry: 32,
            },
            5380.0,
            7.52,
        ),
        (
            SramArray {
                name: "UD pointers",
                kind: ArrayKind::RegisterFile,
                instances: 16,
                entries_per_instance: 3840,
                bits_per_entry: 8,
            },
            47400.0,
            16.43,
        ),
    ]
}

/// Build Table III from the analytic model.
pub fn table3() -> Table3 {
    let rock = RockBaseline::default();
    let mut rows = Vec::new();
    let mut total = SramEstimate {
        area_um2: 0.0,
        power_mw: 0.0,
    };
    for (array, paper_area, paper_power) in paper_components() {
        let e = array.estimate();
        total.area_um2 += e.area_um2;
        total.power_mw += e.power_mw;
        rows.push(Table3Row {
            component: array.name,
            area_um2: e.area_um2,
            power_mw: e.power_mw,
            paper_area_um2: paper_area,
            paper_power_mw: paper_power,
        });
    }
    Table3 {
        rows,
        total_area_um2: total.area_um2,
        total_power_mw: total.power_mw,
        area_overhead_pct: rock.area_overhead_pct(total.area_um2),
        power_overhead_pct: rock.power_overhead_pct(total.power_mw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_within_tolerance() {
        let t = table3();
        // Paper overall: 57,480 um^2 / 31.23 mW -> 0.41% / 0.31%.
        assert!((t.total_area_um2 - 57_480.0).abs() / 57_480.0 < 0.01);
        assert!((t.total_power_mw - 31.23).abs() / 31.23 < 0.03);
        assert!(t.area_overhead_pct < 0.45, "{}", t.area_overhead_pct);
        assert!(t.power_overhead_pct < 0.35, "{}", t.power_overhead_pct);
    }

    #[test]
    fn every_row_close_to_paper() {
        for row in table3().rows {
            let area_err = (row.area_um2 - row.paper_area_um2).abs() / row.paper_area_um2;
            let power_err = (row.power_mw - row.paper_power_mw).abs() / row.paper_power_mw;
            assert!(area_err < 0.02, "{}: area off by {area_err}", row.component);
            assert!(
                power_err < 0.03,
                "{}: power off by {power_err}",
                row.component
            );
        }
    }

    #[test]
    fn ud_pointers_dominate_the_overhead() {
        let t = table3();
        let ud = t
            .rows
            .iter()
            .find(|r| r.component == "UD pointers")
            .unwrap();
        assert!(ud.area_um2 > t.total_area_um2 * 0.7);
    }
}
