//! The Sun Rock comparison baseline of Table III.

use serde::{Deserialize, Serialize};

/// Published Rock numbers the paper normalizes against: a 16-core, 65 nm,
/// 2.3 GHz CMT SPARC with HTM support; each core occupies 14,000,000 um^2
/// and dissipates 10 W.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RockBaseline {
    pub cores: u32,
    pub core_area_um2: f64,
    pub core_power_mw: f64,
}

impl Default for RockBaseline {
    fn default() -> Self {
        Self {
            cores: 16,
            core_area_um2: 14_000_000.0,
            core_power_mw: 10_000.0,
        }
    }
}

impl RockBaseline {
    /// Overhead of `area_um2` relative to one Rock core, in percent — the
    /// paper's normalization ("less than 0.41% more area" compares the total
    /// PUNO area against a single 14 mm^2 core).
    pub fn area_overhead_pct(&self, area_um2: f64) -> f64 {
        area_um2 / self.core_area_um2 * 100.0
    }

    pub fn power_overhead_pct(&self, power_mw: f64) -> f64 {
        power_mw / self.core_power_mw * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overheads_reproduce() {
        let rock = RockBaseline::default();
        // Table III overall row: 57,480 um^2 and 31.23 mW.
        let area = rock.area_overhead_pct(57_480.0);
        let power = rock.power_overhead_pct(31.23);
        assert!((area - 0.41).abs() < 0.01, "area overhead {area}");
        assert!((power - 0.31).abs() < 0.01, "power overhead {power}");
    }
}
