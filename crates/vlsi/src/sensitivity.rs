//! Sensitivity analysis: how the PUNO hardware budget scales with system
//! parameters — node count, P-Buffer/TxLB sizing, UD pointer coverage.
//!
//! This extends Table III the way a design-space exploration would: the
//! paper's configuration is one point; these functions generate the curve.

use crate::rock::RockBaseline;
use crate::sram::{ArrayKind, SramArray};
use serde::Serialize;

/// A full PUNO hardware configuration to estimate.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PunoHardwareConfig {
    pub nodes: u32,
    pub pbuffer_entries_per_bank: u32,
    /// Priority width in bits (32 in the paper).
    pub priority_bits: u32,
    pub txlb_entries_per_node: u32,
    /// Directory entries with a UD pointer, per bank.
    pub ud_entries_per_bank: u32,
    /// UD pointer width (8 in the paper's overestimate; log2(nodes) suffices).
    pub ud_bits: u32,
}

impl PunoHardwareConfig {
    /// The paper's Table II/III configuration.
    pub fn paper() -> Self {
        Self {
            nodes: 16,
            pbuffer_entries_per_bank: 16,
            priority_bits: 32,
            txlb_entries_per_node: 32,
            ud_entries_per_bank: 3840,
            ud_bits: 8,
        }
    }

    /// Scale to an `n`-node CMP keeping the paper's per-node proportions
    /// and tight pointer widths.
    pub fn scaled_to_nodes(n: u32) -> Self {
        let ud_bits = 32 - (n - 1).leading_zeros();
        Self {
            nodes: n,
            pbuffer_entries_per_bank: n,
            priority_bits: 32,
            txlb_entries_per_node: 32,
            ud_entries_per_bank: 3840,
            ud_bits: ud_bits.max(1),
        }
    }

    fn arrays(&self) -> [SramArray; 3] {
        [
            SramArray {
                name: "Prio-Buffer",
                kind: ArrayKind::Macro,
                instances: self.nodes,
                entries_per_instance: self.pbuffer_entries_per_bank,
                bits_per_entry: self.priority_bits + 2,
            },
            SramArray {
                name: "TxLB",
                kind: ArrayKind::Macro,
                instances: self.nodes,
                entries_per_instance: self.txlb_entries_per_node,
                bits_per_entry: 32,
            },
            SramArray {
                name: "UD pointers",
                kind: ArrayKind::RegisterFile,
                instances: self.nodes,
                entries_per_instance: self.ud_entries_per_bank,
                bits_per_entry: self.ud_bits,
            },
        ]
    }

    /// Total area (um^2) and power (mW).
    pub fn totals(&self) -> (f64, f64) {
        self.arrays()
            .iter()
            .map(|a| a.estimate())
            .fold((0.0, 0.0), |(a, p), e| (a + e.area_um2, p + e.power_mw))
    }

    /// Area overhead percentage against one Rock-class core (the paper's
    /// normalization).
    pub fn area_overhead_pct(&self) -> f64 {
        RockBaseline::default().area_overhead_pct(self.totals().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_matches_table3() {
        let (area, power) = PunoHardwareConfig::paper().totals();
        assert!((area - 57_480.0).abs() / 57_480.0 < 0.01, "{area}");
        assert!((power - 31.23).abs() / 31.23 < 0.03, "{power}");
    }

    #[test]
    fn pbuffer_grows_quadratically_with_nodes() {
        // N banks x N entries: doubling nodes quadruples P-Buffer bits but
        // the (dominant) UD pointer area grows ~linearly in instances.
        let a16 = PunoHardwareConfig::scaled_to_nodes(16);
        let a64 = PunoHardwareConfig::scaled_to_nodes(64);
        let pb_bits16 = a16.pbuffer_entries_per_bank * a16.nodes;
        let pb_bits64 = a64.pbuffer_entries_per_bank * a64.nodes;
        assert_eq!(pb_bits64, 16 * pb_bits16);
    }

    #[test]
    fn overhead_stays_small_through_64_nodes() {
        for n in [16u32, 32, 64] {
            let pct = PunoHardwareConfig::scaled_to_nodes(n).area_overhead_pct();
            assert!(pct < 2.0, "{n} nodes: overhead {pct}% no longer negligible");
        }
    }

    #[test]
    fn tight_ud_pointers_shrink_the_paper_config() {
        let mut tight = PunoHardwareConfig::paper();
        tight.ud_bits = 4; // log2(16)
        assert!(tight.totals().0 < PunoHardwareConfig::paper().totals().0 * 0.7);
    }
}
