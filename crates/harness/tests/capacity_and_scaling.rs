//! Capacity-abort injection and mesh-size scaling tests.

use puno_coherence::l1::L1Config;
use puno_harness::run::run_with_config;
use puno_harness::{Mechanism, SystemConfig};
use puno_noc::Mesh;
use puno_workloads::{micro, StaticTxParams, WorkloadParams};

/// A workload whose write sets are guaranteed to exceed a pathologically
/// small L1's per-set pinning capacity.
fn fat_write_workload() -> WorkloadParams {
    WorkloadParams {
        name: "fat-writes".into(),
        static_txs: vec![StaticTxParams {
            weight: 1.0,
            reads: (0, 0),
            writes: (10, 14),
            rmw_fraction: 0.0,
            read_shared_fraction: 0.0,
            write_shared_fraction: 1.0,
            think_per_op: 2,
            scan_shared: 0,
            lead_reads: 0,
        }],
        // All writes land in a tiny shared region that maps to few L1 sets.
        shared_lines: 8,
        zipf_theta: 0.0,
        private_lines_per_node: 8,
        tx_per_node: 6,
        inter_tx_think: 20,
        non_tx_accesses: 0,
    }
}

#[test]
fn overflow_evictions_occur_and_the_system_still_completes() {
    // LogTM-style overflow: write sets larger than the L1 set capacity
    // force sticky writebacks; conflict detection survives at the home and
    // the transactions still commit (no capacity aborts, no deadlock).
    let mut config = SystemConfig::paper(Mechanism::Baseline);
    // 2 sets x 2 ways: a >4-line write set must overflow.
    config.l1 = L1Config { sets: 2, ways: 2 };
    let params = fat_write_workload();
    let m = run_with_config(config, &params, 3);
    assert_eq!(m.committed, 16 * 6, "every transaction must still commit");
    assert!(
        m.htm.overflow_evictions.get() > 0,
        "pathological L1 must overflow"
    );
}

#[test]
fn overflowed_transactions_commit_under_puno_too() {
    let mut config = SystemConfig::paper(Mechanism::Puno);
    config.l1 = L1Config { sets: 2, ways: 2 };
    let m = run_with_config(config, &fat_write_workload(), 5);
    assert_eq!(m.committed, 16 * 6);
    assert!(m.htm.overflow_evictions.get() > 0);
}

#[test]
fn overflowed_runs_stay_serializable() {
    // Counters on a tiny L1: overflow cannot corrupt committed values.
    use puno_harness::System;
    use puno_sim::LineAddr;
    let mut config = SystemConfig::paper(Mechanism::Baseline);
    config.l1 = L1Config { sets: 2, ways: 2 };
    let params = micro::counter(8, 10);
    let (metrics, memory) = System::new(config, &params, 7).run_full();
    assert_eq!(metrics.committed, 16 * 10);
    let total: u64 = (0..8).map(|i| memory.read(LineAddr(i))).sum();
    assert_eq!(total, 16 * 10, "overflow must not lose committed writes");
}

#[test]
fn table_ii_l1_never_overflows_this_workload() {
    // Sanity inverse: the Table II L1 (128 sets) absorbs the same write
    // sets without any overflow.
    let config = SystemConfig::paper(Mechanism::Baseline);
    let m = run_with_config(config, &fat_write_workload(), 3);
    assert_eq!(m.htm.overflow_evictions.get(), 0);
}

#[test]
fn two_by_two_mesh_runs() {
    let mut config = SystemConfig::paper(Mechanism::Puno);
    config.mesh = Mesh::new(2, 2);
    let m = run_with_config(config, &micro::hotspot(10), 1);
    assert_eq!(m.committed, 4 * 10);
    assert!(m.cycles > 0);
}

#[test]
fn eight_by_eight_mesh_runs_and_puno_still_engages() {
    let mut config = SystemConfig::paper(Mechanism::Puno);
    config.mesh = Mesh::new(8, 8);
    let params = micro::hotspot(4);
    let m = run_with_config(config, &params, 1);
    assert_eq!(m.committed, 64 * 4);
    assert!(
        m.puno.unicasts.get() > 0,
        "predictor must engage on 64 nodes"
    );

    let mut base_cfg = SystemConfig::paper(Mechanism::Baseline);
    base_cfg.mesh = Mesh::new(8, 8);
    let base = run_with_config(base_cfg, &params, 1);
    assert_eq!(base.committed, m.committed);
    assert!(
        m.oracle.false_aborted_transactions <= base.oracle.false_aborted_transactions,
        "PUNO should not increase false aborts at 64 nodes ({} vs {})",
        m.oracle.false_aborted_transactions,
        base.oracle.false_aborted_transactions
    );
}

#[test]
fn rectangular_mesh_runs() {
    let mut config = SystemConfig::paper(Mechanism::Baseline);
    config.mesh = Mesh::new(4, 2);
    let m = run_with_config(config, &micro::counter(4, 8), 2);
    assert_eq!(m.committed, 8 * 8);
}
