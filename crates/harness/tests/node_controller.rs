//! Focused node-controller tests: writeback-buffer races, upgrade flows,
//! sticky sharers, and non-transactional conflict handling — the corner
//! cases of the protocol that unit tests inside `node.rs` do not reach
//! end-to-end.

use puno_coherence::l1::L1Config;
use puno_harness::run::run_with_config;
use puno_harness::{Mechanism, SystemConfig};
use puno_workloads::{micro, StaticTxParams, WorkloadParams};

/// A workload engineered to churn the L1 hard (private footprint much
/// larger than the cache) while also doing transactional work, so dirty
/// and clean-exclusive evictions (PUTX/PUTS) interleave with transactional
/// forwards and the writeback buffer actually gets exercised.
fn churn_workload() -> WorkloadParams {
    WorkloadParams {
        name: "churn".into(),
        static_txs: vec![StaticTxParams {
            weight: 1.0,
            reads: (2, 4),
            writes: (1, 2),
            rmw_fraction: 0.5,
            read_shared_fraction: 0.6,
            write_shared_fraction: 0.6,
            think_per_op: 3,
            scan_shared: 0,
            lead_reads: 1,
        }],
        shared_lines: 16,
        zipf_theta: 0.7,
        private_lines_per_node: 256,
        tx_per_node: 30,
        inter_tx_think: 10,
        non_tx_accesses: 8,
    }
}

#[test]
fn heavy_eviction_churn_completes_under_all_mechanisms() {
    // Tiny L1 -> constant evictions of private (dirty) and shared lines,
    // PUTX/PUTS racing forwards. The run completing at all proves the
    // writeback-buffer protocol has no deadlocks or lost lines.
    for mech in Mechanism::ALL {
        let mut config = SystemConfig::paper(mech);
        config.l1 = L1Config { sets: 4, ways: 2 };
        let m = run_with_config(config, &churn_workload(), 11);
        assert_eq!(m.committed, 16 * 30, "{mech:?}");
    }
}

#[test]
fn eviction_churn_is_deterministic() {
    let mut config = SystemConfig::paper(Mechanism::Puno);
    config.l1 = L1Config { sets: 4, ways: 2 };
    let a = run_with_config(config, &churn_workload(), 13);
    let b = run_with_config(config, &churn_workload(), 13);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.htm.aborts.get(), b.htm.aborts.get());
}

#[test]
fn read_mostly_sharing_keeps_upgrades_flowing() {
    // Readers + occasional writers -> plenty of S->M upgrades (UpgradeAck
    // path) and sticky stale sharers being invalidated without aborts.
    let m = run_with_config(
        SystemConfig::paper(Mechanism::Baseline),
        &micro::read_mostly(25),
        17,
    );
    assert_eq!(m.committed, 16 * 25);
    assert!(m.htm.aborts.get() > 0, "writers must occasionally clash");
}

#[test]
fn non_tx_heavy_interleaving_never_aborts_anyone_without_sharing() {
    // Non-transactional accesses only touch private lines, so even a
    // non-tx-heavy run must see zero NonTxConflict aborts.
    let m = run_with_config(
        SystemConfig::paper(Mechanism::Baseline),
        &churn_workload(),
        19,
    );
    assert_eq!(
        m.htm.aborts_for(puno_htm::AbortCause::NonTxConflict),
        0,
        "private non-tx traffic must not conflict with transactions"
    );
}

#[test]
fn trace_ring_captures_protocol_messages() {
    use puno_harness::System;
    let params = micro::counter(2, 3);
    let sys = System::new(SystemConfig::paper(Mechanism::Baseline), &params, 3);
    let (metrics, trace) = sys.run_traced(128);
    assert_eq!(metrics.committed, 16 * 3);
    // The retained window must contain real protocol messages, newest last.
    assert!(trace.contains("Unblock"), "trace:\n{trace}");
    assert!(trace.contains("N"), "node ids rendered");
}
