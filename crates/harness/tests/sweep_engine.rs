//! Bit-identity guard for the sweep-scale execution engine.
//!
//! `try_sweep` runs cells through three fast paths a plain
//! `System::new(..).try_run()` never touches: workload traces shared across
//! mechanism cells (`ProgramSet`), worker-thread `System` recycling
//! (`System::reset` + `try_run_recycled`), and persistent result-cache
//! replay. Each path must be invisible in the metrics. This test runs the
//! same 16 cells as `golden_metrics.rs` (8 workloads x {baseline, puno},
//! seed 42, scale 0.05) through a cold sweep and then a warm sweep against
//! the same cache directory, and compares every cell byte-for-byte against
//! the committed golden snapshots — which are produced by fresh
//! single-cell runs. Any divergence between fresh construction, recycling,
//! or cached replay fails here.

use puno_harness::sweep::{try_sweep, CellOutcome, SweepOptions};
use puno_harness::{Mechanism, ResultCache};
use puno_workloads::WorkloadId;
use std::path::PathBuf;
use std::sync::Arc;

const GOLDEN_SEED: u64 = 42;
const GOLDEN_SCALE: f64 = 0.05;
const MECHANISMS: [Mechanism; 2] = [Mechanism::Baseline, Mechanism::Puno];

fn golden_json(workload: WorkloadId, mechanism: Mechanism) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", workload.name(), mechanism.name()));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {path:?} ({e})"))
        .trim_end()
        .to_string()
}

fn assert_outcomes_match_golden(outcomes: &[CellOutcome], label: &str) {
    assert_eq!(outcomes.len(), WorkloadId::ALL.len() * MECHANISMS.len());
    let mut idx = 0;
    for &workload in &WorkloadId::ALL {
        for &mechanism in &MECHANISMS {
            let outcome = &outcomes[idx];
            idx += 1;
            let metrics = outcome
                .metrics()
                .unwrap_or_else(|| panic!("{label}: {workload:?}/{mechanism:?} failed"));
            let got =
                serde_json::to_string(&metrics.deterministic()).expect("RunMetrics must serialize");
            assert_eq!(
                got,
                golden_json(workload, mechanism),
                "{label}: {workload:?}/{mechanism:?} diverged from the golden snapshot \
                 (the sweep fast path is not bit-identical to a fresh run)",
            );
        }
    }
}

/// All 16 golden cells through the recycled/shared sweep path (cold), then
/// again through cached replay (warm) — both bit-identical to the fresh
/// single-cell runs pinned by the golden snapshots.
#[test]
fn sweep_engine_paths_are_bit_identical_to_fresh_runs() {
    let dir = std::env::temp_dir().join(format!("puno-sweep-engine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut opts = SweepOptions::new(GOLDEN_SEED, GOLDEN_SCALE);
    opts.result_cache = Some(Arc::new(ResultCache::open(&dir).expect("cache dir")));

    // Cold pass: every cell simulates (shared programs + recycled Systems)
    // and is stored.
    let cold = try_sweep(&WorkloadId::ALL, &MECHANISMS, &opts);
    assert_outcomes_match_golden(&cold, "cold sweep");
    let stats = opts.result_cache.as_ref().unwrap().stats();
    assert_eq!(stats.hits, 0, "cold sweep must not hit");
    assert_eq!(stats.stores, 16, "cold sweep must store every cell");

    // Warm pass against a fresh handle over the same directory: every cell
    // must replay from disk without simulating, still bit-identical.
    let mut warm_opts = SweepOptions::new(GOLDEN_SEED, GOLDEN_SCALE);
    warm_opts.result_cache = Some(Arc::new(ResultCache::open(&dir).expect("cache dir")));
    let warm = try_sweep(&WorkloadId::ALL, &MECHANISMS, &warm_opts);
    assert_outcomes_match_golden(&warm, "warm sweep");
    let stats = warm_opts.result_cache.as_ref().unwrap().stats();
    assert_eq!(stats.hits, 16, "warm sweep must hit every cell");
    assert_eq!(stats.stores, 0, "warm sweep must not re-store");

    // The replayed metrics carry the cold run's host block verbatim (minus
    // the worker stamp applied per sweep): the full records, not just the
    // deterministic views, round-trip.
    for (c, w) in cold.iter().zip(&warm) {
        let c = c.metrics().unwrap();
        let w = w.metrics().unwrap();
        assert_eq!(
            serde_json::to_string(c).unwrap(),
            serde_json::to_string(w).unwrap(),
            "cached replay must be byte-identical including host counters",
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
