//! Bit-identity gate for the NoC express path (`System::set_noc_express`).
//!
//! Express delivery fast-forwards provably contention-free packets past the
//! cycle-stepped router pipeline and lets the run loop quiesce while only
//! express flights are in the network. The contract is that this is a pure
//! host-throughput optimisation: `RunMetrics::deterministic()` must be byte
//! identical with express on and off, in every execution mode. The committed
//! golden grid is the referee for the on-path, and a direct on-vs-off diff
//! covers modes the goldens do not (faults, forks).
//!
//! Express is toggled through the System API, never `PUNO_NOC_EXPRESS`:
//! tests in one binary share a process and `std::env::set_var` races.

use puno_harness::{Mechanism, PrefixStop, RunMetrics, System, SystemConfig};
use puno_sim::{FaultEvent, FaultKind, FaultPlan, NodeId};
use puno_workloads::{ProgramSet, WorkloadId};
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;
const GOLDEN_SCALE: f64 = 0.05;

fn det_json(metrics: &RunMetrics) -> String {
    serde_json::to_string(&metrics.deterministic()).expect("RunMetrics must serialize")
}

fn golden_json(workload: WorkloadId, mechanism: Mechanism) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", workload.name(), mechanism.name()));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {path:?} ({e})"))
        .trim_end()
        .to_string()
}

/// One golden-scale cell with a caller-chosen System setup.
fn run_cell(
    workload: WorkloadId,
    mechanism: Mechanism,
    configure: impl FnOnce(&mut System),
) -> RunMetrics {
    let params = workload.params().scaled(GOLDEN_SCALE);
    let config = SystemConfig::paper(mechanism);
    let programs = ProgramSet::generate(&params, config.nodes(), GOLDEN_SEED);
    let mut sys = System::new_shared(config, &params, GOLDEN_SEED, &programs);
    configure(&mut sys);
    sys.try_run_recycled().expect("golden-scale cell completes")
}

/// Every golden cell run express-on must (a) match the committed golden
/// snapshot byte for byte, (b) match its own express-off twin, and (c)
/// actually exercise the express path — a zero hit count would make the
/// whole suite vacuous.
#[test]
fn express_is_bit_identical_across_the_golden_grid() {
    let mut failures = Vec::new();
    for &workload in &WorkloadId::ALL {
        for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
            let cell = format!("{}/{}", workload.name(), mechanism.name());
            let on = run_cell(workload, mechanism, |sys| sys.set_noc_express(true));
            let off = run_cell(workload, mechanism, |sys| sys.set_noc_express(false));
            if det_json(&on) != golden_json(workload, mechanism) {
                failures.push(format!(
                    "{cell}: express-on diverged from the golden snapshot"
                ));
            }
            if det_json(&on) != det_json(&off) {
                failures.push(format!("{cell}: express-on diverged from express-off"));
            }
            if on.host.express_packets == 0 {
                failures.push(format!("{cell}: express path never admitted a packet"));
            }
            if off.host.express_packets != 0 || off.host.quiesced_cycles != 0 {
                failures.push(format!("{cell}: express-off run reported express activity"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "express transparency broken for {} cell(s):\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}

/// A fault plan mixing rate-based link stalls and delay jitter with
/// explicitly aimed mid-run `LinkStall` events. Stalls land while express
/// flights are in the air, forcing the mid-flight collapse/fallback path;
/// the faulted run must still be bit-identical on vs off, for every
/// mechanism.
#[test]
fn link_stall_and_jitter_faults_force_identical_fallback() {
    let plan = FaultPlan {
        events: (0..8)
            .map(|i| FaultEvent {
                at: 300 + i * 700,
                kind: FaultKind::LinkStall,
                node: NodeId((i % 16) as u16),
                magnitude: 24,
            })
            .collect(),
        ..FaultPlan::background(7, 1.0)
    };
    for &mechanism in &Mechanism::ALL {
        let run = |express: bool| {
            run_cell(WorkloadId::Ssca2, mechanism, |sys| {
                sys.set_fault_plan(plan.clone());
                sys.set_noc_express(express);
            })
        };
        let on = run(true);
        let off = run(false);
        assert!(
            on.faults.total() > 0,
            "{}: fault plan injected nothing — the fallback path went untested",
            mechanism.name()
        );
        assert!(
            on.host.express_packets > 0,
            "{}: no packet was expressed between faults",
            mechanism.name()
        );
        assert_eq!(
            det_json(&on),
            det_json(&off),
            "{}: express diverged under link-stall/jitter faults",
            mechanism.name()
        );
    }
}

/// Express under the intra-run parallel executor: 4 pooled workers with
/// express on must match the serial express-off run (and hence the golden
/// snapshot) for a contended and a low-contention workload.
#[test]
fn express_is_bit_identical_under_parallel_executor() {
    for workload in [WorkloadId::Ssca2, WorkloadId::Intruder] {
        for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
            let parallel_on = run_cell(workload, mechanism, |sys| {
                sys.set_run_threads(4);
                sys.set_noc_express(true);
            });
            let serial_off = run_cell(workload, mechanism, |sys| sys.set_noc_express(false));
            assert_eq!(
                det_json(&parallel_on),
                det_json(&serial_off),
                "{}/{}: express + 4 workers diverged from the serial express-off run",
                workload.name(),
                mechanism.name()
            );
            assert!(parallel_on.host.express_packets > 0);
        }
    }
}

/// Run the mechanism-neutral prefix under `prefix_express`, snapshot at the
/// fork point, fork into a fresh cell running under `cell_express`.
fn forked_run(
    workload: WorkloadId,
    mechanism: Mechanism,
    prefix_express: bool,
    cell_express: bool,
) -> RunMetrics {
    let params = workload.params().scaled(GOLDEN_SCALE);
    let config = SystemConfig::paper(mechanism);
    let programs = ProgramSet::generate(&params, config.nodes(), GOLDEN_SEED);
    let mut runner = System::new_shared(config, &params, GOLDEN_SEED, &programs);
    runner.set_noc_express(prefix_express);
    let stop = runner.run_prefix(None).expect("prefix must not fail");
    assert!(matches!(stop, PrefixStop::Armed { .. }));
    let snap = runner.snapshot();
    let mut sys = System::new_shared(config, &params, GOLDEN_SEED, &programs);
    sys.fork_from(&snap, config);
    sys.set_noc_express(cell_express);
    sys.try_run_recycled().expect("forked cell completes")
}

/// Snapshot/restore/fork transparency: the express setting is a host
/// execution strategy, not simulated state, so any (prefix, suffix)
/// combination of on/off must reproduce the golden snapshot — including the
/// mixed modes where the snapshot was taken by a system whose express flag
/// differs from the forked cell's. An express-off suffix forked from an
/// express-on prefix must also report zero express activity (the fork
/// resets the counters inherited from the prefix's network).
#[test]
fn express_is_transparent_across_snapshot_fork_paths() {
    for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
        let want = golden_json(WorkloadId::Ssca2, mechanism);
        for (prefix_express, cell_express) in
            [(true, true), (true, false), (false, true), (false, false)]
        {
            let m = forked_run(WorkloadId::Ssca2, mechanism, prefix_express, cell_express);
            assert_eq!(
                det_json(&m),
                want,
                "ssca2/{}: fork with prefix_express={prefix_express} \
                 cell_express={cell_express} diverged from the golden snapshot",
                mechanism.name()
            );
            if cell_express {
                assert!(m.host.express_packets > 0);
            } else {
                assert_eq!(
                    (m.host.express_packets, m.host.quiesced_cycles),
                    (0, 0),
                    "ssca2/{}: express-off suffix inherited prefix express counters",
                    mechanism.name()
                );
            }
        }
    }
}
