//! Integration tests for the live observability layer (`harness::obs` +
//! `harness::warehouse`).
//!
//! Enabling the global registry is process-wide and sticky, so every test
//! that needs it lives in this one binary: the golden comparisons here
//! prove obs-ON bit-identity, while `golden_metrics.rs` / `sweep_engine.rs`
//! (separate test binaries that never call `obs::enable`) pin the obs-OFF
//! side of the same snapshots.

use puno_harness::obs;
use puno_harness::sweep::{try_sweep_rows, SweepOptions};
use puno_harness::warehouse::{abort_rate_deltas, throughput_trend, Warehouse, WarehouseRow};
use puno_harness::{Mechanism, System, SystemConfig};
use puno_workloads::WorkloadId;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

const GOLDEN_SEED: u64 = 42;
const GOLDEN_SCALE: f64 = 0.05;

fn golden_json(workload: WorkloadId, mechanism: Mechanism) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", workload.name(), mechanism.name()));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {path:?} ({e})"))
        .trim_end()
        .to_string()
}

/// With the registry enabled and the sampler forced to a tight cadence,
/// the deterministic metrics view still matches the committed golden
/// snapshots byte-for-byte: sampling reads host counters only and can
/// never perturb simulated behaviour.
#[test]
fn forced_sampling_is_bit_identical_to_golden() {
    obs::enable();
    for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
        let workload = WorkloadId::Ssca2;
        let params = workload.params().scaled(GOLDEN_SCALE);
        let mut sys = System::new(SystemConfig::paper(mechanism), &params, GOLDEN_SEED);
        sys.set_obs_sample_every(64);
        let metrics = sys.try_run_recycled().expect("golden cell must run");
        let got =
            serde_json::to_string(&metrics.deterministic()).expect("RunMetrics must serialize");
        assert_eq!(
            got,
            golden_json(workload, mechanism),
            "{:?}/{mechanism:?} diverged from golden with live sampling forced on",
            workload,
        );
    }
}

fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .expect("send scrape request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    response
}

/// Sum every series of a counter family in rendered exposition text.
fn family_total(body: &str, name: &str) -> f64 {
    body.lines()
        .filter(|l| {
            l.starts_with(name)
                && l.as_bytes()
                    .get(name.len())
                    .is_some_and(|&b| b == b'{' || b == b' ')
        })
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

/// Scrape the exporter concurrently with an active sweep: every mid-flight
/// response is valid exposition text, and the final scrape shows the
/// sweep's work (cells started/completed, sim-cycle series from the run
/// sampler).
#[test]
fn live_scrape_serves_changing_metrics_during_sweep() {
    let registry = obs::enable();
    let addr = obs::serve(registry, "127.0.0.1:0").expect("bind exporter");

    let first = scrape(addr);
    assert!(first.starts_with("HTTP/1.0 200 OK"), "got: {first}");
    assert!(first.contains("text/plain; version=0.0.4"));

    let workloads = [WorkloadId::Ssca2, WorkloadId::Genome];
    let mechanisms = [Mechanism::Baseline, Mechanism::Puno];
    // Golden-scale cells run ~20k simulated cycles, several multiples of
    // the default 5000-cycle sample cadence — and the sampler always
    // publishes its residual totals at run end regardless.
    let opts = SweepOptions::new(GOLDEN_SEED, GOLDEN_SCALE);
    let done = AtomicBool::new(false);
    let outcomes = std::thread::scope(|s| {
        let sweep = s.spawn(|| {
            let r = try_sweep_rows(&workloads, &mechanisms, &opts);
            done.store(true, Ordering::Release);
            r
        });
        while !done.load(Ordering::Acquire) {
            let body = scrape(addr);
            assert!(
                body.starts_with("HTTP/1.0 200 OK"),
                "mid-sweep scrape failed: {body}"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        sweep.join().expect("sweep thread").0
    });
    assert_eq!(outcomes.len(), 4);

    let body = scrape(addr);
    assert!(body.contains("# TYPE puno_sweep_cells_started_total counter"));
    assert!(body.contains("# TYPE puno_sweep_cells_completed_total counter"));
    assert!(body.contains("# TYPE puno_sim_cycles_total counter"));
    assert!(body.contains("# TYPE puno_sim_cycles_per_sec gauge"));
    assert!(body.contains("puno_sweep_cells_completed_total{outcome=\"ok\"}"));
    // Counters are cumulative across the whole test binary, so >= this
    // sweep's contribution.
    assert!(family_total(&body, "puno_sweep_cells_started_total") >= 4.0);
    assert!(family_total(&body, "puno_sim_cycles_total") > 0.0);
    assert!(family_total(&body, "puno_sweep_cell_wall_seconds_count") >= 4.0);
}

/// Record two sweeps of the same cells under different run ids, then
/// reproduce the cross-run aggregates (throughput trend, PUNO-vs-baseline
/// abort delta) from the persisted warehouse alone.
#[test]
fn warehouse_reproduces_cross_run_aggregates() {
    let dir = std::env::temp_dir().join(format!("puno-obs-warehouse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wh = Warehouse::open(&dir).expect("open warehouse");

    for (run_id, recorded_unix) in [("run-a", 1_000u64), ("run-b", 2_000u64)] {
        for (digest, mechanism) in [(1u64, Mechanism::Baseline), (2, Mechanism::Puno)] {
            let params = WorkloadId::Ssca2.params().scaled(GOLDEN_SCALE);
            let metrics = System::new(SystemConfig::paper(mechanism), &params, GOLDEN_SEED)
                .try_run()
                .expect("cell must run");
            let row =
                WarehouseRow::from_metrics(run_id, recorded_unix, digest, "ok", false, &metrics);
            wh.append(&[row]).expect("append row");
        }
    }

    let (rows, stats) = wh.load();
    assert_eq!(stats.kept, 4);
    assert_eq!(
        stats.corrupt_skipped + stats.stale_skipped + stats.duplicate_collapsed,
        0
    );

    let trend = throughput_trend(&rows);
    assert_eq!(trend.len(), 1, "one workload recorded");
    let (workload, points) = &trend[0];
    assert_eq!(workload, "ssca2");
    assert_eq!(
        points.iter().map(|p| p.run_id.as_str()).collect::<Vec<_>>(),
        ["run-a", "run-b"],
        "runs ordered by recording time"
    );
    for p in points {
        assert_eq!(p.cells, 2);
        assert!(
            p.mean_mcycles_per_sec.is_finite() && p.mean_mcycles_per_sec > 0.0,
            "throughput must come from the recorded host counters"
        );
    }

    let deltas = abort_rate_deltas(&rows);
    assert_eq!(deltas.len(), 2, "one delta per recorded run");
    for d in &deltas {
        assert_eq!(d.workload, "ssca2");
        assert!(d.baseline_rate.is_finite() && d.puno_rate.is_finite());
        assert!(
            (d.delta_pp - (d.puno_rate - d.baseline_rate) * 100.0).abs() < 1e-9,
            "delta is derived from the recorded rates"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
