//! Bit-identity gate for prefix-fork execution.
//!
//! A sweep cell materialized by `System::fork_from` — restore the group's
//! mechanism-neutral prefix snapshot (`System::run_prefix`), swap in the
//! cell's mechanism — must produce `RunMetrics` byte-identical to a
//! straight-line run of that cell. The committed golden grid is the
//! referee, exactly as for the parallel executor: forked runs are compared
//! against the same snapshots the serial straight-line runs are blessed
//! from. The matrix covers both swap directions (prefix under Baseline
//! forking into Puno and vice versa), an armed `FaultPlan` (whose prefix
//! RNG draws are part of the shared state), 4 intra-run workers on the
//! forked suffix, the `PUNO_PREFIX_CYCLES`-style cap (which may only
//! shorten the prefix), and the sweep-level `prefix_fork` toggle.
//!
//! Worker counts and fork toggles are set through the System / SweepOptions
//! APIs, never env vars: tests in one binary share a process and
//! `std::env::set_var` races.

use puno_harness::sweep::{try_sweep, CellOutcome, SweepOptions};
use puno_harness::{fork_compatible, Mechanism, PrefixStop, RunMetrics, System, SystemConfig};
use puno_sim::FaultPlan;
use puno_workloads::{ProgramSet, WorkloadId};
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;
const GOLDEN_SCALE: f64 = 0.05;

fn golden_path(workload: WorkloadId, mechanism: Mechanism) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", workload.name(), mechanism.name()))
}

fn det_json(metrics: &RunMetrics) -> String {
    serde_json::to_string(&metrics.deterministic()).expect("RunMetrics must serialize")
}

fn golden_json(workload: WorkloadId, mechanism: Mechanism) -> String {
    let path = golden_path(workload, mechanism);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {path:?} ({e})"))
        .trim_end()
        .to_string()
}

/// Run `cell_mech` for `workload` by forking from a prefix executed under
/// `prefix_mech`. The forked cell starts from a *recycled* System built
/// for the target mechanism (the sweep's worker-System shape), so the test
/// also proves `fork_from` fully re-targets pre-existing state.
fn forked_run(
    workload: WorkloadId,
    prefix_mech: Mechanism,
    cell_mech: Mechanism,
    threads: usize,
    plan: Option<&FaultPlan>,
    cap: Option<u64>,
) -> RunMetrics {
    let params = workload.params().scaled(GOLDEN_SCALE);
    let prefix_config = SystemConfig::paper(prefix_mech);
    let programs = ProgramSet::generate(&params, prefix_config.nodes(), GOLDEN_SEED);
    let mut runner = System::new_shared(prefix_config, &params, GOLDEN_SEED, &programs);
    if let Some(p) = plan {
        runner.set_fault_plan(p.clone());
    }
    let stop = runner.run_prefix(cap).expect("prefix must not fail");
    assert!(
        matches!(stop, PrefixStop::Armed { .. }),
        "{}: every golden workload reaches a transaction",
        workload.name()
    );
    let snap = runner.snapshot();
    let cell_config = SystemConfig::paper(cell_mech);
    let mut sys = System::new_shared(cell_config, &params, GOLDEN_SEED, &programs);
    sys.fork_from(&snap, cell_config);
    sys.set_run_threads(threads);
    sys.try_run_recycled().expect("forked cell completes")
}

/// All 16 golden cells, forked in both swap directions (and via the
/// same-mechanism restore-only path), must match the committed golden
/// snapshots byte for byte — i.e. match the straight-line serial runs they
/// were blessed from.
#[test]
fn forked_runs_match_golden_snapshots_across_the_grid() {
    let mut mismatches = Vec::new();
    for &workload in &WorkloadId::ALL {
        for cell_mech in [Mechanism::Baseline, Mechanism::Puno] {
            let want = golden_json(workload, cell_mech);
            for prefix_mech in [Mechanism::Baseline, Mechanism::Puno] {
                let metrics = forked_run(workload, prefix_mech, cell_mech, 1, None, None);
                if want != det_json(&metrics) {
                    mismatches.push(format!(
                        "{}/{} forked from a {} prefix diverged from the golden snapshot",
                        workload.name(),
                        cell_mech.name(),
                        prefix_mech.name()
                    ));
                }
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "prefix fork broke bit-identity for {} cell(s):\n  {}",
        mismatches.len(),
        mismatches.join("\n  ")
    );
}

/// An armed fault plan draws from its RNG streams during the prefix; the
/// forked suffix must replay the remaining draws exactly as a straight-line
/// faulted run does — for every mechanism.
#[test]
fn fork_parity_with_fault_plan_armed() {
    let params = WorkloadId::Ssca2.params().scaled(GOLDEN_SCALE);
    let plan = FaultPlan::background(7, 1.0);
    for &mechanism in &Mechanism::ALL {
        let straight = {
            let mut sys = System::new(SystemConfig::paper(mechanism), &params, GOLDEN_SEED);
            sys.set_fault_plan(plan.clone());
            sys.try_run_recycled().expect("faulted cell completes")
        };
        assert!(
            straight.faults.total() > 0,
            "{}: the plan must actually fire",
            mechanism.name()
        );
        let forked = forked_run(
            WorkloadId::Ssca2,
            Mechanism::Baseline,
            mechanism,
            1,
            Some(&plan),
            None,
        );
        assert_eq!(
            det_json(&straight),
            det_json(&forked),
            "{}: faulted forked run diverged from straight line",
            mechanism.name()
        );
    }
}

/// Forked cells inherit the intra-run parallel executor: a 4-thread suffix
/// continued from the fork point must still match the golden snapshots.
#[test]
fn fork_parity_at_four_run_threads() {
    for &workload in &[WorkloadId::Intruder, WorkloadId::Bayes] {
        for cell_mech in [Mechanism::Baseline, Mechanism::Puno] {
            let prefix_mech = match cell_mech {
                Mechanism::Baseline => Mechanism::Puno,
                _ => Mechanism::Baseline,
            };
            let metrics = forked_run(workload, prefix_mech, cell_mech, 4, None, None);
            assert!(
                metrics.host.par_waves > 0,
                "{}/{}: the 4-thread suffix never engaged the pool",
                workload.name(),
                cell_mech.name()
            );
            assert_eq!(
                golden_json(workload, cell_mech),
                det_json(&metrics),
                "{}/{}: 4-thread forked run diverged from the golden snapshot",
                workload.name(),
                cell_mech.name()
            );
        }
    }
}

/// The prefix-cycle cap (`PUNO_PREFIX_CYCLES`) may only shorten the
/// prefix: forking from an earlier — even empty — prefix is still
/// bit-identical, just with less sharing.
#[test]
fn prefix_cap_only_shortens_and_stays_bit_identical() {
    let want = golden_json(WorkloadId::Genome, Mechanism::Puno);
    for cap in [Some(0), Some(3), Some(u64::MAX)] {
        let metrics = forked_run(
            WorkloadId::Genome,
            Mechanism::Baseline,
            Mechanism::Puno,
            1,
            None,
            cap,
        );
        assert_eq!(
            want,
            det_json(&metrics),
            "cap {cap:?}: capped-prefix fork diverged from the golden snapshot"
        );
    }
}

/// `fork_compatible` accepts mechanism-only drift and rejects everything
/// else (a snapshot from another machine describes a different cell).
#[test]
fn fork_compatible_normalizes_exactly_the_mechanism_axis() {
    let base = SystemConfig::paper(Mechanism::Baseline);
    for &m in &Mechanism::ALL {
        assert!(fork_compatible(&base, &SystemConfig::paper(m)));
    }
    assert!(!fork_compatible(
        &base,
        &SystemConfig::mesh8(Mechanism::Baseline)
    ));
    let mut slower = base;
    slower.commit_latency += 1;
    assert!(!fork_compatible(&base, &slower));
}

/// The sweep-level toggle: a fork-on sweep must produce outcome-for-outcome
/// identical deterministic metrics to a fork-off sweep, every non-runner
/// cell of each group must actually fork, and a fork-off sweep must never
/// fork.
#[test]
fn sweep_prefix_fork_matches_fork_off() {
    let workloads = [WorkloadId::Genome, WorkloadId::Ssca2];
    let run = |prefix_fork: bool| {
        let mut opts = SweepOptions::new(GOLDEN_SEED, GOLDEN_SCALE);
        opts.result_cache = None;
        opts.checkpoint = None;
        opts.prefix_fork = prefix_fork;
        try_sweep(&workloads, &Mechanism::ALL, &opts)
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.len(), on.len());
    let mut forks = 0u64;
    for (a, b) in off.iter().zip(on.iter()) {
        let (
            CellOutcome::Ok {
                key: ka,
                metrics: ma,
            },
            CellOutcome::Ok {
                key: kb,
                metrics: mb,
            },
        ) = (a, b)
        else {
            panic!("both sweeps must complete every cell");
        };
        assert_eq!(ka, kb);
        assert_eq!(
            det_json(ma),
            det_json(mb),
            "{}/{}: fork-on sweep diverged from fork-off",
            ka.workload.name(),
            ka.mechanism.name()
        );
        assert_eq!(ma.host.prefix_forks, 0, "fork-off sweep must not fork");
        forks += mb.host.prefix_forks;
    }
    // One prefix runner per (workload, seed) group; every sibling forks:
    // 2 workloads x 4 mechanisms - 2 runners.
    assert_eq!(
        forks, 6,
        "every non-runner cell must fork from the snapshot"
    );
}

/// `PUNO_PREFIX_FORK` / `PUNO_PREFIX_CYCLES` parsing (pure functions; the
/// env vars themselves are process-shared and not touched here).
#[test]
fn prefix_env_parsing() {
    use puno_harness::run::parse_prefix_fork;
    assert!(parse_prefix_fork(None));
    assert!(parse_prefix_fork(Some("1")));
    assert!(parse_prefix_fork(Some("on")));
    assert!(!parse_prefix_fork(Some("")));
    assert!(!parse_prefix_fork(Some("0")));
    assert!(!parse_prefix_fork(Some("off")));
    assert!(!parse_prefix_fork(Some("false")));
    assert!(!parse_prefix_fork(Some("no")));
    assert!(!parse_prefix_fork(Some(" OFF ")));
}
