//! Property tests for the snapshot-based resilience layer.
//!
//! The load-bearing claim is that a [`SystemSnapshot`] is *exact*: running
//! on past a snapshot (perturbing every queue, cache, predictor, and RNG
//! stream), rewinding with [`System::restore`], and re-running to
//! completion must reproduce the straight-line run bit for bit. The claim
//! is checked against the committed golden grid — with the snapshot ring
//! armed the whole way, which simultaneously proves the ring itself never
//! perturbs simulated behaviour — and under fault injection, whose
//! injector RNG state also rides in the snapshot.

use puno_harness::{Mechanism, RunMetrics, System, SystemConfig};
use puno_sim::FaultPlan;
use puno_workloads::WorkloadId;
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;
const GOLDEN_SCALE: f64 = 0.05;
/// Small enough that every golden cell rotates the ring at least once.
const SNAPSHOT_EVERY: u64 = 64;

fn golden_path(workload: WorkloadId, mechanism: Mechanism) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", workload.name(), mechanism.name()))
}

fn det_json(metrics: &RunMetrics) -> String {
    serde_json::to_string(&metrics.deterministic()).expect("RunMetrics must serialize")
}

/// Run one cell with the ring armed, then rewind to the last retained
/// snapshot (the finished system *is* the perturbed state — every
/// structure has advanced past the capture point) and replay to
/// completion. Returns (straight-line, replayed) metrics.
fn snapshot_roundtrip(mut sys: System) -> (RunMetrics, RunMetrics) {
    sys.set_snapshot_every(SNAPSHOT_EVERY);
    let straight = sys.try_run_recycled().expect("cell completes");
    assert!(
        sys.snapshot_ring_len() > 0,
        "a {SNAPSHOT_EVERY}-cycle interval must capture at least one snapshot"
    );
    let snap = sys.latest_snapshot().expect("ring is non-empty");
    assert!(snap.cycle() <= straight.cycles);
    sys.restore(&snap);
    let replayed = sys.try_run_recycled().expect("replay completes");
    (straight, replayed)
}

/// All 16 golden cells: straight-line output with the ring armed matches
/// the committed golden snapshot (snapshots are behaviour-neutral), and the
/// rewind-and-replay output matches the straight-line run (snapshots are
/// exact).
#[test]
fn snapshot_restore_replay_is_bit_identical_across_the_golden_grid() {
    let mut mismatches = Vec::new();
    for &workload in &WorkloadId::ALL {
        let params = workload.params().scaled(GOLDEN_SCALE);
        for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
            let sys = System::new(SystemConfig::paper(mechanism), &params, GOLDEN_SEED);
            let (straight, replayed) = snapshot_roundtrip(sys);
            let cell = format!("{}/{}", workload.name(), mechanism.name());
            let path = golden_path(workload, mechanism);
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden snapshot {path:?} ({e})"));
            if want.trim_end() != det_json(&straight) {
                mismatches.push(format!("{cell}: armed ring diverged from {path:?}"));
            }
            if det_json(&straight) != det_json(&replayed) {
                mismatches.push(format!("{cell}: rewind-and-replay diverged"));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "snapshot exactness broken for {} cell(s):\n  {}",
        mismatches.len(),
        mismatches.join("\n  ")
    );
}

/// Fault injection threads extra RNG streams and pending-fault state
/// through the run; all of it must ride in the snapshot too.
#[test]
fn snapshot_restore_replay_is_bit_identical_under_fault_injection() {
    let params = WorkloadId::Ssca2.params().scaled(GOLDEN_SCALE);
    let plan = FaultPlan::background(7, 1.0);

    // Reference: same faulted cell, no snapshot ring.
    let mut plain = System::new(SystemConfig::paper(Mechanism::Puno), &params, GOLDEN_SEED);
    plain.set_fault_plan(plan.clone());
    let reference = plain.try_run_recycled().expect("faulted cell completes");
    assert!(reference.faults.total() > 0, "the plan must actually fire");

    let mut sys = System::new(SystemConfig::paper(Mechanism::Puno), &params, GOLDEN_SEED);
    sys.set_fault_plan(plan);
    let (straight, replayed) = snapshot_roundtrip(sys);
    assert_eq!(
        det_json(&reference),
        det_json(&straight),
        "armed ring perturbed a faulted run"
    );
    assert_eq!(
        det_json(&straight),
        det_json(&replayed),
        "rewind-and-replay diverged under fault injection"
    );
}

/// A forced livelock with the ring armed must come back as a
/// rewind-and-dump error: the replayed trace (absent entirely on the
/// untraced first pass) covers the cycles leading into the stalled
/// watchdog window.
#[test]
fn watchdog_failure_rewinds_and_dumps_the_leadup_trace() {
    let params = puno_workloads::micro::hotspot(10);
    let mut config = SystemConfig::paper(Mechanism::Baseline);
    config.watchdog_window = 50;
    let mut sys = System::new(config, &params, 1);
    sys.set_snapshot_every(10);
    let err = sys
        .try_run_recycled()
        .expect_err("a 50-cycle progress window cannot be met");
    assert_eq!(err.kind(), "livelock");
    let trace = err.trace();
    // No tracer was installed: a non-empty trace can only have come from
    // the rewind replay, which forces every channel on.
    assert!(
        trace.contains("trace ring: capacity 4096"),
        "expected the rewind tracer's ring header, got:\n{trace}"
    );
    let stall = match &err {
        puno_harness::RunError::Livelock { cycles, .. } => *cycles,
        other => panic!("expected Livelock, got {other:?}"),
    };
    // Parse the `[     cycle] event` lines and check the dump reaches into
    // the final watchdog window.
    let cycles: Vec<u64> = trace
        .lines()
        .filter_map(|l| {
            let inner = l.strip_prefix('[')?.split(']').next()?;
            inner.trim().parse().ok()
        })
        .collect();
    assert!(
        !cycles.is_empty(),
        "rewind dump retained no events:\n{trace}"
    );
    let last = *cycles.last().unwrap();
    assert!(
        last >= stall.saturating_sub(config.watchdog_window) && last <= stall,
        "trace ends at cycle {last}, outside the stalled window ending at {stall}"
    );
}

/// End to end through the sweep driver and the report: a permanently
/// failing cell exhausts its retry budget, the sweep completes degraded,
/// and the quarantine section names exactly that cell.
#[test]
fn degraded_sweep_quarantines_the_failing_cell_and_reports_it() {
    use puno_harness::report::render_quarantine;
    use puno_harness::sweep::{try_sweep_with, SweepOptions};
    use puno_harness::{RetryPolicy, RunError};

    let workloads = [WorkloadId::Ssca2];
    let mechanisms = [Mechanism::Baseline, Mechanism::Puno];
    let mut opts = SweepOptions::new(11, 0.05);
    opts.retry = RetryPolicy::new(3);
    let outcomes = try_sweep_with(
        &workloads,
        &mechanisms,
        &opts,
        |m, params, seed, _traced| {
            if m == Mechanism::Puno {
                return Err(RunError::WorkerPanic {
                    payload: "permanent failure".into(),
                });
            }
            Ok(puno_harness::run::run_workload(m, params, seed))
        },
    );
    assert_eq!(outcomes.len(), 2);
    let baseline = outcomes
        .iter()
        .find(|o| o.key().mechanism == Mechanism::Baseline);
    let puno = outcomes
        .iter()
        .find(|o| o.key().mechanism == Mechanism::Puno);
    assert!(baseline.expect("baseline cell present").is_ok());
    let puno = puno.expect("puno cell present");
    assert!(puno.is_quarantined(), "exhausted budget must quarantine");
    assert_eq!(puno.attempts(), Some(3));
    let section = render_quarantine(&outcomes).expect("degraded sweep renders a section");
    assert!(section.contains("ssca2"), "{section}");
    assert!(section.contains("[quarantined]"), "{section}");
    assert!(section.contains("after 3 attempt(s)"), "{section}");
}
