//! Bit-identity regression guard for the simulation hot loop.
//!
//! Every STAMP-signature workload x {baseline, PUNO} at a fixed seed is run
//! end to end and its deterministic `RunMetrics` view (host-side throughput
//! counters zeroed) is serialized and compared byte-for-byte against a
//! committed golden snapshot. Any rewrite of the event queue, the NoC
//! stepping, the directory emit path, or the system loop that changes
//! simulated behaviour — even by one abort or one flit — fails here.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! PUNO_BLESS_GOLDEN=1 cargo test -p puno-harness --test golden_metrics
//! ```
//!
//! and commit the updated files with a justification in the PR description.

use puno_harness::run::run_workload;
use puno_harness::Mechanism;
use puno_workloads::WorkloadId;
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;
const GOLDEN_SCALE: f64 = 0.05;

fn golden_path(workload: WorkloadId, mechanism: Mechanism) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", workload.name(), mechanism.name()))
}

#[test]
fn run_metrics_match_golden_snapshots() {
    let bless = std::env::var("PUNO_BLESS_GOLDEN").is_ok();
    let mut mismatches = Vec::new();
    for &workload in &WorkloadId::ALL {
        let params = workload.params().scaled(GOLDEN_SCALE);
        for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
            let metrics = run_workload(mechanism, &params, GOLDEN_SEED);
            let got =
                serde_json::to_string(&metrics.deterministic()).expect("RunMetrics must serialize");
            let path = golden_path(workload, mechanism);
            if bless {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, format!("{got}\n")).unwrap();
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden snapshot {path:?} ({e}); \
                     regenerate with PUNO_BLESS_GOLDEN=1"
                )
            });
            if want.trim_end() != got {
                mismatches.push(format!(
                    "{}/{}: metrics diverged from {path:?}",
                    workload.name(),
                    mechanism.name()
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "bit-identity broken for {} cell(s):\n  {}\n\
         If the behaviour change is intentional, re-bless with \
         PUNO_BLESS_GOLDEN=1 and explain why in the PR.",
        mismatches.len(),
        mismatches.join("\n  ")
    );
}

/// The snapshots themselves must not depend on which host ran them: the
/// deterministic view zeroes every host-side counter.
#[test]
fn deterministic_view_zeroes_host_perf() {
    let params = WorkloadId::Ssca2.params().scaled(GOLDEN_SCALE);
    let metrics = run_workload(Mechanism::Baseline, &params, GOLDEN_SEED);
    let det = metrics.deterministic();
    assert_eq!(det.host, puno_harness::HostPerf::default());
    assert_eq!(det.cycles, metrics.cycles);
    assert_eq!(det.committed, metrics.committed);
}
