//! Determinism gate for the intra-run parallel executor.
//!
//! The sharded cycle-epoch executor (`PUNO_RUN_THREADS` > 1, see
//! `System::set_run_threads`) must be *bit-identical* to the serial loop:
//! same event order, same RNG draw order, same `RunMetrics` down to the
//! last flit — the committed golden grid is the referee. The matrix here
//! covers the plain grid at several worker counts, fault injection (whose
//! per-stream RNG draws must land in shard-merge order), the armed
//! snapshot ring, and a snapshot -> restore -> replay round trip executed
//! in parallel.
//!
//! Worker counts are set through `System::set_run_threads`, never the env
//! var: tests in one binary share a process and `std::env::set_var` races.

use puno_harness::{Mechanism, RunMetrics, System, SystemConfig};
use puno_sim::FaultPlan;
use puno_workloads::WorkloadId;
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;
const GOLDEN_SCALE: f64 = 0.05;
const SNAPSHOT_EVERY: u64 = 64;

fn golden_path(workload: WorkloadId, mechanism: Mechanism) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", workload.name(), mechanism.name()))
}

fn det_json(metrics: &RunMetrics) -> String {
    serde_json::to_string(&metrics.deterministic()).expect("RunMetrics must serialize")
}

fn run_cell(mechanism: Mechanism, workload: WorkloadId, threads: usize) -> RunMetrics {
    let params = workload.params().scaled(GOLDEN_SCALE);
    let mut sys = System::new(SystemConfig::paper(mechanism), &params, GOLDEN_SEED);
    sys.set_run_threads(threads);
    sys.try_run_recycled().expect("cell completes")
}

/// All 16 golden cells at 4 run-threads must match the committed golden
/// snapshots byte for byte — i.e. match what the serial loop produces.
#[test]
fn four_thread_runs_match_golden_snapshots_across_the_grid() {
    let mut mismatches = Vec::new();
    for &workload in &WorkloadId::ALL {
        for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
            let metrics = run_cell(mechanism, workload, 4);
            assert!(
                metrics.host.par_waves > 0,
                "{}/{}: the 4-thread run never engaged the pool",
                workload.name(),
                mechanism.name()
            );
            assert_eq!(metrics.host.run_workers, 4);
            let path = golden_path(workload, mechanism);
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden snapshot {path:?} ({e})"));
            if want.trim_end() != det_json(&metrics) {
                mismatches.push(format!(
                    "{}/{}: 4-thread metrics diverged from {path:?}",
                    workload.name(),
                    mechanism.name()
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "parallel executor broke bit-identity for {} cell(s):\n  {}",
        mismatches.len(),
        mismatches.join("\n  ")
    );
}

/// Worker counts that shard 16 nodes unevenly (3) or minimally (2) must
/// agree with the serial run too — shard boundaries are arbitrary.
#[test]
fn odd_worker_counts_match_serial() {
    let serial = det_json(&run_cell(Mechanism::Puno, WorkloadId::Bayes, 1));
    for threads in [2, 3, 4, 7] {
        assert_eq!(
            serial,
            det_json(&run_cell(Mechanism::Puno, WorkloadId::Bayes, threads)),
            "{threads}-thread run diverged from serial"
        );
    }
}

/// Fault injection draws from per-stream RNGs at inject time; the parallel
/// merge must replay those draws in exactly the serial order.
#[test]
fn fault_injection_is_bit_identical_under_parallel_execution() {
    let params = WorkloadId::Ssca2.params().scaled(GOLDEN_SCALE);
    let plan = FaultPlan::background(7, 1.0);
    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let mut sys = System::new(SystemConfig::paper(Mechanism::Puno), &params, GOLDEN_SEED);
        sys.set_fault_plan(plan.clone());
        sys.set_run_threads(threads);
        let metrics = sys.try_run_recycled().expect("faulted cell completes");
        assert!(metrics.faults.total() > 0, "the plan must actually fire");
        runs.push(det_json(&metrics));
    }
    assert_eq!(runs[0], runs[1], "faulted run diverged under 4 threads");
}

/// The snapshot ring rotates at cycle-epoch boundaries; arming it must not
/// perturb a parallel run, and rewinding to the last retained snapshot then
/// replaying — still on 4 threads — must reproduce the straight line.
#[test]
fn snapshot_ring_and_rewind_replay_are_bit_identical_under_parallel_execution() {
    let params = WorkloadId::Intruder.params().scaled(GOLDEN_SCALE);
    for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
        let serial = {
            let mut sys = System::new(SystemConfig::paper(mechanism), &params, GOLDEN_SEED);
            sys.set_snapshot_every(SNAPSHOT_EVERY);
            det_json(&sys.try_run_recycled().expect("serial armed run completes"))
        };
        let mut sys = System::new(SystemConfig::paper(mechanism), &params, GOLDEN_SEED);
        sys.set_snapshot_every(SNAPSHOT_EVERY);
        sys.set_run_threads(4);
        let straight = sys
            .try_run_recycled()
            .expect("parallel armed run completes");
        assert_eq!(
            serial,
            det_json(&straight),
            "{}: armed parallel run diverged from armed serial run",
            mechanism.name()
        );
        let snap = sys.latest_snapshot().expect("ring is non-empty");
        assert!(snap.cycle() <= straight.cycles);
        sys.restore(&snap);
        let replayed = sys.try_run_recycled().expect("parallel replay completes");
        assert_eq!(
            det_json(&straight),
            det_json(&replayed),
            "{}: parallel rewind-and-replay diverged",
            mechanism.name()
        );
    }
}

/// `PUNO_RUN_THREADS` parsing: unset, garbage, and `0` all mean the serial
/// loop.
#[test]
fn run_thread_env_parsing_defaults_to_serial() {
    use puno_harness::run::parse_run_threads;
    assert_eq!(parse_run_threads(None), 1);
    assert_eq!(parse_run_threads(Some("")), 1);
    assert_eq!(parse_run_threads(Some("banana")), 1);
    assert_eq!(parse_run_threads(Some("0")), 1);
    assert_eq!(parse_run_threads(Some("1")), 1);
    assert_eq!(parse_run_threads(Some(" 4 ")), 4);
    assert_eq!(parse_run_threads(Some("16")), 16);
}
