//! Observability guarantees: tracing must never change simulated behaviour,
//! the JSONL/Chrome-trace formats must stay valid and self-consistent, and
//! the telemetry aggregates must reconcile with the independently counted
//! `HtmStats` and `FalseAbortOracle`.

use puno_harness::run::run_workload;
use puno_harness::tracefmt;
use puno_harness::{Mechanism, System, SystemConfig, TelemetryConfig};
use puno_htm::AbortCause;
use puno_sim::{ChannelMask, TraceChannel, Tracer};
use puno_workloads::{micro, WorkloadId};
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 42;
const GOLDEN_SCALE: f64 = 0.05;

fn golden_path(workload: WorkloadId, mechanism: Mechanism) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", workload.name(), mechanism.name()))
}

/// The full 16-cell golden grid re-run with every trace channel enabled and
/// a JSONL sink attached: `RunMetrics` must stay bit-identical to the
/// committed (tracing-off) snapshots, and every emitted stream must
/// validate. The ONLY test in this binary allowed to touch the environment:
/// integration tests in one binary share the process, so the env-var
/// surface is exercised exactly once.
#[test]
fn traced_goldens_are_bit_identical_and_streams_validate() {
    let dir = std::env::temp_dir().join(format!("puno_trace_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("PUNO_TRACE", "all");
    std::env::set_var("PUNO_TRACE_OUT", &dir);
    for &workload in &WorkloadId::ALL {
        let params = workload.params().scaled(GOLDEN_SCALE);
        for mechanism in [Mechanism::Baseline, Mechanism::Puno] {
            let metrics = run_workload(mechanism, &params, GOLDEN_SEED);
            let got = serde_json::to_string(&metrics.deterministic()).unwrap();
            let want = std::fs::read_to_string(golden_path(workload, mechanism)).unwrap();
            assert_eq!(
                want.trim_end(),
                got,
                "{}/{}: tracing changed simulated behaviour",
                workload.name(),
                mechanism.name()
            );
            let jsonl = dir.join(format!(
                "trace_{}_{}_s{GOLDEN_SEED}.jsonl",
                workload.name(),
                mechanism.name()
            ));
            let text = std::fs::read_to_string(&jsonl)
                .unwrap_or_else(|e| panic!("missing trace stream {jsonl:?}: {e}"));
            let summary = tracefmt::validate_jsonl(&text, ChannelMask::ALL)
                .unwrap_or_else(|e| panic!("{jsonl:?}: {e}"));
            assert!(summary.lines > 0, "{jsonl:?} is empty");
            assert!(
                summary.count(TraceChannel::Coh) > 0 && summary.count(TraceChannel::Htm) > 0,
                "{jsonl:?} missing expected channels"
            );
        }
    }
    std::env::remove_var("PUNO_TRACE");
    std::env::remove_var("PUNO_TRACE_OUT");
    std::fs::remove_dir_all(&dir).ok();
}

/// Tracing through the System API (no env): a fully instrumented run —
/// all-channel ring tracer AND telemetry — produces the same deterministic
/// metrics as a bare run, except for the attached telemetry report.
#[test]
fn instrumented_run_matches_bare_run() {
    let params = micro::hotspot(20);
    let config = SystemConfig::paper(Mechanism::Puno);
    let bare = System::new(config, &params, 7).run();

    let mut sys = System::new(config, &params, 7);
    sys.enable_trace(256);
    sys.enable_telemetry(TelemetryConfig::default());
    let traced = sys.try_run_recycled().unwrap();
    assert!(traced.telemetry.is_some(), "telemetry must be attached");
    assert!(
        !sys.trace_dump().is_empty(),
        "ring must retain events on a traced run"
    );

    let mut stripped = traced.deterministic();
    stripped.telemetry = None;
    assert_eq!(
        serde_json::to_string(&stripped).unwrap(),
        serde_json::to_string(&bare.deterministic()).unwrap(),
        "instrumentation must not perturb the simulation"
    );
}

/// A channel-filtered JSONL sink only receives the subscribed channels, and
/// the stream round-trips record-for-record through serde.
#[test]
fn filtered_jsonl_stream_round_trips() {
    let dir = std::env::temp_dir().join(format!("puno_trace_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("htm_coh.jsonl");
    let mask = ChannelMask::NONE
        .with(TraceChannel::Htm)
        .with(TraceChannel::Coh);
    let mut tracer = Tracer::ring(mask, 64);
    tracer.set_jsonl_path(&path).unwrap();

    let params = micro::hotspot(10);
    let mut sys = System::new(SystemConfig::paper(Mechanism::Baseline), &params, 5);
    sys.install_tracer(tracer);
    sys.try_run_recycled().unwrap();
    sys.tracer_mut().flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let summary = tracefmt::validate_jsonl(&text, mask).expect("off-mask channel leaked");
    assert!(
        summary.count(TraceChannel::Htm) > 0,
        "hotspot must trace HTM"
    );
    assert!(summary.count(TraceChannel::Coh) > 0);

    let records = tracefmt::parse_jsonl(&text).unwrap();
    assert_eq!(records.len(), summary.lines);
    for (line, rec) in text.lines().zip(&records) {
        assert_eq!(
            serde_json::to_string(rec).unwrap(),
            line,
            "record serialization must round-trip byte-for-byte"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The Chrome-trace exporter emits valid JSON whose timestamps never go
/// backwards, with transaction lifecycles folded into complete slices.
#[test]
fn chrome_export_is_valid_and_monotone() {
    let dir = std::env::temp_dir().join(format!("puno_trace_chrome_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("all.jsonl");
    let mut tracer = Tracer::ring(ChannelMask::ALL, 64);
    tracer.set_jsonl_path(&path).unwrap();
    let params = micro::hotspot(10);
    let mut sys = System::new(SystemConfig::paper(Mechanism::Puno), &params, 5);
    sys.install_tracer(tracer);
    let metrics = sys.try_run_recycled().unwrap();
    sys.tracer_mut().flush();

    let records = tracefmt::parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let json = tracefmt::chrome_trace(&records);
    let doc: serde::Value = serde_json::from_str(&json).expect("exporter must emit valid JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    let mut prev = 0u64;
    let mut slices = 0u64;
    for ev in events {
        let ts = match ev.get("ts").unwrap() {
            serde::Value::U64(n) => *n,
            other => panic!("non-integer ts {other:?}"),
        };
        assert!(ts >= prev, "ts must be monotonically non-decreasing");
        prev = ts;
        if matches!(ev.get("ph"), Some(serde::Value::Str(ph)) if ph == "X") {
            slices += 1;
        }
    }
    assert!(slices > 0, "committed transactions must render as slices");
    assert!(
        slices <= metrics.committed + metrics.htm.aborts.get(),
        "more slices than transaction attempts"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The abort-blame matrix must reconcile with the independently counted
/// `HtmStats` causes and the `FalseAbortOracle`, and the time series must
/// sum to the run totals.
#[test]
fn telemetry_reconciles_with_stats_and_oracle() {
    let params = micro::hotspot(20);
    let mut sys = System::new(SystemConfig::paper(Mechanism::Baseline), &params, 5);
    sys.enable_telemetry(TelemetryConfig::default());
    let metrics = sys.try_run_recycled().unwrap();
    let report = metrics.telemetry.as_ref().expect("telemetry enabled");

    let conflict_aborts = metrics.htm.aborts_for(AbortCause::TxWriteInvalidation)
        + metrics.htm.aborts_for(AbortCause::TxReadConflict)
        + metrics.htm.aborts_for(AbortCause::NonTxConflict);
    assert!(conflict_aborts > 0, "hotspot must conflict");
    assert_eq!(
        report.blame_total(),
        conflict_aborts,
        "every conflict abort must carry an aborter attribution"
    );
    assert!(
        report.blame_total() >= metrics.oracle.false_aborted_transactions,
        "false aborts are a subset of blamed aborts"
    );
    assert_eq!(report.commits_total(), metrics.committed);
    assert_eq!(report.aborts_total(), metrics.htm.aborts.get());
    let node_commits: u64 = report.nodes.iter().map(|n| n.commits).sum();
    assert_eq!(node_commits, metrics.committed);
    assert!(!report.heat.is_empty(), "contended lines must chart");
    assert!(
        report.heat[0].nacks + report.heat[0].aborts
            >= report.heat.last().unwrap().nacks + report.heat.last().unwrap().aborts,
        "heat table must be hottest-first"
    );
}

/// The windowed sampler stays size-bounded by doubling its epoch width.
#[test]
fn time_series_respects_the_epoch_bound() {
    let params = micro::hotspot(20);
    let mut sys = System::new(SystemConfig::paper(Mechanism::Baseline), &params, 5);
    sys.enable_telemetry(TelemetryConfig {
        epoch_cycles: 64,
        max_epochs: 8,
        heat_top_n: 4,
    });
    let metrics = sys.try_run_recycled().unwrap();
    let report = metrics.telemetry.as_ref().unwrap();
    assert!(report.epochs.len() <= 8, "{} epochs", report.epochs.len());
    assert!(report.epoch_cycles >= 64);
    assert!(report.heat.len() <= 4);
    assert_eq!(report.commits_total(), metrics.committed);
}

/// Failure dumps surface the ring's capacity and drop count (satellite:
/// `TraceRing::dropped` visible in `RunError`).
#[test]
fn failure_dump_reports_ring_capacity_and_drops() {
    let params = micro::hotspot(10);
    let mut config = SystemConfig::paper(Mechanism::Baseline);
    config.watchdog_window = 5;
    let mut sys = System::new(config, &params, 1);
    sys.enable_trace(16);
    let err = sys
        .try_run_recycled()
        .expect_err("a 5-cycle watchdog window must trip");
    let rendered = err.to_string();
    assert!(
        rendered.contains("trace ring: capacity 16"),
        "dump must be self-describing: {rendered}"
    );
    assert!(
        rendered.contains("dropped"),
        "dump must surface the drop count: {rendered}"
    );
}
