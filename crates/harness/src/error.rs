//! Structured run failures.
//!
//! The event loop used to panic on a drained queue or an exceeded cycle
//! budget, taking the whole process (and every other sweep cell on sibling
//! threads) down with it. [`RunError`] turns those guards into values: a
//! failing run reports *what* stalled, *who* was waiting on whom, and the
//! message trace leading up to the failure, and the sweep driver carries on
//! with the remaining cells.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a run failed to complete.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RunError {
    /// The event queue drained with nodes still unfinished: some node is
    /// waiting for a message that will never arrive.
    Deadlock {
        workload: String,
        seed: u64,
        /// Cycle of the last dispatched event.
        cycle: u64,
        /// Nodes that had not retired their programs.
        unfinished_nodes: Vec<u16>,
        /// Rendered NACK wait-for graph at the time of failure.
        wait_for: String,
        /// Message trace (empty unless tracing was enabled).
        trace: String,
    },
    /// The run kept processing events without global forward progress:
    /// either the watchdog saw a full window with no commit and no node
    /// retiring, or the hard `max_cycles` budget was exceeded.
    Livelock {
        workload: String,
        seed: u64,
        /// Cycle at which the run was declared stuck.
        cycles: u64,
        /// Commits observed inside the stalled watchdog window (0 when the
        /// watchdog fired; the window size when `max_cycles` tripped first).
        commit_window: u64,
        /// Rendered NACK wait-for graph at the time of failure.
        wait_for: String,
        /// Message trace (empty unless tracing was enabled).
        trace: String,
    },
    /// A sweep worker thread panicked while running this cell.
    WorkerPanic { payload: String },
}

impl RunError {
    /// Short machine-readable tag (used in reports and checkpoint triage).
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Deadlock { .. } => "deadlock",
            RunError::Livelock { .. } => "livelock",
            RunError::WorkerPanic { .. } => "worker_panic",
        }
    }

    /// The retained message trace, if any.
    pub fn trace(&self) -> &str {
        match self {
            RunError::Deadlock { trace, .. } | RunError::Livelock { trace, .. } => trace,
            RunError::WorkerPanic { .. } => "",
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock {
                workload,
                seed,
                cycle,
                unfinished_nodes,
                wait_for,
                trace,
            } => {
                write!(
                    f,
                    "protocol deadlock: event queue drained at cycle {cycle} with {} unfinished node(s) {unfinished_nodes:?} ({workload} @ seed {seed})\nwait-for graph:\n{wait_for}",
                    unfinished_nodes.len()
                )?;
                if !trace.is_empty() {
                    write!(f, "\ntrace:\n{trace}")?;
                }
                Ok(())
            }
            RunError::Livelock {
                workload,
                seed,
                cycles,
                commit_window,
                wait_for,
                trace,
            } => {
                write!(
                    f,
                    "livelock: no forward progress by cycle {cycles} ({commit_window} commit(s) in the last watchdog window) ({workload} @ seed {seed})\nwait-for graph:\n{wait_for}"
                )?;
                if !trace.is_empty() {
                    write!(f, "\ntrace:\n{trace}")?;
                }
                Ok(())
            }
            RunError::WorkerPanic { payload } => {
                write!(f, "sweep worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_diagnostics() {
        let e = RunError::Deadlock {
            workload: "hotspot".into(),
            seed: 7,
            cycle: 1234,
            unfinished_nodes: vec![3, 9],
            wait_for: "node 3 waits on line 0x5".into(),
            trace: String::new(),
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("seed 7"));
        assert!(s.contains("[3, 9]"));
        assert!(s.contains("waits on line 0x5"));
        assert_eq!(e.kind(), "deadlock");
    }

    #[test]
    fn round_trips_through_json() {
        let e = RunError::Livelock {
            workload: "intruder".into(),
            seed: 1,
            cycles: 200_000_000,
            commit_window: 0,
            wait_for: "..".into(),
            trace: "t".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: RunError = serde_json::from_str(&json).unwrap();
        assert_eq!(back.kind(), "livelock");
        assert_eq!(back.trace(), "t");
    }
}
