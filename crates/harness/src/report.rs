//! Report formatting: normalized metric tables in the shape of the paper's
//! figures, plus geometric-mean summaries.

use crate::mechanism::Mechanism;
use crate::sweep::{find_expect, SweepResult};
use puno_workloads::WorkloadId;

/// The metric a figure plots, extracted from a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureMetric {
    /// Figure 10: transaction aborts.
    Aborts,
    /// Figure 11: router traversals by all flits.
    NetworkTraffic,
    /// Figure 12: mean directory blocking cycles per transactional GETX.
    DirectoryBlocking,
    /// Figure 13: execution time (cycles for the fixed offered load).
    ExecutionTime,
    /// Figure 14: good/discarded transaction effort ratio.
    GdRatio,
}

impl FigureMetric {
    pub fn extract(self, m: &crate::metrics::RunMetrics) -> f64 {
        match self {
            FigureMetric::Aborts => m.htm.aborts.get() as f64,
            FigureMetric::NetworkTraffic => m.traffic_router_traversals as f64,
            FigureMetric::DirectoryBlocking => m.dir_blocking_per_tx_getx(),
            FigureMetric::ExecutionTime => m.cycles as f64,
            FigureMetric::GdRatio => m.htm.gd_ratio(),
        }
    }

    /// For most figures smaller is better; the G/D ratio is
    /// larger-is-better.
    pub fn larger_is_better(self) -> bool {
        matches!(self, FigureMetric::GdRatio)
    }

    pub fn name(self) -> &'static str {
        match self {
            FigureMetric::Aborts => "transaction aborts",
            FigureMetric::NetworkTraffic => "network traffic (router traversals)",
            FigureMetric::DirectoryBlocking => "directory blocking (cycles/TxGETX)",
            FigureMetric::ExecutionTime => "execution time (cycles)",
            FigureMetric::GdRatio => "G/D ratio",
        }
    }
}

/// One figure: per-workload values for each mechanism, normalized to the
/// baseline (baseline = 1.0), exactly how the paper plots them.
#[derive(Clone, Debug)]
pub struct NormalizedFigure {
    pub metric: FigureMetric,
    pub mechanisms: Vec<Mechanism>,
    pub workloads: Vec<WorkloadId>,
    /// `values[w][m]`, normalized.
    pub values: Vec<Vec<f64>>,
}

impl NormalizedFigure {
    pub fn build(
        metric: FigureMetric,
        results: &[SweepResult],
        workloads: &[WorkloadId],
        mechanisms: &[Mechanism],
    ) -> Self {
        let mut values = Vec::new();
        for &w in workloads {
            let base = metric.extract(find_expect(results, w, Mechanism::Baseline));
            let row: Vec<f64> = mechanisms
                .iter()
                .map(|&m| {
                    let v = metric.extract(find_expect(results, w, m));
                    if base == 0.0 || !base.is_finite() {
                        // Degenerate baseline (e.g. zero aborts): report the
                        // ratio as 1.0 when the value matches, else raw.
                        if v == base {
                            1.0
                        } else if base == 0.0 {
                            f64::INFINITY
                        } else {
                            1.0
                        }
                    } else {
                        v / base
                    }
                })
                .collect();
            values.push(row);
        }
        Self {
            metric,
            mechanisms: mechanisms.to_vec(),
            workloads: workloads.to_vec(),
            values,
        }
    }

    /// Multi-seed variant: normalize within each seed's sweep (each seed
    /// has its own baseline), then geometric-mean the per-seed ratios —
    /// the standard way to aggregate normalized metrics across repetitions.
    pub fn build_multi(
        metric: FigureMetric,
        per_seed: &[Vec<SweepResult>],
        workloads: &[WorkloadId],
        mechanisms: &[Mechanism],
    ) -> Self {
        assert!(!per_seed.is_empty());
        let figs: Vec<NormalizedFigure> = per_seed
            .iter()
            .map(|results| Self::build(metric, results, workloads, mechanisms))
            .collect();
        let values: Vec<Vec<f64>> = (0..workloads.len())
            .map(|wi| {
                (0..mechanisms.len())
                    .map(|mi| {
                        let ratios: Vec<f64> = figs
                            .iter()
                            .map(|f| f.values[wi][mi])
                            .filter(|v| v.is_finite() && *v > 0.0)
                            .collect();
                        geomean(&ratios)
                    })
                    .collect()
            })
            .collect();
        Self {
            metric,
            mechanisms: mechanisms.to_vec(),
            workloads: workloads.to_vec(),
            values,
        }
    }

    pub fn value(&self, workload: WorkloadId, mechanism: Mechanism) -> f64 {
        let wi = self
            .workloads
            .iter()
            .position(|&w| w == workload)
            .expect("workload not in figure");
        let mi = self
            .mechanisms
            .iter()
            .position(|&m| m == mechanism)
            .expect("mechanism not in figure");
        self.values[wi][mi]
    }

    /// Geometric mean over a workload subset for one mechanism (how the
    /// paper summarizes "high contention benchmarks").
    pub fn geomean(&self, subset: &[WorkloadId], mechanism: Mechanism) -> f64 {
        let mi = self
            .mechanisms
            .iter()
            .position(|&m| m == mechanism)
            .unwrap();
        // Only aggregate workloads whose ratios are finite for EVERY
        // mechanism, so the summary rows always compare the same set
        // (a degenerate zero baseline would otherwise drop a workload from
        // one column but not the others).
        let vals: Vec<f64> = self
            .workloads
            .iter()
            .enumerate()
            .filter(|(i, w)| {
                subset.contains(w) && self.values[*i].iter().all(|v| v.is_finite() && *v > 0.0)
            })
            .map(|(i, _)| self.values[i][mi])
            .collect();
        geomean(&vals)
    }

    /// Render an aligned text table (the figure as numbers).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("normalized {}\n", self.metric.name()));
        out.push_str(&format!("{:<12}", "workload"));
        for m in &self.mechanisms {
            out.push_str(&format!("{:>12}", m.name()));
        }
        out.push('\n');
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!("{:<12}", w.name()));
            for v in &self.values[i] {
                out.push_str(&format!("{:>12.3}", v));
            }
            out.push('\n');
        }
        let hc: Vec<WorkloadId> = self
            .workloads
            .iter()
            .copied()
            .filter(|w| w.is_high_contention())
            .collect();
        if !hc.is_empty() {
            out.push_str(&format!("{:<12}", "geomean-hc"));
            for &m in &self.mechanisms {
                out.push_str(&format!("{:>12.3}", self.geomean(&hc, m)));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<12}", "geomean-all"));
        for &m in &self.mechanisms {
            out.push_str(&format!("{:>12.3}", self.geomean(&self.workloads, m)));
        }
        out.push('\n');
        out
    }
}

/// Per-cell simulator throughput table: host wall-clock and event rates for
/// every (workload, mechanism) cell of a sweep. These are *host-side*
/// observability numbers (how fast the simulator itself ran), not simulated
/// results — they vary run to run and are excluded from golden comparisons.
///
/// The simulated side is pinned by `tests/golden_metrics.rs`: perf-only
/// refactors must pass it unchanged, and intentional behavior changes are
/// re-blessed with `PUNO_BLESS_GOLDEN=1 cargo test -p puno-harness --test
/// golden_metrics`.
pub fn render_host_perf(results: &[SweepResult]) -> String {
    let mut out = String::new();
    out.push_str("simulator throughput (host-side, per cell)\n");
    out.push_str(&format!(
        "{:<12}{:<10}{:>10}{:>14}{:>14}{:>12}{:>10}\n",
        "workload", "mech", "wall-s", "Mcycles/s", "Mevents/s", "peak-queue", "scan%"
    ));
    for r in results {
        let h = &r.metrics.host;
        out.push_str(&format!(
            "{:<12}{:<10}{:>10.3}{:>14.3}{:>14.3}{:>12}{:>10.1}\n",
            r.workload.name(),
            r.mechanism.name(),
            h.wall_secs,
            h.sim_cycles_per_sec / 1e6,
            h.events_per_sec / 1e6,
            h.peak_queue_depth,
            h.noc_active_scan_ratio * 100.0,
        ));
    }
    let wall: f64 = results.iter().map(|r| r.metrics.host.wall_secs).sum();
    let events: u64 = results
        .iter()
        .map(|r| r.metrics.host.events_dispatched)
        .sum();
    let workers = results
        .iter()
        .map(|r| r.metrics.host.sweep_workers)
        .max()
        .unwrap_or(0);
    out.push_str(&format!(
        "total: {wall:.3}s host wall-clock, {events} events dispatched, \
         {workers} sweep worker(s)\n"
    ));
    // The intra-run executor's scaling-efficiency line, printed only when
    // it actually engaged (run_workers > 1) so serial sweeps keep today's
    // byte-identical output.
    let run_workers = results
        .iter()
        .map(|r| r.metrics.host.run_workers)
        .max()
        .unwrap_or(0);
    if run_workers > 1 {
        let waves: u64 = results.iter().map(|r| r.metrics.host.par_waves).sum();
        let parallel_cells: Vec<&SweepResult> = results
            .iter()
            .filter(|r| r.metrics.host.par_waves > 0)
            .collect();
        let idle = if parallel_cells.is_empty() {
            0.0
        } else {
            parallel_cells
                .iter()
                .map(|r| r.metrics.host.worker_idle_frac)
                .sum::<f64>()
                / parallel_cells.len() as f64
        };
        out.push_str(&format!(
            "parallel: {run_workers} run thread(s), {waves} pool waves, \
             {:.1}% worker idle\n",
            idle * 100.0
        ));
    }
    // Prefix-fork accounting, printed only when some cell actually forked
    // (fork-off sweeps keep today's byte-identical output). `time_saved`
    // is the prefix wall-clock the forked cells inherited instead of
    // re-simulating — the sweep's amortization win.
    let forks: u64 = results.iter().map(|r| r.metrics.host.prefix_forks).sum();
    if forks > 0 {
        let shared: u64 = results
            .iter()
            .map(|r| r.metrics.host.prefix_cycles_shared)
            .sum();
        let saved: f64 = results
            .iter()
            .map(|r| r.metrics.host.prefix_time_saved)
            .sum();
        out.push_str(&format!(
            "prefix-fork: {forks} forked cell(s), {shared} prefix cycles shared, \
             ~{saved:.3}s prefix re-simulation avoided\n"
        ));
    }
    // Express-path accounting, printed only when some packet actually took
    // it (express-off sweeps keep today's byte-identical output).
    let express: u64 = results.iter().map(|r| r.metrics.host.express_packets).sum();
    if express > 0 {
        let hops: u64 = results.iter().map(|r| r.metrics.host.express_hops).sum();
        let quiesced: u64 = results.iter().map(|r| r.metrics.host.quiesced_cycles).sum();
        out.push_str(&format!(
            "express: {express} packets fast-forwarded ({hops} router hops \
             unstepped), {quiesced} quiesced cycles skipped\n"
        ));
    }
    out
}

/// Render the degraded-sweep section: one line per cell the sweep could
/// not complete — quarantined cells (exhausted retry budget) first, plain
/// failures after — with the failure kind and attempts consumed. `None`
/// when every cell succeeded, so healthy reports are byte-identical to a
/// sweep without the resilience layer.
pub fn render_quarantine(outcomes: &[crate::sweep::CellOutcome]) -> Option<String> {
    use crate::sweep::CellOutcome;
    let mut lines: Vec<String> = Vec::new();
    for pass in [true, false] {
        for o in outcomes {
            let quarantined = o.is_quarantined();
            if o.is_ok() || quarantined != pass {
                continue;
            }
            let (key, error, attempts) = match o {
                CellOutcome::Quarantined {
                    key,
                    error,
                    attempts,
                }
                | CellOutcome::Err {
                    key,
                    error,
                    attempts,
                } => (key, error, attempts),
                CellOutcome::Ok { .. } => unreachable!("filtered above"),
            };
            lines.push(format!(
                "  {:<12}{:<10} seed {:<6} {:<12} after {} attempt(s){}",
                key.workload.name(),
                key.mechanism.name(),
                key.seed,
                error.kind(),
                attempts,
                if quarantined { "  [quarantined]" } else { "" },
            ));
        }
    }
    if lines.is_empty() {
        return None;
    }
    let mut out = String::new();
    out.push_str("== Quarantined / failed cells (sweep completed degraded) ==\n");
    out.push_str(&lines.join("\n"));
    out.push('\n');
    Some(out)
}

/// Geometric mean of positive values (empty -> 1.0).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunMetrics;
    use crate::oracle::FalseAbortOracle;
    use puno_coherence::DirStats;
    use puno_core::PunoStats;
    use puno_htm::{AbortCause, HtmStats};
    use puno_noc::TrafficStats;

    fn fake(workload: WorkloadId, mechanism: Mechanism, aborts: u64, cycles: u64) -> SweepResult {
        let mut htm = HtmStats::default();
        htm.record_commit(10);
        for _ in 0..aborts {
            htm.record_abort(AbortCause::TxWriteInvalidation, 5);
        }
        SweepResult {
            workload,
            mechanism,
            metrics: RunMetrics::from_parts(
                workload.name(),
                mechanism.name(),
                0,
                cycles,
                htm,
                DirStats::default(),
                &TrafficStats::default(),
                1.0,
                FalseAbortOracle::default(),
                PunoStats::default(),
                puno_sim::FaultStats::default(),
                crate::metrics::HostPerf::default(),
                None,
            ),
        }
    }

    #[test]
    fn normalization_against_baseline() {
        let results = vec![
            fake(WorkloadId::Bayes, Mechanism::Baseline, 100, 1000),
            fake(WorkloadId::Bayes, Mechanism::Puno, 40, 800),
        ];
        let fig = NormalizedFigure::build(
            FigureMetric::Aborts,
            &results,
            &[WorkloadId::Bayes],
            &[Mechanism::Baseline, Mechanism::Puno],
        );
        assert!((fig.value(WorkloadId::Bayes, Mechanism::Baseline) - 1.0).abs() < 1e-12);
        assert!((fig.value(WorkloadId::Bayes, Mechanism::Puno) - 0.4).abs() < 1e-12);
        let time = NormalizedFigure::build(
            FigureMetric::ExecutionTime,
            &results,
            &[WorkloadId::Bayes],
            &[Mechanism::Baseline, Mechanism::Puno],
        );
        assert!((time.value(WorkloadId::Bayes, Mechanism::Puno) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn multi_seed_build_geomeans_per_seed_ratios() {
        let seed_a = vec![
            fake(WorkloadId::Bayes, Mechanism::Baseline, 100, 1000),
            fake(WorkloadId::Bayes, Mechanism::Puno, 25, 800),
        ];
        let seed_b = vec![
            fake(WorkloadId::Bayes, Mechanism::Baseline, 200, 1000),
            fake(WorkloadId::Bayes, Mechanism::Puno, 200, 800),
        ];
        let fig = NormalizedFigure::build_multi(
            FigureMetric::Aborts,
            &[seed_a, seed_b],
            &[WorkloadId::Bayes],
            &[Mechanism::Baseline, Mechanism::Puno],
        );
        // geomean(0.25, 1.0) = 0.5.
        assert!((fig.value(WorkloadId::Bayes, Mechanism::Puno) - 0.5).abs() < 1e-12);
        assert!((fig.value(WorkloadId::Bayes, Mechanism::Baseline) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[0.25, 1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn host_perf_table_lists_every_cell() {
        let mut results = vec![
            fake(WorkloadId::Bayes, Mechanism::Baseline, 100, 1000),
            fake(WorkloadId::Bayes, Mechanism::Puno, 50, 900),
        ];
        results[0].metrics.host = crate::metrics::HostPerf {
            wall_secs: 2.0,
            events_dispatched: 4_000_000,
            peak_queue_depth: 37,
            noc_active_scan_ratio: 0.125,
            ..Default::default()
        }
        .finish(1000);
        let text = render_host_perf(&results);
        assert!(text.contains("bayes"));
        assert!(text.contains("puno"));
        assert!(text.contains("37"), "peak queue depth column: {text}");
        assert!(text.contains("12.5"), "scan ratio as percent: {text}");
        assert!(
            text.contains("4000000 events dispatched"),
            "total line: {text}"
        );
    }

    #[test]
    fn render_contains_all_cells() {
        let results = vec![
            fake(WorkloadId::Bayes, Mechanism::Baseline, 100, 1000),
            fake(WorkloadId::Bayes, Mechanism::Puno, 50, 900),
        ];
        let fig = NormalizedFigure::build(
            FigureMetric::Aborts,
            &results,
            &[WorkloadId::Bayes],
            &[Mechanism::Baseline, Mechanism::Puno],
        );
        let text = fig.render();
        assert!(text.contains("bayes"));
        assert!(text.contains("puno"));
        assert!(text.contains("geomean-all"));
    }

    #[test]
    fn quarantine_section_names_only_the_degraded_cells() {
        use crate::error::RunError;
        use crate::sweep::{CellKey, CellOutcome};

        let ok = CellOutcome::Ok {
            key: CellKey {
                workload: WorkloadId::Bayes,
                mechanism: Mechanism::Baseline,
                seed: 1,
            },
            metrics: fake(WorkloadId::Bayes, Mechanism::Baseline, 1, 10).metrics,
        };
        assert!(render_quarantine(std::slice::from_ref(&ok)).is_none());

        let quarantined = CellOutcome::Quarantined {
            key: CellKey {
                workload: WorkloadId::Vacation,
                mechanism: Mechanism::Puno,
                seed: 7,
            },
            error: RunError::Livelock {
                workload: "vacation".into(),
                seed: 7,
                cycles: 99,
                commit_window: 0,
                wait_for: String::new(),
                trace: String::new(),
            },
            attempts: 3,
        };
        let failed = CellOutcome::Err {
            key: CellKey {
                workload: WorkloadId::Bayes,
                mechanism: Mechanism::RandomBackoff,
                seed: 2,
            },
            error: RunError::WorkerPanic {
                payload: "boom".into(),
            },
            attempts: 1,
        };
        let text = render_quarantine(&[failed, ok, quarantined]).expect("degraded section");
        assert!(text.contains("sweep completed degraded"), "{text}");
        assert!(text.contains("vacation"), "{text}");
        assert!(text.contains("livelock"), "{text}");
        assert!(text.contains("[quarantined]"), "{text}");
        assert!(
            text.contains("worker-panic") || text.contains("panic"),
            "{text}"
        );
        // Quarantined cells are listed before plain failures.
        let q_at = text.find("vacation").unwrap();
        let e_at = text.find("bayes").unwrap();
        assert!(q_at < e_at, "{text}");
        // The healthy cell never appears as a row: `bayes` occurs only for
        // the failed Eager cell.
        assert_eq!(text.matches("bayes").count(), 1, "{text}");
    }
}
