//! Per-node controller: the in-order core executing its synthetic program,
//! the L1 + HTM unit answering forwarded coherence requests, the MSHR
//! tracking the (single) outstanding miss, and the writeback buffer.
//!
//! All methods are effect-returning: they mutate the node and hand back an
//! [`Effects`] record (messages to send, a wake-up to schedule, an oracle
//! episode to log) that the [`crate::system::System`] applies. That keeps
//! the protocol logic unit-testable without a network.

use crate::memory::MemOps;
use puno_coherence::l1::{Eviction, L1Cache, L1Config, LineState, LookupOutcome};
use puno_coherence::msg::{CoherenceMsg, TxInfo};
use puno_coherence::sharers::SharerSet;
use puno_core::{notification_estimate, TxLengthBuffer};
use puno_htm::conflict::{ForwardDecision, IncomingKind};
use puno_htm::rmw::{OpSite, RmwPredictor};
use puno_htm::stats::AbortCause;
use puno_htm::unit::{AbortTiming, HtmUnit};
use puno_htm::BackoffEngine;
use puno_sim::{
    ChannelMask, Cycle, Cycles, LineAddr, LineMap, LineSet, NodeId, Timestamp, TraceChannel,
    TraceEvent, TxId,
};
use puno_workloads::op::{DynTxSpec, NodeProgram, TxOp, WorkItem};
use std::sync::Arc;

/// What a node step/message handler asks the system to do.
#[derive(Debug, Default)]
pub struct Effects {
    /// Messages to inject, from this node.
    pub sends: Vec<(NodeId, CoherenceMsg)>,
    /// Schedule a core wake-up at this absolute cycle (with the node's
    /// *current* epoch).
    pub wake_at: Option<Cycle>,
    /// A transactional-GETX episode concluded: (nacked, aborted_sharers).
    pub oracle_episode: Option<(bool, u64)>,
    /// The node just finished its program.
    pub finished: bool,
    /// An armed spurious-NACK fault actually fired on this forward (the
    /// system keeps the per-kind fault accounting).
    pub injected_nack: bool,
    /// A transaction committed during this step (the system maintains a
    /// running commit total for its watchdog progress marker).
    pub committed: bool,
}

impl Effects {
    fn wake(mut self, at: Cycle) -> Self {
        self.wake_at = Some(at);
        self
    }
}

/// Identity of the transaction being executed (survives retries).
#[derive(Clone, Copy, Debug)]
struct CurTx {
    tx: TxId,
    timestamp: Timestamp,
    prior_aborts: u32,
}

/// The single outstanding miss.
#[derive(Clone, Debug)]
pub struct Mshr {
    pub addr: LineAddr,
    /// The request was a GETX (write, upgrade, or RMW-predicted load).
    pub is_getx: bool,
    /// The *semantic* operation is a store (false for RMW-predicted loads).
    pub sem_write: bool,
    /// Issued from inside a transaction.
    pub is_tx: bool,
    /// Operation site (for RMW training/prediction bookkeeping).
    pub site: OpSite,
    pub acks_expected: Option<u32>,
    pub acks_received: u32,
    pub nackers: SharerSet,
    pub aborted_sharers: u64,
    pub got_grant: bool,
    pub grant_exclusive: bool,
    /// Data came from the previous owner, which kept a shared copy.
    pub owner_kept_by: Option<NodeId>,
    pub notification: Option<Cycles>,
    pub mp_node: Option<NodeId>,
    /// The local transaction aborted while this request was in flight; the
    /// episode must still conclude for the directory, but its result is
    /// discarded.
    pub abandoned: bool,
}

/// Core execution phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Will act on the next matching wake event.
    Ready,
    /// Waiting for the MSHR to conclude.
    Blocked,
    /// Program exhausted.
    Done,
}

#[derive(Clone)]
pub struct NodeState {
    pub id: NodeId,
    pub l1: L1Cache,
    pub htm: HtmUnit,
    pub txlb: TxLengthBuffer,
    pub backoff: BackoffEngine,
    /// Immutable program, shared across mechanism cells replaying the same
    /// `(params, seed)` trace (see `puno_workloads::ProgramSet`).
    pub program: Arc<NodeProgram>,
    /// Program counter over `program.items`.
    pub pc: usize,
    /// Operation index within the current transaction body.
    pub op_idx: usize,
    /// Wake-event epoch: stale wakes (scheduled before an abort redirected
    /// control flow) are ignored.
    pub epoch: u64,
    pub phase: Phase,
    pub mshr: Option<Mshr>,
    /// Lines with writebacks in flight, with a count per line: a line can
    /// be evicted, refetched and evicted again before the first WbAck
    /// returns, leaving two acks outstanding.
    pub wb_buffer: LineMap<LineAddr, u32>,
    /// Write-set lines force-evicted with sticky-owner writebacks: the
    /// directory still names this node owner (LogTM sticky-M), used by the
    /// invariant checker and cleared when ownership actually moves.
    pub sticky_owned: LineSet<LineAddr>,
    cur_tx: Option<CurTx>,
    next_tx_seq: u64,
    /// Deferred restart (abort happened while the MSHR was in flight):
    /// cycles of recovery+backoff to apply once the episode concludes.
    pending_restart: Option<Cycles>,
    pub done_at: Option<Cycle>,
    nodes: u16,
    commit_latency: Cycles,
    notification_enabled: bool,
    /// Wake-up hint extension (off reproduces the paper).
    wakeup_hints: bool,
    /// Requesters this node nacked-with-notification; poked when the
    /// current transaction finishes. Bounded like a small CAM.
    pending_wakeups: Vec<(NodeId, LineAddr)>,
    /// The line whose NACKed request this node is currently backing off
    /// on (a WakeupHint for it ends the backoff early).
    waiting_retry: Option<LineAddr>,
    /// Who nacked this node's last failed episode (wait-for diagnostics;
    /// meaningful while `waiting_retry` is set).
    last_nackers: SharerSet,
    /// One-shot fault injection: answer the next eligible forward with a
    /// spurious NACK instead of complying.
    force_nack_once: bool,
    /// Effective trace mask pushed down by the system; the node only emits
    /// `Htm`-channel events, so the hot-path cost when tracing is off is a
    /// single bit test per site.
    trace_mask: ChannelMask,
    /// Events recorded during the current step/handler call; the system
    /// drains this into its tracer/telemetry sinks after each call.
    trace_buf: Vec<(Cycle, TraceEvent)>,
}

impl NodeState {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        nodes: u16,
        l1: L1Cache,
        htm: HtmUnit,
        txlb: TxLengthBuffer,
        backoff: BackoffEngine,
        program: Arc<NodeProgram>,
        commit_latency: Cycles,
        notification_enabled: bool,
    ) -> Self {
        Self {
            id,
            l1,
            htm,
            txlb,
            backoff,
            program,
            pc: 0,
            op_idx: 0,
            epoch: 0,
            phase: Phase::Ready,
            mshr: None,
            wb_buffer: LineMap::new(),
            sticky_owned: LineSet::new(),
            cur_tx: None,
            next_tx_seq: 0,
            pending_restart: None,
            done_at: None,
            nodes,
            commit_latency,
            notification_enabled,
            wakeup_hints: false,
            pending_wakeups: Vec::new(),
            waiting_retry: None,
            last_nackers: SharerSet::EMPTY,
            force_nack_once: false,
            trace_mask: ChannelMask::NONE,
            trace_buf: Vec::new(),
        }
    }

    /// Return the node to the state [`NodeState::new`] would construct with
    /// these arguments, reusing the L1 tag array, the HTM scratch
    /// allocations, and the writeback/sticky containers. `id` is fixed (a
    /// recycled node keeps its mesh position); everything else — including
    /// the shared program — is replaced. Bit-identical to fresh
    /// construction: every field `new` initializes is restored here.
    #[allow(clippy::too_many_arguments)]
    pub fn reset(
        &mut self,
        nodes: u16,
        l1_config: L1Config,
        abort_timing: AbortTiming,
        rmw: Option<RmwPredictor>,
        txlb: TxLengthBuffer,
        backoff: BackoffEngine,
        program: Arc<NodeProgram>,
        commit_latency: Cycles,
        notification_enabled: bool,
    ) {
        if self.l1.config() == l1_config {
            self.l1.reset();
        } else {
            self.l1 = L1Cache::new(l1_config);
        }
        self.htm.reset(abort_timing, rmw);
        self.txlb = txlb;
        self.backoff = backoff;
        self.program = program;
        self.pc = 0;
        self.op_idx = 0;
        self.epoch = 0;
        self.phase = Phase::Ready;
        self.mshr = None;
        self.wb_buffer.clear();
        self.sticky_owned.clear();
        self.cur_tx = None;
        self.next_tx_seq = 0;
        self.pending_restart = None;
        self.done_at = None;
        self.nodes = nodes;
        self.commit_latency = commit_latency;
        self.notification_enabled = notification_enabled;
        self.wakeup_hints = false;
        self.pending_wakeups.clear();
        self.waiting_retry = None;
        self.last_nackers = SharerSet::EMPTY;
        self.force_nack_once = false;
        self.trace_mask = ChannelMask::NONE;
        self.trace_buf.clear();
    }

    /// Whether this node's next live wake would execute TX_BEGIN: the
    /// program counter rests on a transaction item with no transaction in
    /// flight and no outstanding miss. The prefix-fork boundary stops the
    /// run when any node satisfies this — everything before the first
    /// begin is mechanism-neutral (requests carry `tx: None`, so predictors
    /// and backoff are never consulted), so the state here is safe to
    /// snapshot and fork under a different mechanism.
    pub fn poised_to_begin(&self) -> bool {
        self.phase == Phase::Ready
            && self.mshr.is_none()
            && self.htm.current().is_none()
            && matches!(
                self.program.items.get(self.pc),
                Some(WorkItem::Transaction(_))
            )
    }

    /// Swap in freshly constructed mechanism-specific state — exactly the
    /// subset of [`NodeState::reset`] that depends on `config.mechanism` —
    /// leaving all mechanism-neutral progress (L1 contents, program
    /// position, writeback/sticky containers) untouched. Only valid before
    /// the first transaction begins: afterwards the HTM unit, backoff
    /// engine, and TxLB hold mechanism-dependent history that a swap would
    /// silently discard. Used by `System::fork_from`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn adopt_mechanism(
        &mut self,
        abort_timing: AbortTiming,
        rmw: Option<RmwPredictor>,
        txlb: TxLengthBuffer,
        backoff: BackoffEngine,
        commit_latency: Cycles,
        notification_enabled: bool,
        wakeup_hints: bool,
    ) {
        debug_assert!(
            self.htm.current().is_none() && self.cur_tx.is_none(),
            "mechanism swap is only valid before the first transaction"
        );
        self.htm.reset(abort_timing, rmw);
        self.txlb = txlb;
        self.backoff = backoff;
        self.commit_latency = commit_latency;
        self.notification_enabled = notification_enabled;
        self.wakeup_hints = wakeup_hints;
    }

    /// Set the effective trace mask (the node emits `Htm`-channel events).
    pub fn set_trace_mask(&mut self, mask: ChannelMask) {
        self.trace_mask = mask;
    }

    #[inline]
    fn htm_trace_on(&self) -> bool {
        self.trace_mask.contains(TraceChannel::Htm)
    }

    /// Whether any recorded events await draining.
    #[inline]
    pub fn has_trace_events(&self) -> bool {
        !self.trace_buf.is_empty()
    }

    /// Hand the recorded events to the system (paired with
    /// [`NodeState::restore_trace_buf`] so the allocation is reused).
    pub fn take_trace_buf(&mut self) -> Vec<(Cycle, TraceEvent)> {
        std::mem::take(&mut self.trace_buf)
    }

    /// Give back the drained buffer from [`NodeState::take_trace_buf`].
    pub fn restore_trace_buf(&mut self, buf: Vec<(Cycle, TraceEvent)>) {
        debug_assert!(buf.is_empty(), "restoring a non-empty trace buffer");
        self.trace_buf = buf;
    }

    /// Fault injection: the next forward that this node would comply with
    /// is answered with a spurious NACK instead. The flag is consumed by
    /// the next forward delivery whether or not it ends up applying (a
    /// forward that would be nacked anyway absorbs it).
    pub fn arm_spurious_nack(&mut self) {
        self.force_nack_once = true;
    }

    /// The line this node is backing off on after a nacked episode.
    pub fn waiting_on(&self) -> Option<LineAddr> {
        self.waiting_retry
    }

    /// The nackers of the last failed episode (see [`Self::waiting_on`]).
    pub fn last_nackers(&self) -> SharerSet {
        self.last_nackers
    }

    /// Fault injection: abort the running transaction as if a conflict had
    /// been detected. Returns whether a transaction was actually aborted
    /// (idle nodes and committed transactions absorb the fault).
    pub fn force_abort<M: MemOps>(&mut self, now: Cycle, memory: &mut M) -> (bool, Effects) {
        let mut eff = Effects::default();
        if self.htm.current().is_none() {
            return (false, eff);
        }
        self.abort_current_tx(now, AbortCause::Injected, None, memory, &mut eff);
        (true, eff)
    }

    /// Enable the §VI wake-up-hint extension (see `PunoConfig::wakeup_hints`).
    pub fn set_wakeup_hints(&mut self, enabled: bool) {
        self.wakeup_hints = enabled;
    }

    fn home_of(&self, addr: LineAddr) -> NodeId {
        puno_coherence::home_node(addr, self.nodes)
    }

    fn tx_info(&self) -> Option<TxInfo> {
        let ctx = self.htm.current()?;
        Some(TxInfo {
            tx: ctx.tx,
            timestamp: ctx.timestamp,
            static_tx: ctx.static_tx,
            avg_len_hint: self.txlb.global_estimate().unwrap_or(0),
        })
    }

    /// ------------------------------------------------------------------
    /// Core step: advance the program. Called by the system on a matching
    /// wake event while `phase == Ready`.
    /// ------------------------------------------------------------------
    pub fn step<M: MemOps>(&mut self, now: Cycle, memory: &mut M) -> Effects {
        debug_assert_eq!(self.phase, Phase::Ready);
        debug_assert!(self.mshr.is_none());
        self.waiting_retry = None;

        if self.pc >= self.program.items.len() {
            self.phase = Phase::Done;
            self.done_at = Some(now);
            return Effects {
                finished: true,
                ..Effects::default()
            };
        }

        // Clone the small bits we need to dodge aliasing the program while
        // mutating the node.
        match self.program.items[self.pc].clone() {
            WorkItem::Think(c) => {
                self.pc += 1;
                Effects::default().wake(now + c)
            }
            WorkItem::Access { addr, is_write } => self.access(
                now,
                addr,
                is_write,
                false,
                OpSite {
                    static_tx: u32::MAX,
                    op_index: 0,
                },
                memory,
            ),
            WorkItem::Transaction(spec) => self.step_transaction(now, &spec, memory),
        }
    }

    fn step_transaction<M: MemOps>(
        &mut self,
        now: Cycle,
        spec: &DynTxSpec,
        memory: &mut M,
    ) -> Effects {
        if self.htm.current().is_none() {
            // TX_BEGIN (first attempt or retry).
            let cur = self.cur_tx.get_or_insert_with(|| {
                let tx = TxId(self.id.0 as u64 | (self.next_tx_seq << 16));
                self.next_tx_seq += 1;
                // Global-time-unique priority: cycle * nodes + node id.
                let timestamp = Timestamp(now * self.nodes as u64 + self.id.0 as u64);
                CurTx {
                    tx,
                    timestamp,
                    prior_aborts: 0,
                }
            });
            let (tx, timestamp, prior_aborts) = (cur.tx, cur.timestamp, cur.prior_aborts);
            self.htm
                .begin(now, spec.static_tx, tx, timestamp, prior_aborts);
            self.op_idx = 0;
            if self.htm_trace_on() {
                self.trace_buf.push((
                    now,
                    TraceEvent::HtmBegin {
                        node: self.id,
                        tx,
                        static_tx: spec.static_tx,
                        timestamp,
                        attempt: prior_aborts,
                    },
                ));
            }
            return Effects::default().wake(now + 1);
        }
        if self.op_idx < spec.ops.len() {
            match spec.ops[self.op_idx] {
                TxOp::Think(c) => {
                    self.op_idx += 1;
                    Effects::default().wake(now + c)
                }
                TxOp::Read(addr) => {
                    let site = OpSite {
                        static_tx: spec.static_tx.0,
                        op_index: self.op_idx as u32,
                    };
                    self.access(now, addr, false, true, site, memory)
                }
                TxOp::Write(addr) => {
                    let site = OpSite {
                        static_tx: spec.static_tx.0,
                        op_index: self.op_idx as u32,
                    };
                    self.access(now, addr, true, true, site, memory)
                }
            }
        } else {
            // TX_END: commit.
            let out = self.htm.commit(now);
            self.txlb.record_commit(out.static_tx, out.length);
            self.l1.unpin_all();
            if self.htm_trace_on() {
                let tx = self.cur_tx.expect("commit without tx identity").tx;
                self.trace_buf.push((
                    now,
                    TraceEvent::HtmCommit {
                        node: self.id,
                        tx,
                        length: out.length,
                    },
                ));
            }
            self.cur_tx = None;
            self.pc += 1;
            self.op_idx = 0;
            let mut eff = Effects::default().wake(now + self.commit_latency);
            eff.committed = true;
            self.drain_wakeup_hints(&mut eff);
            eff
        }
    }

    /// Perform (or start) a memory access.
    #[allow(clippy::too_many_arguments)]
    fn access<M: MemOps>(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        sem_write: bool,
        is_tx: bool,
        site: OpSite,
        memory: &mut M,
    ) -> Effects {
        match self.l1.access(addr, sem_write) {
            LookupOutcome::Hit(state) => {
                self.complete_access_locally(now, addr, sem_write, is_tx, site, state, memory)
            }
            LookupOutcome::UpgradeNeeded => {
                self.issue_request(now, addr, true, sem_write, is_tx, site)
            }
            LookupOutcome::Miss => {
                let predicted_rmw = is_tx && !sem_write && self.htm.load_wants_exclusive(site);
                // Re-reading a line this transaction already *wrote* (it was
                // force-evicted sticky) must re-acquire ownership: letting
                // the home demote it to Shared would hand other readers the
                // speculative value without a conflict check.
                let own_written = is_tx
                    && self
                        .htm
                        .current()
                        .is_some_and(|ctx| ctx.sets.in_write_set(addr));
                let is_getx = sem_write || predicted_rmw || own_written;
                self.issue_request(now, addr, is_getx, sem_write, is_tx, site)
            }
        }
    }

    /// The access hit (or the miss completed): record footprint, apply the
    /// store to memory, pin, and advance.
    #[allow(clippy::too_many_arguments)]
    fn complete_access_locally<M: MemOps>(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        sem_write: bool,
        is_tx: bool,
        site: OpSite,
        state: LineState,
        memory: &mut M,
    ) -> Effects {
        if is_tx {
            if sem_write {
                let old = memory.read(addr);
                self.htm.record_store(addr, old);
                memory.write(addr, old.wrapping_add(1));
                if state == LineState::Exclusive {
                    self.l1.set_state(addr, LineState::Modified);
                }
                self.l1.pin(addr);
            } else {
                self.htm.record_load(addr, site);
                // Owned-state read-set lines are pinned: their eviction
                // would silently drop the directory's conflict-forwarding
                // path (S-state read lines evict silently and stay sticky
                // in the sharer list instead).
                if state.writable() {
                    self.l1.pin(addr);
                }
            }
        } else if sem_write {
            let old = memory.read(addr);
            memory.write(addr, old.wrapping_add(1));
            if state == LineState::Exclusive {
                self.l1.set_state(addr, LineState::Modified);
            }
        }
        self.advance_after_access(is_tx);
        Effects::default().wake(now + 1)
    }

    fn advance_after_access(&mut self, is_tx: bool) {
        if is_tx {
            self.op_idx += 1;
        } else {
            self.pc += 1;
        }
    }

    fn issue_request(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        is_getx: bool,
        sem_write: bool,
        is_tx: bool,
        site: OpSite,
    ) -> Effects {
        let _ = now;
        debug_assert!(self.mshr.is_none());
        let tx = if is_tx { self.tx_info() } else { None };
        let msg = if is_getx {
            CoherenceMsg::Getx {
                addr,
                requester: self.id,
                tx,
            }
        } else {
            CoherenceMsg::Gets {
                addr,
                requester: self.id,
                tx,
            }
        };
        self.mshr = Some(Mshr {
            addr,
            is_getx,
            sem_write,
            is_tx,
            site,
            acks_expected: None,
            acks_received: 0,
            nackers: SharerSet::EMPTY,
            aborted_sharers: 0,
            got_grant: false,
            grant_exclusive: false,
            owner_kept_by: None,
            notification: None,
            mp_node: None,
            abandoned: false,
        });
        self.phase = Phase::Blocked;
        Effects {
            sends: vec![(self.home_of(addr), msg)],
            ..Effects::default()
        }
    }

    /// ------------------------------------------------------------------
    /// Forwarded requests from the directory (Inv / FwdGets / FwdGetx).
    /// ------------------------------------------------------------------
    pub fn on_forward<M: MemOps>(
        &mut self,
        now: Cycle,
        msg: &CoherenceMsg,
        memory: &mut M,
    ) -> Effects {
        let (addr, requester, tx, kind, unicast) = match msg {
            CoherenceMsg::Inv {
                addr,
                requester,
                tx,
                unicast,
            } => (*addr, *requester, *tx, IncomingKind::Write, *unicast),
            CoherenceMsg::FwdGetx {
                addr,
                requester,
                tx,
                unicast,
            } => (*addr, *requester, *tx, IncomingKind::Write, *unicast),
            CoherenceMsg::FwdGets {
                addr,
                requester,
                tx,
            } => (*addr, *requester, *tx, IncomingKind::Read, false),
            other => panic!("on_forward: not a forward: {other:?}"),
        };
        let req_ts = tx.map(|t| t.timestamp);
        let force_nack = std::mem::take(&mut self.force_nack_once);
        let mut eff = Effects::default();
        // A sticky-owned line re-requested by this very node arrives back
        // as a self-forward (the directory still names us owner after an
        // overflow writeback). Serving our own request is never a
        // conflict.
        let decision = if requester == self.id {
            ForwardDecision::Comply
        } else {
            let real = self.htm.respond_forward(addr, kind, req_ts, unicast);
            // A spurious-NACK fault downgrades a would-be Comply to a plain
            // NACK — the conservative refusal the protocol already handles
            // (cf. a mispredicted unicast probe). Decisions that nack or
            // abort anyway absorb the fault unchanged.
            if force_nack && matches!(real, ForwardDecision::Comply) {
                eff.injected_nack = true;
                ForwardDecision::Nack { mispredict: false }
            } else {
                real
            }
        };
        match decision {
            ForwardDecision::Nack { mispredict } => {
                // Only the receiver of a *unicast* request notifies the
                // requester (Section III-D): a unicast nacker is the
                // predicted highest-priority sharer, so its remaining run
                // time is the quantity that actually gates the requester.
                // Multicast nackers stay silent — we measured the
                // alternative (every nacker notifying, requester waiting for
                // the max) and it oversleeps badly when nackers are
                // themselves aborted. Misprediction nacks carry no
                // notification (Figure 8(c2)).
                let notification = if unicast && !mispredict && self.notification_enabled {
                    self.htm.current().and_then(|ctx| {
                        self.txlb
                            .estimate(ctx.static_tx)
                            .map(|avg| notification_estimate(avg, ctx.elapsed(now)))
                    })
                } else {
                    None
                };
                let stats = self.htm.stats_mut();
                stats.nacks_sent.inc();
                if notification.is_some() {
                    stats.notifications_sent.inc();
                }
                if mispredict {
                    stats.mp_nacks_sent.inc();
                }
                if self.wakeup_hints && notification.is_some() {
                    // Remember the requester; poke it when we finish.
                    if self.pending_wakeups.len() >= 4 {
                        self.pending_wakeups.remove(0);
                    }
                    if !self.pending_wakeups.contains(&(requester, addr)) {
                        self.pending_wakeups.push((requester, addr));
                    }
                }
                if self.htm_trace_on() {
                    self.trace_buf.push((
                        now,
                        TraceEvent::HtmNackSent {
                            node: self.id,
                            requester,
                            addr,
                            notified: notification.is_some(),
                            mispredict,
                        },
                    ));
                }
                let terminal = unicast || !matches!(msg, CoherenceMsg::Inv { .. });
                eff.sends.push((
                    requester,
                    CoherenceMsg::Nack {
                        addr,
                        from: self.id,
                        notification,
                        mispredict,
                        unicast: terminal,
                    },
                ));
            }
            ForwardDecision::Comply => {
                self.comply(now, addr, requester, msg, false, &mut eff);
            }
            ForwardDecision::AbortAndComply => {
                let cause = match kind {
                    IncomingKind::Write => AbortCause::TxWriteInvalidation,
                    IncomingKind::Read => AbortCause::TxReadConflict,
                };
                self.abort_current_tx(now, cause, Some((requester, addr)), memory, &mut eff);
                self.comply(now, addr, requester, msg, true, &mut eff);
            }
        }
        eff
    }

    /// Comply with a forward: surrender the line per the request type.
    fn comply(
        &mut self,
        _now: Cycle,
        addr: LineAddr,
        requester: NodeId,
        msg: &CoherenceMsg,
        aborted: bool,
        eff: &mut Effects,
    ) {
        // Ownership (sticky or real) moves away with this forward.
        self.sticky_owned.remove(addr);
        match msg {
            CoherenceMsg::Inv { .. } => {
                self.l1.invalidate(addr);
                eff.sends.push((
                    requester,
                    CoherenceMsg::Ack {
                        addr,
                        from: self.id,
                        aborted,
                    },
                ));
            }
            CoherenceMsg::FwdGets { .. } => {
                // Keep a shared copy unless we aborted (in which case the
                // rolled-back line is dropped) or no longer hold the line
                // (writeback in flight).
                let have_line = self.l1.state(addr).is_some();
                let keep = have_line && !aborted;
                if keep {
                    self.l1.set_state(addr, LineState::Shared);
                } else {
                    self.l1.invalidate(addr);
                }
                eff.sends.push((
                    requester,
                    CoherenceMsg::Data {
                        addr,
                        from: self.id,
                        acks_expected: 0,
                        exclusive: false,
                        owner_kept: keep,
                    },
                ));
                // Sharing writeback refreshes the home's L2 copy.
                eff.sends.push((
                    self.home_of(addr),
                    CoherenceMsg::WbData {
                        addr,
                        from: self.id,
                    },
                ));
            }
            CoherenceMsg::FwdGetx { .. } => {
                self.l1.invalidate(addr);
                eff.sends.push((
                    requester,
                    CoherenceMsg::Data {
                        addr,
                        from: self.id,
                        acks_expected: 0,
                        exclusive: true,
                        owner_kept: false,
                    },
                ));
            }
            other => panic!("comply: not a forward: {other:?}"),
        }
    }

    /// Abort the running transaction (conflict loser or capacity): roll
    /// back memory, unpin, and schedule the re-execution. `by` names the
    /// aborter node and conflicting line for conflict aborts (`None` for
    /// injected faults) — the attribution the blame matrix is built from.
    fn abort_current_tx<M: MemOps>(
        &mut self,
        now: Cycle,
        cause: AbortCause,
        by: Option<(NodeId, LineAddr)>,
        memory: &mut M,
        eff: &mut Effects,
    ) {
        let discarded = self.htm.current().map_or(0, |ctx| ctx.effort(now));
        let out = self.htm.abort(now, cause);
        if self.htm_trace_on() {
            self.trace_buf.push((
                now,
                TraceEvent::HtmAbort {
                    node: self.id,
                    tx: out.tx,
                    cause: cause.trace_code(),
                    by: by.map(|(node, _)| node),
                    addr: by.map(|(_, addr)| addr),
                    discarded,
                },
            ));
        }
        memory.rollback(out.rollback);
        self.l1.unpin_all();
        // The aborting transaction's isolation is gone: requesters it
        // nacked can retry right away.
        self.drain_wakeup_hints(eff);
        let cur = self.cur_tx.as_mut().expect("abort without tx identity");
        cur.prior_aborts = out.consecutive_aborts;
        let backoff = self.backoff.on_abort(out.consecutive_aborts);
        self.htm.stats_mut().backoff_cycles.add(backoff);
        let delay = out.penalty + backoff;
        self.op_idx = 0;
        self.epoch += 1; // cancel any in-flight wake (e.g. a pending nack retry)
                         // A late WakeupHint must not short-circuit abort recovery.
        self.waiting_retry = None;
        if let Some(mshr) = self.mshr.as_mut() {
            // Our own request is still in flight; the episode must conclude
            // before the core can restart cleanly.
            mshr.abandoned = true;
            self.pending_restart = Some(delay);
        } else {
            self.phase = Phase::Ready;
            eff.wake_at = Some(now + delay);
        }
    }

    /// ------------------------------------------------------------------
    /// Responses to our outstanding request.
    /// ------------------------------------------------------------------
    pub fn on_response<M: MemOps>(
        &mut self,
        now: Cycle,
        msg: &CoherenceMsg,
        memory: &mut M,
    ) -> Effects {
        if let CoherenceMsg::WbAck { addr } = msg {
            match self.wb_buffer.get_mut(*addr) {
                Some(count) if *count > 1 => *count -= 1,
                Some(_) => {
                    self.wb_buffer.remove(*addr);
                }
                None => debug_assert!(false, "WbAck for unknown writeback"),
            }
            return Effects::default();
        }
        let mut eff = Effects::default();
        {
            let mshr = self.mshr.as_mut().expect("response without MSHR");
            debug_assert_eq!(mshr.addr, msg.addr(), "response for wrong line");
            match msg {
                CoherenceMsg::Data {
                    acks_expected,
                    exclusive,
                    owner_kept,
                    from,
                    ..
                } => {
                    mshr.got_grant = true;
                    mshr.acks_expected = Some(*acks_expected);
                    mshr.grant_exclusive = *exclusive;
                    if *owner_kept {
                        mshr.owner_kept_by = Some(*from);
                    }
                }
                CoherenceMsg::UpgradeAck { acks_expected, .. } => {
                    mshr.got_grant = true;
                    mshr.acks_expected = Some(*acks_expected);
                    mshr.grant_exclusive = true;
                }
                CoherenceMsg::Ack { from, aborted, .. } => {
                    let _ = from;
                    mshr.acks_received += 1;
                    if *aborted {
                        mshr.aborted_sharers += 1;
                    }
                }
                CoherenceMsg::Nack {
                    from,
                    notification,
                    mispredict,
                    unicast,
                    ..
                } => {
                    mshr.acks_received += 1;
                    mshr.nackers.insert(*from);
                    if let Some(n) = notification {
                        // Wait for the *last* nacker: the request cannot
                        // succeed until every refusing transaction is gone.
                        mshr.notification =
                            Some(mshr.notification.map_or(*n, |old: u64| old.max(*n)));
                    }
                    if *mispredict {
                        mshr.mp_node = Some(*from);
                    }
                    if *unicast {
                        // Terminal nack (unicast probe or owner refusal):
                        // nothing else is coming.
                        mshr.got_grant = true;
                        mshr.acks_expected = Some(mshr.acks_received);
                    }
                }
                other => panic!("unexpected response: {other:?}"),
            }
            let complete =
                mshr.got_grant && mshr.acks_expected.is_some_and(|n| mshr.acks_received >= n);
            if !complete {
                return eff;
            }
        }
        let mshr = self.mshr.take().unwrap();
        self.conclude_episode(now, mshr, memory, &mut eff);
        eff
    }

    fn conclude_episode<M: MemOps>(
        &mut self,
        now: Cycle,
        mshr: Mshr,
        memory: &mut M,
        eff: &mut Effects,
    ) {
        let success = mshr.nackers.is_empty();
        // Relay: on a successful owner transfer, tell the home whether the
        // previous owner kept a shared copy (encoded in the nackers mask —
        // see DirectoryBank::on_unblock). On failure, report the nackers.
        let unblock_mask = if success {
            mshr.owner_kept_by
                .map(SharerSet::single)
                .unwrap_or(SharerSet::EMPTY)
        } else {
            mshr.nackers
        };
        eff.sends.push((
            self.home_of(mshr.addr),
            CoherenceMsg::Unblock {
                addr: mshr.addr,
                requester: self.id,
                success,
                nackers: unblock_mask,
                mp_node: mshr.mp_node,
                tx: if mshr.is_tx { self.tx_info() } else { None },
            },
        ));

        // False-abort oracle: every transactional GETX episode.
        if mshr.is_tx && mshr.is_getx {
            eff.oracle_episode = Some((!success, mshr.aborted_sharers));
        }

        if success {
            self.last_nackers = SharerSet::EMPTY;
            // Install the line.
            let state = if mshr.is_getx {
                LineState::Modified
            } else if mshr.grant_exclusive {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
            let eviction = match self.l1.fill(mshr.addr, state) {
                Ok(ev) => ev,
                Err(_) => {
                    // No unpinned victim: transactional overflow. LogTM-
                    // style recovery: force-evict a pinned line with a
                    // *sticky* writeback so conflict detection survives at
                    // the directory (the transaction does NOT abort).
                    self.htm.stats_mut().overflow_evictions.inc();
                    self.l1.fill_forced(mshr.addr, state)
                }
            };
            self.handle_eviction(eviction, eff);
            if mshr.abandoned {
                // The transaction that wanted this line is gone; the line
                // stays cached (coherent), the op is not performed.
                self.finish_abandoned(now, eff);
            } else {
                self.finish_completed_access(now, &mshr, memory, eff);
            }
        } else {
            // NACKed: retry after backoff (mechanism-specific). A nack with
            // the MP-bit means the episode was a stale-prediction probe —
            // the directory has already invalidated the bad priority, so
            // the requester retries immediately (the retry will be serviced
            // as a normal multicast).
            if mshr.abandoned {
                self.finish_abandoned(now, eff);
            } else {
                let bo = if mshr.mp_node.is_some() {
                    1
                } else {
                    self.backoff.on_nack(mshr.notification)
                };
                if mshr.is_tx {
                    self.htm.note_stall(bo);
                }
                if self.htm_trace_on() {
                    self.trace_buf.push((
                        now,
                        TraceEvent::HtmStall {
                            node: self.id,
                            addr: mshr.addr,
                            backoff: bo,
                        },
                    ));
                }
                let stats = self.htm.stats_mut();
                stats.nacks_received.inc();
                stats.retries.inc();
                stats.backoff_cycles.add(bo);
                self.phase = Phase::Ready;
                self.waiting_retry = Some(mshr.addr);
                self.last_nackers = mshr.nackers;
                eff.wake_at = Some(now + bo);
            }
        }
    }

    fn finish_abandoned(&mut self, now: Cycle, eff: &mut Effects) {
        let delay = self
            .pending_restart
            .take()
            .expect("abandoned episode without pending restart");
        self.phase = Phase::Ready;
        eff.wake_at = Some(now + delay);
    }

    fn finish_completed_access<M: MemOps>(
        &mut self,
        now: Cycle,
        mshr: &Mshr,
        memory: &mut M,
        eff: &mut Effects,
    ) {
        if mshr.is_tx {
            if mshr.sem_write {
                let old = memory.read(mshr.addr);
                self.htm.record_store(mshr.addr, old);
                memory.write(mshr.addr, old.wrapping_add(1));
                self.l1.pin(mshr.addr);
            } else {
                self.htm.record_load(mshr.addr, mshr.site);
                // GETX-granted loads (RMW prediction) and E grants hold the
                // line in an owned state: pin (see complete_access_locally).
                if mshr.is_getx || mshr.grant_exclusive {
                    self.l1.pin(mshr.addr);
                }
            }
            self.op_idx += 1;
        } else {
            if mshr.sem_write {
                let old = memory.read(mshr.addr);
                memory.write(mshr.addr, old.wrapping_add(1));
            }
            self.pc += 1;
        }
        self.phase = Phase::Ready;
        eff.wake_at = Some(now + 1);
        let _ = eff;
    }

    /// Send queued wake-up hints (extension; no-op when disabled or empty).
    fn drain_wakeup_hints(&mut self, eff: &mut Effects) {
        for (requester, addr) in self.pending_wakeups.drain(..) {
            eff.sends.push((
                requester,
                CoherenceMsg::WakeupHint {
                    addr,
                    from: self.id,
                },
            ));
        }
    }

    /// A nacker we were waiting on finished: cut the backoff short and
    /// retry now. Stale hints (we moved on) are ignored.
    pub fn on_wakeup_hint(&mut self, now: Cycle, addr: LineAddr) -> Effects {
        if self.waiting_retry == Some(addr) && self.phase == Phase::Ready {
            self.waiting_retry = None;
            self.epoch += 1; // cancel the scheduled (longer) wake
            return Effects::default().wake(now + 1);
        }
        Effects::default()
    }

    fn handle_eviction(&mut self, eviction: Eviction, eff: &mut Effects) {
        let sticky_of = |node: &Self, addr: LineAddr| match node.htm.current() {
            Some(ctx) if ctx.sets.in_write_set(addr) => puno_coherence::msg::StickyKind::Writer,
            Some(ctx) if ctx.sets.in_read_set(addr) => puno_coherence::msg::StickyKind::Reader,
            _ => puno_coherence::msg::StickyKind::None,
        };
        match eviction {
            Eviction::None | Eviction::Silent(_) => {}
            Eviction::CleanOwned(addr) => {
                let sticky = sticky_of(self, addr);
                *self.wb_buffer.get_or_insert_with(addr, || 0) += 1;
                eff.sends.push((
                    self.home_of(addr),
                    CoherenceMsg::Puts {
                        addr,
                        owner: self.id,
                        sticky,
                    },
                ));
            }
            Eviction::Dirty(addr) => {
                let sticky = sticky_of(self, addr);
                if sticky == puno_coherence::msg::StickyKind::Writer {
                    self.sticky_owned.insert(addr);
                }
                *self.wb_buffer.get_or_insert_with(addr, || 0) += 1;
                eff.sends.push((
                    self.home_of(addr),
                    CoherenceMsg::Putx {
                        addr,
                        owner: self.id,
                        sticky,
                    },
                ));
            }
        }
    }

    /// Committed + retired everything?
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }
}

/// Marker: the op-site used for non-transactional accesses.
pub const NON_TX_SITE: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::Mechanism;
    use crate::memory::MemoryImage;
    use puno_coherence::l1::L1Config;
    use puno_htm::backoff::{BackoffConfig, BackoffKind};
    use puno_htm::unit::AbortTiming;
    use puno_sim::{SimRng, StaticTxId};
    use puno_workloads::op::{DynTxSpec, WorkItem};

    fn node_with(items: Vec<WorkItem>) -> NodeState {
        let id = NodeId(1);
        NodeState::new(
            id,
            4,
            L1Cache::new(L1Config { sets: 8, ways: 2 }),
            HtmUnit::new(id, AbortTiming::default(), None),
            TxLengthBuffer::new(8),
            BackoffEngine::new(BackoffKind::Fixed, BackoffConfig::default(), SimRng::new(1)),
            Arc::new(NodeProgram { items }),
            5,
            true,
        )
    }

    fn tx(ops: Vec<TxOp>) -> WorkItem {
        WorkItem::Transaction(DynTxSpec {
            static_tx: StaticTxId(0),
            ops,
        })
    }

    #[test]
    fn think_advances_pc_and_schedules_wake() {
        let mut n = node_with(vec![WorkItem::Think(30)]);
        let mut mem = MemoryImage::new();
        let eff = n.step(0, &mut mem);
        assert_eq!(eff.wake_at, Some(30));
        assert_eq!(n.pc, 1);
    }

    #[test]
    fn empty_program_finishes() {
        let mut n = node_with(vec![]);
        let mut mem = MemoryImage::new();
        let eff = n.step(7, &mut mem);
        assert!(eff.finished);
        assert!(n.is_done());
        assert_eq!(n.done_at, Some(7));
    }

    #[test]
    fn tx_read_miss_issues_gets_to_home() {
        let mut n = node_with(vec![tx(vec![TxOp::Read(LineAddr(6))])]);
        let mut mem = MemoryImage::new();
        // Begin.
        let eff = n.step(0, &mut mem);
        assert_eq!(eff.wake_at, Some(1));
        // Read -> miss -> GETS to home (6 % 4 = node 2).
        let eff = n.step(1, &mut mem);
        assert_eq!(eff.sends.len(), 1);
        let (dst, msg) = &eff.sends[0];
        assert_eq!(*dst, NodeId(2));
        assert!(matches!(msg, CoherenceMsg::Gets { tx: Some(_), .. }));
        assert_eq!(n.phase, Phase::Blocked);
    }

    #[test]
    fn data_grant_completes_read_and_unblocks() {
        let mut n = node_with(vec![tx(vec![TxOp::Read(LineAddr(6))])]);
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem);
        n.step(1, &mut mem);
        let eff = n.on_response(
            40,
            &CoherenceMsg::Data {
                addr: LineAddr(6),
                from: NodeId(2),
                acks_expected: 0,
                exclusive: false,
                owner_kept: false,
            },
            &mut mem,
        );
        // Unblock success to home.
        assert!(eff.sends.iter().any(|(dst, m)| *dst == NodeId(2)
            && matches!(m, CoherenceMsg::Unblock { success: true, .. })));
        assert_eq!(n.phase, Phase::Ready);
        assert_eq!(n.op_idx, 1);
        assert!(n.htm.current().unwrap().sets.in_read_set(LineAddr(6)));
        assert_eq!(n.l1.state(LineAddr(6)), Some(LineState::Shared));
    }

    #[test]
    fn tx_write_hit_updates_memory_and_pins() {
        let mut n = node_with(vec![tx(vec![TxOp::Write(LineAddr(6))])]);
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem);
        n.l1.fill(LineAddr(6), LineState::Exclusive).unwrap();
        let eff = n.step(1, &mut mem);
        assert!(eff.sends.is_empty(), "E hit needs no traffic");
        assert_eq!(mem.read(LineAddr(6)), 1, "write increments");
        assert!(n.l1.is_pinned(LineAddr(6)));
        assert_eq!(n.l1.state(LineAddr(6)), Some(LineState::Modified));
    }

    #[test]
    fn nacked_getx_retries_after_fixed_backoff() {
        let mut n = node_with(vec![tx(vec![TxOp::Write(LineAddr(6))])]);
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem);
        n.step(1, &mut mem); // GETX out
                             // Data grant with 1 invalidation expected, then a NACK.
        n.on_response(
            30,
            &CoherenceMsg::Data {
                addr: LineAddr(6),
                from: NodeId(2),
                acks_expected: 1,
                exclusive: true,
                owner_kept: false,
            },
            &mut mem,
        );
        let eff = n.on_response(
            35,
            &CoherenceMsg::Nack {
                addr: LineAddr(6),
                from: NodeId(3),
                notification: None,
                mispredict: false,
                unicast: false,
            },
            &mut mem,
        );
        // Unblock failure carrying the nacker.
        let unblock = eff
            .sends
            .iter()
            .find_map(|(_, m)| match m {
                CoherenceMsg::Unblock {
                    success, nackers, ..
                } => Some((*success, *nackers)),
                _ => None,
            })
            .unwrap();
        assert!(!unblock.0);
        assert!(unblock.1.contains(NodeId(3)));
        // Oracle: nacked tx-GETX with zero aborted sharers.
        assert_eq!(eff.oracle_episode, Some((true, 0)));
        // Fixed 20-cycle retry.
        assert_eq!(eff.wake_at, Some(55));
        assert_eq!(n.htm.stats().retries.get(), 1);
        // Retry reissues the same op.
        let eff = n.step(55, &mut mem);
        assert!(matches!(eff.sends[0].1, CoherenceMsg::Getx { .. }));
    }

    #[test]
    fn notification_guides_retry_backoff() {
        let mut n = node_with(vec![tx(vec![TxOp::Write(LineAddr(6))])]);
        n.backoff = BackoffEngine::new(
            BackoffKind::NotificationGuided,
            BackoffConfig {
                round_trip_allowance: 30,
                ..BackoffConfig::default()
            },
            SimRng::new(1),
        );
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem);
        n.step(1, &mut mem);
        let eff = n.on_response(
            100,
            &CoherenceMsg::Nack {
                addr: LineAddr(6),
                from: NodeId(3),
                notification: Some(500),
                mispredict: false,
                unicast: true,
            },
            &mut mem,
        );
        // Terminal unicast nack concludes immediately; backoff = 500 - 30.
        assert_eq!(eff.wake_at, Some(100 + 470));
        assert_eq!(eff.oracle_episode, Some((true, 0)));
    }

    #[test]
    fn forward_invalidation_aborts_younger_reader() {
        let mut n = node_with(vec![tx(vec![TxOp::Read(LineAddr(6)), TxOp::Think(100)])]);
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem); // begin at cycle 0 -> ts = 0*4+1 = 1
        n.l1.fill(LineAddr(6), LineState::Shared).unwrap();
        n.step(1, &mut mem); // read hits, recorded
        assert!(n.htm.current().unwrap().sets.in_read_set(LineAddr(6)));
        // Older writer (ts 0) invalidates.
        let eff = n.on_forward(
            50,
            &CoherenceMsg::Inv {
                addr: LineAddr(6),
                requester: NodeId(0),
                tx: Some(TxInfo {
                    tx: TxId(99),
                    timestamp: Timestamp(0),
                    static_tx: StaticTxId(0),
                    avg_len_hint: 0,
                }),
                unicast: false,
            },
            &mut mem,
        );
        // Ack with aborted flag; transaction gone; restart scheduled.
        assert!(matches!(
            eff.sends[0].1,
            CoherenceMsg::Ack { aborted: true, .. }
        ));
        assert!(n.htm.current().is_none());
        assert!(eff.wake_at.is_some());
        assert_eq!(n.htm.stats().aborts.get(), 1);
        assert_eq!(n.l1.state(LineAddr(6)), None);
        // Restart keeps the timestamp.
        let restart = eff.wake_at.unwrap();
        let eff = n.step(restart, &mut mem);
        assert_eq!(eff.wake_at, Some(restart + 1));
        assert_eq!(n.htm.current().unwrap().timestamp, Timestamp(1));
        assert_eq!(n.htm.current().unwrap().prior_aborts, 1);
    }

    #[test]
    fn older_reader_nacks_younger_writer() {
        let mut n = node_with(vec![tx(vec![TxOp::Read(LineAddr(6)), TxOp::Think(100)])]);
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem);
        n.l1.fill(LineAddr(6), LineState::Shared).unwrap();
        n.step(1, &mut mem);
        let eff = n.on_forward(
            50,
            &CoherenceMsg::Inv {
                addr: LineAddr(6),
                requester: NodeId(0),
                tx: Some(TxInfo {
                    tx: TxId(99),
                    timestamp: Timestamp(1000),
                    static_tx: StaticTxId(0),
                    avg_len_hint: 0,
                }),
                unicast: false,
            },
            &mut mem,
        );
        assert!(matches!(
            eff.sends[0].1,
            CoherenceMsg::Nack {
                mispredict: false,
                unicast: false,
                ..
            }
        ));
        assert!(n.htm.current().is_some(), "tx survives");
        assert_eq!(n.htm.stats().nacks_sent.get(), 1);
    }

    #[test]
    fn unicast_nack_carries_notification_once_txlb_trained() {
        let mut n = node_with(vec![tx(vec![TxOp::Read(LineAddr(6)), TxOp::Think(400)])]);
        // Train the TxLB: static tx 0 averages 1000 cycles.
        n.txlb.record_commit(StaticTxId(0), 1000);
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem);
        n.l1.fill(LineAddr(6), LineState::Shared).unwrap();
        n.step(1, &mut mem);
        // A younger writer's unicast probe at cycle 300 (tx began ~0).
        let eff = n.on_forward(
            300,
            &CoherenceMsg::Inv {
                addr: LineAddr(6),
                requester: NodeId(0),
                tx: Some(TxInfo {
                    tx: TxId(99),
                    timestamp: Timestamp(5000),
                    static_tx: StaticTxId(0),
                    avg_len_hint: 0,
                }),
                unicast: true,
            },
            &mut mem,
        );
        match &eff.sends[0].1 {
            CoherenceMsg::Nack {
                notification: Some(t_est),
                unicast: true,
                mispredict: false,
                ..
            } => {
                // avg 1000 - elapsed 300 = 700.
                assert_eq!(*t_est, 700);
            }
            other => panic!("expected notified nack, got {other:?}"),
        }
        assert_eq!(n.htm.stats().notifications_sent.get(), 1);
    }

    #[test]
    fn mispredicted_unicast_sets_mp_bit_and_keeps_tx() {
        let mut n = node_with(vec![tx(vec![TxOp::Read(LineAddr(6)), TxOp::Think(100)])]);
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem); // ts = 1
        n.l1.fill(LineAddr(6), LineState::Shared).unwrap();
        n.step(1, &mut mem);
        // An *older* writer's unicast probe: we are mispredicted.
        let eff = n.on_forward(
            50,
            &CoherenceMsg::Inv {
                addr: LineAddr(6),
                requester: NodeId(0),
                tx: Some(TxInfo {
                    tx: TxId(99),
                    timestamp: Timestamp(0),
                    static_tx: StaticTxId(0),
                    avg_len_hint: 0,
                }),
                unicast: true,
            },
            &mut mem,
        );
        assert!(matches!(
            eff.sends[0].1,
            CoherenceMsg::Nack {
                mispredict: true,
                notification: None,
                ..
            }
        ));
        assert!(n.htm.current().is_some(), "conservative nack, no abort");
        assert!(n.l1.state(LineAddr(6)).is_some(), "copy retained");
    }

    #[test]
    fn abort_while_request_in_flight_defers_restart() {
        let mut n = node_with(vec![tx(vec![
            TxOp::Read(LineAddr(6)),
            TxOp::Write(LineAddr(9)),
        ])]);
        let mut mem = MemoryImage::new();
        n.step(0, &mut mem);
        n.l1.fill(LineAddr(6), LineState::Shared).unwrap();
        n.step(1, &mut mem); // read hit
        let eff = n.step(2, &mut mem); // write miss -> GETX(9) in flight
        assert_eq!(eff.sends.len(), 1);
        // While blocked, an older writer invalidates our read line: abort.
        let eff = n.on_forward(
            10,
            &CoherenceMsg::Inv {
                addr: LineAddr(6),
                requester: NodeId(0),
                tx: Some(TxInfo {
                    tx: TxId(99),
                    timestamp: Timestamp(0),
                    static_tx: StaticTxId(0),
                    avg_len_hint: 0,
                }),
                unicast: false,
            },
            &mut mem,
        );
        assert!(eff.wake_at.is_none(), "restart deferred to episode end");
        assert!(n.htm.current().is_none());
        // The in-flight GETX(9) concludes successfully; line installs but
        // the op is NOT performed; restart is scheduled.
        let eff = n.on_response(
            60,
            &CoherenceMsg::Data {
                addr: LineAddr(9),
                from: NodeId(1),
                acks_expected: 0,
                exclusive: true,
                owner_kept: false,
            },
            &mut mem,
        );
        assert!(eff
            .sends
            .iter()
            .any(|(_, m)| matches!(m, CoherenceMsg::Unblock { success: true, .. })));
        assert!(eff.wake_at.is_some());
        assert_eq!(mem.read(LineAddr(9)), 0, "abandoned op must not write");
        assert_eq!(n.l1.state(LineAddr(9)), Some(LineState::Modified));
        assert_eq!(n.op_idx, 0, "transaction restarts from the top");
    }

    #[test]
    fn dirty_eviction_issues_putx_and_wb_ack_clears() {
        let mut n = node_with(vec![]);
        let mut mem = MemoryImage::new();
        // Fill set 0 (addrs 0 and 8 with sets=8... addr%8: use 0 and 8).
        n.l1.fill(LineAddr(0), LineState::Modified).unwrap();
        n.l1.fill(LineAddr(8), LineState::Shared).unwrap();
        n.l1.access(LineAddr(8), false);
        // Next fill in set 0 evicts dirty LineAddr(0).
        let mut eff = Effects::default();
        let ev = n.l1.fill(LineAddr(16), LineState::Shared).unwrap();
        n.handle_eviction(ev, &mut eff);
        assert!(matches!(eff.sends[0].1, CoherenceMsg::Putx { .. }));
        assert!(n.wb_buffer.contains_key(LineAddr(0)));
        n.on_response(5, &CoherenceMsg::WbAck { addr: LineAddr(0) }, &mut mem);
        assert!(n.wb_buffer.is_empty());
    }

    #[test]
    fn rmw_predicted_load_issues_getx() {
        let id = NodeId(1);
        let mut n = NodeState::new(
            id,
            4,
            L1Cache::new(L1Config { sets: 8, ways: 2 }),
            HtmUnit::new(
                id,
                AbortTiming::default(),
                Some(puno_htm::RmwPredictor::new(8)),
            ),
            TxLengthBuffer::new(8),
            BackoffEngine::new(BackoffKind::Fixed, BackoffConfig::default(), SimRng::new(1)),
            Arc::new(NodeProgram {
                items: vec![
                    tx(vec![TxOp::Read(LineAddr(6)), TxOp::Write(LineAddr(6))]),
                    tx(vec![TxOp::Read(LineAddr(6))]),
                ],
            }),
            5,
            true,
        );
        let mut mem = MemoryImage::new();
        // First transaction trains the predictor: read then write line 6.
        n.step(0, &mut mem); // begin
        n.l1.fill(LineAddr(6), LineState::Exclusive).unwrap();
        n.step(1, &mut mem); // read hit
        n.step(2, &mut mem); // write hit (E->M) -> trains RMW
        n.step(3, &mut mem); // commit
                             // Second transaction: the load at the same site now predicts RMW.
        n.l1.invalidate(LineAddr(6));
        n.step(10, &mut mem); // begin
        let eff = n.step(11, &mut mem); // read miss
        assert!(
            matches!(eff.sends[0].1, CoherenceMsg::Getx { .. }),
            "predicted RMW load must request exclusive"
        );
        let _ = Mechanism::RmwPred;
    }
}
