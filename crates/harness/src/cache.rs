//! Persistent result cache and sweep cost model.
//!
//! Every simulated cell is a pure function of `(SystemConfig, WorkloadParams,
//! seed)` — so once a cell has run, re-running it (another `regen_all.sh`
//! figure binary, a resumed sweep, a sensitivity point sharing a
//! configuration) is pure waste. The [`ResultCache`] memoizes fault-free
//! successful runs in an append-only JSONL file keyed by a content digest of
//! the full cell identity plus [`ENGINE_VERSION`]; bumping the version
//! invalidates every cached cell at once, which is the required response to
//! *any* change in simulated behaviour (the golden snapshots catch those).
//!
//! Alongside the results, the cache directory accumulates per-cell host
//! wall-clocks (`costs.jsonl`). The [`CostModel`] folds them into
//! per-(workload, mechanism) per-transaction cost estimates used by the
//! sweep driver to order its job queue longest-first (LPT), so the most
//! expensive cells start first and stragglers do not serialize the tail.

use crate::config::SystemConfig;
use crate::metrics::RunMetrics;
use puno_workloads::{fnv1a_64, WorkloadParams};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version of the simulation engine for cache-key purposes. Bump on ANY
/// change that can alter a `RunMetrics` field for some cell — the digest
/// covers the configuration and workload inputs, but only this constant
/// covers the code. (The golden snapshot suite is the detector: if it needs
/// a re-bless, this needs a bump.)
pub const ENGINE_VERSION: u32 = 2;

/// Content digest identifying one simulation cell: the full system
/// configuration, the workload parameters, the seed, and the engine
/// version, hashed FNV-1a over their canonical `Debug` representations
/// (every field of both structs appears in `Debug`, so any perturbation —
/// including ones that cannot change behaviour, which merely over-
/// invalidates — changes the digest).
pub fn cell_digest(config: &SystemConfig, params: &WorkloadParams, seed: u64) -> u64 {
    let repr = format!("engine-v{ENGINE_VERSION}|{config:?}|{params:?}|seed={seed}");
    fnv1a_64(repr.as_bytes())
}

/// One persisted cache entry (one JSONL line).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheRecord {
    pub digest: u64,
    pub workload: String,
    pub mechanism: String,
    pub seed: u64,
    pub metrics: RunMetrics,
}

/// One persisted cost observation (one JSONL line in `costs.jsonl`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostRecord {
    pub workload: String,
    pub mechanism: String,
    /// Transactions per node of the observed run — wall-clock is stored
    /// alongside it so the model learns a *per-transaction* cost and stays
    /// scale-invariant across sweeps at different `--scale` values.
    pub tx_per_node: u32,
    pub wall_secs: f64,
}

/// Cache hit/miss/store counters (host-side observability only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub stores: u64,
    pub entries: u64,
}

/// Append-only persistent store of fault-free run results, keyed by
/// [`cell_digest`]. Loads the whole JSONL file at open (last record wins,
/// torn trailing lines skipped), then serves lookups from memory and
/// appends new results as they complete. Thread-safe: the sweep's worker
/// threads share one instance.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    entries: Mutex<HashMap<u64, RunMetrics>>,
    file: Mutex<std::fs::File>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl ResultCache {
    fn results_path(dir: &Path) -> PathBuf {
        dir.join("results.jsonl")
    }

    fn costs_path(&self) -> PathBuf {
        self.dir.join("costs.jsonl")
    }

    /// Open (creating if needed) the cache rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = Self::results_path(dir);
        let mut entries = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                if let Ok(rec) = serde_json::from_str::<CacheRecord>(line) {
                    entries.insert(rec.digest, rec.metrics);
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            entries: Mutex::new(entries),
            file: Mutex::new(file),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// Look a cell up by digest; counts a hit or a miss.
    pub fn lookup(&self, digest: u64) -> Option<RunMetrics> {
        let found = self.entries.lock().unwrap().get(&digest).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Persist one finished cell. Idempotent per digest: a digest already
    /// in memory is not re-appended (keeps warm re-runs from growing the
    /// file).
    pub fn store(&self, digest: u64, seed: u64, metrics: &RunMetrics) {
        {
            let mut entries = self.entries.lock().unwrap();
            if entries.contains_key(&digest) {
                return;
            }
            entries.insert(digest, metrics.clone());
        }
        let rec = CacheRecord {
            digest,
            workload: metrics.workload.clone(),
            mechanism: metrics.mechanism.clone(),
            seed,
            metrics: metrics.clone(),
        };
        let line = serde_json::to_string(&rec).expect("cache record must serialize");
        let mut f = self.file.lock().unwrap();
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap().len() as u64,
        }
    }

    /// Fold the persisted cost observations into a [`CostModel`].
    pub fn load_costs(&self) -> CostModel {
        let mut model = CostModel::default();
        if let Ok(text) = std::fs::read_to_string(self.costs_path()) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                if let Ok(rec) = serde_json::from_str::<CostRecord>(line) {
                    model.observe(
                        &rec.workload,
                        &rec.mechanism,
                        rec.tx_per_node,
                        rec.wall_secs,
                    );
                }
            }
        }
        model
    }

    /// Append cost observations from a finished sweep.
    pub fn append_costs(&self, records: &[CostRecord]) {
        if records.is_empty() {
            return;
        }
        let mut out = String::new();
        for rec in records {
            let line = serde_json::to_string(rec).expect("cost record must serialize");
            out.push_str(&line);
            out.push('\n');
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.costs_path())
        {
            let _ = f.write_all(out.as_bytes());
        }
    }
}

/// The process-wide cache configured by the `PUNO_RESULT_CACHE` environment
/// variable (a directory path; unset, empty, `0`, or `off` disables it).
/// Resolved once per process: scripts set the variable before launch.
pub fn global_cache() -> Option<Arc<ResultCache>> {
    static CACHE: OnceLock<Option<Arc<ResultCache>>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let dir = std::env::var("PUNO_RESULT_CACHE").ok()?;
            let dir = dir.trim();
            if dir.is_empty() || dir == "0" || dir.eq_ignore_ascii_case("off") {
                return None;
            }
            match ResultCache::open(Path::new(dir)) {
                Ok(cache) => Some(Arc::new(cache)),
                Err(e) => {
                    eprintln!("warning: PUNO_RESULT_CACHE={dir} unusable ({e}); caching disabled");
                    None
                }
            }
        })
        .clone()
}

/// Per-(workload, mechanism) cost estimator for sweep job ordering. Learned
/// observations dominate; cells never seen before fall back to a
/// parameter-derived heuristic (expected transactional operations per run),
/// scaled into pseudo-seconds so mixed observed/heuristic queues still
/// order sensibly. Only *relative* order matters to the scheduler.
#[derive(Clone, Debug, Default)]
pub struct CostModel {
    /// (workload, mechanism) -> (sum of per-transaction wall secs, count).
    per_tx: HashMap<(String, String), (f64, u64)>,
}

/// Rough host seconds per simulated transactional operation (heuristic
/// fallback scale; commensurate with observed costs only to first order).
const HEURISTIC_SECS_PER_OP: f64 = 2e-6;

impl CostModel {
    /// Record one observed cell wall-clock.
    pub fn observe(&mut self, workload: &str, mechanism: &str, tx_per_node: u32, wall_secs: f64) {
        if tx_per_node == 0 || !wall_secs.is_finite() || wall_secs <= 0.0 {
            return;
        }
        let entry = self
            .per_tx
            .entry((workload.to_string(), mechanism.to_string()))
            .or_insert((0.0, 0));
        entry.0 += wall_secs / tx_per_node as f64;
        entry.1 += 1;
    }

    /// Estimated wall-clock for one cell, in (pseudo-)seconds.
    pub fn estimate(&self, workload: &str, mechanism: &str, params: &WorkloadParams) -> f64 {
        let key = (workload.to_string(), mechanism.to_string());
        if let Some(&(sum, n)) = self.per_tx.get(&key) {
            if n > 0 {
                return (sum / n as f64) * params.tx_per_node as f64;
            }
        }
        Self::heuristic(params)
    }

    /// Parameter-derived fallback: expected transactional + non-transactional
    /// operations per node-run, scaled to pseudo-seconds.
    fn heuristic(params: &WorkloadParams) -> f64 {
        let weight_sum: f64 = params
            .static_txs
            .iter()
            .map(|t| t.weight)
            .sum::<f64>()
            .max(1e-9);
        let ops_per_tx: f64 = params
            .static_txs
            .iter()
            .map(|t| {
                let reads = (t.reads.0 + t.reads.1) as f64 / 2.0;
                let writes = (t.writes.0 + t.writes.1) as f64 / 2.0;
                t.weight * (reads + writes)
            })
            .sum::<f64>()
            / weight_sum;
        let ops = params.tx_per_node as f64 * (ops_per_tx + params.non_tx_accesses as f64);
        ops * HEURISTIC_SECS_PER_OP
    }

    pub fn observation_count(&self) -> u64 {
        self.per_tx.values().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::Mechanism;
    use crate::run::run_workload;
    use puno_workloads::WorkloadId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("puno-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let d = cell_digest(&config, &params, 42);
        assert_eq!(d, cell_digest(&config, &params, 42), "digest must be pure");

        // Every component of the cell identity must perturb the digest.
        let mut seen = vec![d];
        seen.push(cell_digest(&config, &params, 43));
        seen.push(cell_digest(
            &SystemConfig::paper(Mechanism::Puno),
            &params,
            42,
        ));
        seen.push(cell_digest(
            &config,
            &WorkloadId::Ssca2.params().scaled(0.1),
            42,
        ));
        seen.push(cell_digest(
            &config,
            &WorkloadId::Kmeans.params().scaled(0.05),
            42,
        ));
        let mut cfg2 = config;
        cfg2.commit_latency += 1;
        seen.push(cell_digest(&cfg2, &params, 42));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "digest collision: {seen:?}");
    }

    #[test]
    fn store_then_lookup_roundtrips_bit_identically() {
        let dir = temp_dir("roundtrip");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);

        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.lookup(digest).is_none());
        cache.store(digest, 9, &metrics);
        // Same process, memory-served.
        let replay = cache.lookup(digest).expect("stored cell must hit");
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&metrics).unwrap(),
        );
        // Fresh open: disk-served (a new process would see this).
        let reopened = ResultCache::open(&dir).unwrap();
        let replay = reopened.lookup(digest).expect("persisted cell must hit");
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&metrics).unwrap(),
        );
        assert_eq!(reopened.stats().entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_is_idempotent_per_digest() {
        let dir = temp_dir("idempotent");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(digest, 9, &metrics);
        cache.store(digest, 9, &metrics);
        cache.store(digest, 9, &metrics);
        assert_eq!(cache.stats().stores, 1);
        let lines = std::fs::read_to_string(ResultCache::results_path(&dir))
            .unwrap()
            .lines()
            .count();
        assert_eq!(lines, 1, "duplicate digests must not grow the file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_skipped_on_load() {
        let dir = temp_dir("torn");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.store(digest, 9, &metrics);
        }
        // Simulate a crash mid-append.
        let path = ResultCache::results_path(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"digest\": 123, \"workl");
        std::fs::write(&path, text).unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.lookup(digest).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cost_model_learns_per_transaction_costs() {
        let mut model = CostModel::default();
        let params_small = WorkloadId::Genome.params().scaled(0.05);
        let params_large = WorkloadId::Genome.params().scaled(0.5);
        // Heuristic fallback scales with tx_per_node.
        let h_small = model.estimate("genome", "baseline", &params_small);
        let h_large = model.estimate("genome", "baseline", &params_large);
        assert!(h_large > h_small);

        // An observation at one scale predicts proportionally at another.
        model.observe("genome", "baseline", params_small.tx_per_node, 2.0);
        let per_tx = 2.0 / params_small.tx_per_node as f64;
        let predicted = model.estimate("genome", "baseline", &params_large);
        let expected = per_tx * params_large.tx_per_node as f64;
        assert!((predicted - expected).abs() < 1e-9);
        assert_eq!(model.observation_count(), 1);
    }

    #[test]
    fn costs_persist_through_the_cache_dir() {
        let dir = temp_dir("costs");
        let cache = ResultCache::open(&dir).unwrap();
        cache.append_costs(&[CostRecord {
            workload: "genome".into(),
            mechanism: "puno".into(),
            tx_per_node: 100,
            wall_secs: 3.0,
        }]);
        let model = ResultCache::open(&dir).unwrap().load_costs();
        assert_eq!(model.observation_count(), 1);
        let params = WorkloadId::Genome.params();
        let est = model.estimate("genome", "puno", &params);
        assert!((est - 0.03 * params.tx_per_node as f64).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
