//! Persistent result cache and sweep cost model.
//!
//! Every simulated cell is a pure function of `(SystemConfig, WorkloadParams,
//! seed)` — so once a cell has run, re-running it (another `regen_all.sh`
//! figure binary, a resumed sweep, a sensitivity point sharing a
//! configuration) is pure waste. The [`ResultCache`] memoizes fault-free
//! successful runs in an append-only JSONL file keyed by a content digest of
//! the full cell identity plus [`ENGINE_VERSION`]; bumping the version
//! invalidates every cached cell at once, which is the required response to
//! *any* change in simulated behaviour (the golden snapshots catch those).
//!
//! Alongside the results, the cache directory accumulates per-cell host
//! wall-clocks (`costs.jsonl`). The [`CostModel`] folds them into
//! per-(workload, mechanism) per-transaction cost estimates used by the
//! sweep driver to order its job queue longest-first (LPT), so the most
//! expensive cells start first and stragglers do not serialize the tail.

use crate::config::SystemConfig;
use crate::metrics::RunMetrics;
use puno_workloads::{fnv1a_64, WorkloadParams};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version of the simulation engine for cache-key purposes. Bump on ANY
/// change that can alter a `RunMetrics` field for some cell — the digest
/// covers the configuration and workload inputs, but only this constant
/// covers the code. (The golden snapshot suite is the detector: if it needs
/// a re-bless, this needs a bump.)
pub const ENGINE_VERSION: u32 = 4;

/// Version of the prefix-fork rule for grouping-key purposes: bump when the
/// fork-point rule (`System::run_prefix`) or the mechanism-swap procedure
/// (`System::fork_from`) changes in a way that moves the fork boundary.
/// Folded into [`prefix_digest`], so a rule change regroups cells the same
/// way an engine bump invalidates results.
pub const PREFIX_FORK_VERSION: u32 = 1;

/// Content digest identifying one simulation cell: the full system
/// configuration, the workload parameters, the seed, and the engine
/// version, hashed FNV-1a over their canonical `Debug` representations
/// (every field of both structs appears in `Debug`, so any perturbation —
/// including ones that cannot change behaviour, which merely over-
/// invalidates — changes the digest).
pub fn cell_digest(config: &SystemConfig, params: &WorkloadParams, seed: u64) -> u64 {
    let repr = format!("engine-v{ENGINE_VERSION}|{config:?}|{params:?}|seed={seed}");
    fnv1a_64(repr.as_bytes())
}

/// Mechanism-neutral group key for prefix-fork execution: the cell identity
/// with the mechanism axis normalized out, so every cell that shares a
/// `(workload params, seed, geometry)` group — and therefore a run prefix
/// up to the first TX_BEGIN (see `System::run_prefix`) — hashes to the same
/// digest. Covers [`ENGINE_VERSION`] and [`PREFIX_FORK_VERSION`], so an
/// engine or fork-rule change regroups cells instead of silently mixing
/// incompatible prefixes. Persisted in every [`CacheRecord`], which lets a
/// warm sweep skip the prefix run for any group whose cells all replay from
/// the cache.
pub fn prefix_digest(config: &SystemConfig, params: &WorkloadParams, seed: u64) -> u64 {
    let mut neutral = *config;
    neutral.mechanism = crate::mechanism::Mechanism::Baseline;
    let repr = format!(
        "prefix-v{PREFIX_FORK_VERSION}|engine-v{ENGINE_VERSION}|{neutral:?}|{params:?}|seed={seed}"
    );
    fnv1a_64(repr.as_bytes())
}

/// One persisted cache entry (one JSONL line).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheRecord {
    pub digest: u64,
    /// Mechanism-neutral prefix-group key (see [`prefix_digest`]): every
    /// record sharing it belongs to one `(workload params, seed, geometry)`
    /// group whose cells fork from one run prefix when cold.
    pub prefix_digest: u64,
    /// Engine version the record was produced under; records from another
    /// version never serve lookups (their digests differ anyway) and are
    /// dropped by [`ResultCache::compact`].
    pub engine_version: u32,
    pub workload: String,
    pub mechanism: String,
    pub seed: u64,
    pub metrics: RunMetrics,
    /// FNV-1a checksum over the record content (see [`record_checksum`]),
    /// verified on load: a record corrupted anywhere in the file — not just
    /// a torn trailing line — is skipped and counted instead of replayed.
    pub checksum: u64,
}

impl CacheRecord {
    fn build(digest: u64, prefix_digest: u64, seed: u64, metrics: &RunMetrics) -> Self {
        let metrics_json =
            serde_json::to_string(metrics).expect("cache record metrics must serialize");
        let checksum = record_checksum(
            digest,
            prefix_digest,
            ENGINE_VERSION,
            &metrics.workload,
            &metrics.mechanism,
            seed,
            &metrics_json,
        );
        Self {
            digest,
            prefix_digest,
            engine_version: ENGINE_VERSION,
            workload: metrics.workload.clone(),
            mechanism: metrics.mechanism.clone(),
            seed,
            metrics: metrics.clone(),
            checksum,
        }
    }

    fn checksum_valid(&self) -> bool {
        let metrics_json = match serde_json::to_string(&self.metrics) {
            Ok(s) => s,
            Err(_) => return false,
        };
        self.checksum
            == record_checksum(
                self.digest,
                self.prefix_digest,
                self.engine_version,
                &self.workload,
                &self.mechanism,
                self.seed,
                &metrics_json,
            )
    }
}

/// Content checksum of one cache record: FNV-1a over every identity field
/// plus the canonical JSON of the metrics payload.
fn record_checksum(
    digest: u64,
    prefix_digest: u64,
    engine_version: u32,
    workload: &str,
    mechanism: &str,
    seed: u64,
    metrics_json: &str,
) -> u64 {
    fnv1a_64(
        format!(
            "cache|{digest}|p{prefix_digest}|v{engine_version}|{workload}|{mechanism}|{seed}|{metrics_json}"
        )
        .as_bytes(),
    )
}

/// How one persisted line classified on load. Transient (one live value
/// at a time on the load path), so the large `Valid` payload is not worth
/// boxing — and the serde shim has no `Box` impl anyway.
#[allow(clippy::large_enum_variant)]
enum LineClass {
    Valid(CacheRecord),
    Stale,
    Corrupt,
}

fn classify_line(line: &str) -> LineClass {
    match serde_json::from_str::<CacheRecord>(line) {
        Ok(rec) if !rec.checksum_valid() => LineClass::Corrupt,
        Ok(rec) if rec.engine_version != ENGINE_VERSION => LineClass::Stale,
        Ok(rec) => LineClass::Valid(rec),
        Err(_) => LineClass::Corrupt,
    }
}

/// One persisted cost observation (one JSONL line in `costs.jsonl`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostRecord {
    pub workload: String,
    pub mechanism: String,
    /// Transactions per node of the observed run — wall-clock is stored
    /// alongside it so the model learns a *per-transaction* cost and stays
    /// scale-invariant across sweeps at different `--scale` values.
    pub tx_per_node: u32,
    pub wall_secs: f64,
}

/// Cache hit/miss/store counters (host-side observability only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub stores: u64,
    pub entries: u64,
    /// Records skipped at open because they failed to parse or their
    /// content checksum did not verify (anywhere in the file).
    pub corrupt_skipped: u64,
    /// Records skipped at open because they were written by another
    /// `ENGINE_VERSION`.
    pub stale_skipped: u64,
}

/// What [`ResultCache::compact`] did to the persisted file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Live records written back.
    pub kept: u64,
    /// Lines dropped because they failed to parse or verify.
    pub dropped_corrupt: u64,
    /// Records dropped because of an `ENGINE_VERSION` mismatch.
    pub dropped_stale: u64,
    /// Superseded duplicates collapsed by last-wins dedup.
    pub dropped_duplicate: u64,
}

/// Append-only persistent store of fault-free run results, keyed by
/// [`cell_digest`]. Loads the whole JSONL file at open (last record wins,
/// torn trailing lines skipped), then serves lookups from memory and
/// appends new results as they complete. Thread-safe: the sweep's worker
/// threads share one instance.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    entries: Mutex<HashMap<u64, RunMetrics>>,
    file: Mutex<std::fs::File>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt_skipped: u64,
    stale_skipped: u64,
    /// What the most recent [`ResultCache::compact`] on this handle did —
    /// kept so the sweep report and the metrics registry can surface
    /// maintenance that previously only flashed by on stderr.
    last_compact: Mutex<Option<CompactStats>>,
}

impl ResultCache {
    fn results_path(dir: &Path) -> PathBuf {
        dir.join("results.jsonl")
    }

    fn costs_path(&self) -> PathBuf {
        self.dir.join("costs.jsonl")
    }

    /// Open (creating if needed) the cache rooted at `dir`. Corrupt lines
    /// (unparsable, or parsable with a failed content checksum) anywhere in
    /// the file — torn trailing appends, bit flips mid-file — are skipped
    /// and counted, never served; records from another `ENGINE_VERSION`
    /// likewise. [`ResultCache::compact`] rewrites the file without them.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = Self::results_path(dir);
        let mut entries = HashMap::new();
        let mut corrupt_skipped = 0u64;
        let mut stale_skipped = 0u64;
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                match classify_line(line) {
                    LineClass::Valid(rec) => {
                        entries.insert(rec.digest, rec.metrics);
                    }
                    LineClass::Stale => stale_skipped += 1,
                    LineClass::Corrupt => corrupt_skipped += 1,
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            entries: Mutex::new(entries),
            file: Mutex::new(file),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt_skipped,
            stale_skipped,
            last_compact: Mutex::new(None),
        })
    }

    /// Poisoning-tolerant lock access: a worker that panicked mid-`store`
    /// cannot corrupt the map (every mutation is a single `insert` after
    /// the serialization work), so the poison flag is noise — recover the
    /// guard instead of cascading the panic into every later caller.
    fn lock_entries(&self) -> std::sync::MutexGuard<'_, HashMap<u64, RunMetrics>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_file(&self) -> std::sync::MutexGuard<'_, std::fs::File> {
        self.file.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look a cell up by digest; counts a hit or a miss.
    pub fn lookup(&self, digest: u64) -> Option<RunMetrics> {
        let found = self.lock_entries().get(&digest).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Persist one finished cell under its cell digest and its
    /// mechanism-neutral prefix-group key (see [`prefix_digest`]).
    /// Idempotent per digest: a digest already in memory is not re-appended
    /// (keeps warm re-runs from growing the file).
    pub fn store(&self, digest: u64, prefix_digest: u64, seed: u64, metrics: &RunMetrics) {
        {
            let mut entries = self.lock_entries();
            if entries.contains_key(&digest) {
                return;
            }
            entries.insert(digest, metrics.clone());
        }
        let rec = CacheRecord::build(digest, prefix_digest, seed, metrics);
        let line = serde_json::to_string(&rec).expect("cache record must serialize");
        let mut f = self.lock_file();
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            entries: self.lock_entries().len() as u64,
            corrupt_skipped: self.corrupt_skipped,
            stale_skipped: self.stale_skipped,
        }
    }

    /// Rewrite `results.jsonl` keeping only current-engine, checksum-valid
    /// records (last-wins deduped), dropping corrupt and stale lines for
    /// good. The rewrite goes through a temp file and an atomic rename, the
    /// append handle is re-pointed at the new file, and the in-memory map
    /// is refreshed from what was kept — so a compact mid-process never
    /// loses a record another thread just stored (both locks are held
    /// across the swap).
    pub fn compact(&self) -> std::io::Result<CompactStats> {
        let mut entries = self.lock_entries();
        let mut file = self.lock_file();
        let path = Self::results_path(&self.dir);
        let mut stats = CompactStats::default();
        // Last-wins over the persisted lines, preserving first-seen order
        // so a compacted file is deterministic for a given input.
        let mut kept: Vec<CacheRecord> = Vec::new();
        let mut index_of: HashMap<u64, usize> = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                match classify_line(line) {
                    LineClass::Valid(rec) => match index_of.get(&rec.digest) {
                        Some(&i) => {
                            stats.dropped_duplicate += 1;
                            kept[i] = rec;
                        }
                        None => {
                            index_of.insert(rec.digest, kept.len());
                            kept.push(rec);
                        }
                    },
                    LineClass::Stale => stats.dropped_stale += 1,
                    LineClass::Corrupt => stats.dropped_corrupt += 1,
                }
            }
        }
        stats.kept = kept.len() as u64;
        let tmp = self.dir.join("results.jsonl.tmp");
        {
            let mut out = std::fs::File::create(&tmp)?;
            for rec in &kept {
                let line = serde_json::to_string(rec).expect("cache record must serialize");
                writeln!(out, "{line}")?;
            }
            out.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        *file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        entries.clear();
        for rec in kept {
            entries.insert(rec.digest, rec.metrics);
        }
        *self.last_compact.lock().unwrap_or_else(|e| e.into_inner()) = Some(stats);
        Ok(stats)
    }

    /// What the most recent [`ResultCache::compact`] on this handle did
    /// (`None` if it never ran). The compaction performed at open by
    /// `PUNO_RESULT_CACHE_COMPACT` lands here too, so a sweep can report
    /// maintenance it did not itself trigger.
    pub fn last_compact(&self) -> Option<CompactStats> {
        *self.last_compact.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fold the persisted cost observations into a [`CostModel`].
    pub fn load_costs(&self) -> CostModel {
        let mut model = CostModel::default();
        if let Ok(text) = std::fs::read_to_string(self.costs_path()) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                if let Ok(rec) = serde_json::from_str::<CostRecord>(line) {
                    model.observe(
                        &rec.workload,
                        &rec.mechanism,
                        rec.tx_per_node,
                        rec.wall_secs,
                    );
                }
            }
        }
        model
    }

    /// Append cost observations from a finished sweep.
    pub fn append_costs(&self, records: &[CostRecord]) {
        if records.is_empty() {
            return;
        }
        let mut out = String::new();
        for rec in records {
            let line = serde_json::to_string(rec).expect("cost record must serialize");
            out.push_str(&line);
            out.push('\n');
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.costs_path())
        {
            let _ = f.write_all(out.as_bytes());
        }
    }
}

/// The process-wide cache configured by the `PUNO_RESULT_CACHE` environment
/// variable (a directory path; unset, empty, `0`, or `off` disables it).
/// Resolved once per process: scripts set the variable before launch. With
/// `PUNO_RESULT_CACHE_COMPACT` additionally set (non-empty, not `0`/`off`),
/// the persisted file is compacted at open — corrupt, stale-version, and
/// superseded records are rewritten away (summary on stderr).
pub fn global_cache() -> Option<Arc<ResultCache>> {
    static CACHE: OnceLock<Option<Arc<ResultCache>>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let dir = std::env::var("PUNO_RESULT_CACHE").ok()?;
            let dir = dir.trim();
            if dir.is_empty() || dir == "0" || dir.eq_ignore_ascii_case("off") {
                return None;
            }
            match ResultCache::open(Path::new(dir)) {
                Ok(cache) => {
                    if env_flag("PUNO_RESULT_CACHE_COMPACT") {
                        match cache.compact() {
                            Ok(c) => eprintln!(
                                "result cache compacted: {} kept, {} corrupt, {} stale, \
                                 {} duplicate dropped",
                                c.kept, c.dropped_corrupt, c.dropped_stale, c.dropped_duplicate
                            ),
                            Err(e) => {
                                eprintln!("warning: result cache compaction failed: {e}")
                            }
                        }
                    }
                    Some(Arc::new(cache))
                }
                Err(e) => {
                    eprintln!("warning: PUNO_RESULT_CACHE={dir} unusable ({e}); caching disabled");
                    None
                }
            }
        })
        .clone()
}

/// Truthy-env helper: set, non-empty, and not `0`/`off`.
fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("off")
        }
        Err(_) => false,
    }
}

/// Per-(workload, mechanism) cost estimator for sweep job ordering. Learned
/// observations dominate; cells never seen before fall back to a
/// parameter-derived heuristic (expected transactional operations per run),
/// scaled into pseudo-seconds so mixed observed/heuristic queues still
/// order sensibly. Only *relative* order matters to the scheduler.
#[derive(Clone, Debug, Default)]
pub struct CostModel {
    /// (workload, mechanism) -> (sum of per-transaction wall secs, count).
    per_tx: HashMap<(String, String), (f64, u64)>,
}

/// Rough host seconds per simulated transactional operation (heuristic
/// fallback scale; commensurate with observed costs only to first order).
const HEURISTIC_SECS_PER_OP: f64 = 2e-6;

impl CostModel {
    /// Record one observed cell wall-clock.
    pub fn observe(&mut self, workload: &str, mechanism: &str, tx_per_node: u32, wall_secs: f64) {
        if tx_per_node == 0 || !wall_secs.is_finite() || wall_secs <= 0.0 {
            return;
        }
        let entry = self
            .per_tx
            .entry((workload.to_string(), mechanism.to_string()))
            .or_insert((0.0, 0));
        entry.0 += wall_secs / tx_per_node as f64;
        entry.1 += 1;
    }

    /// Estimated wall-clock for one cell, in (pseudo-)seconds.
    pub fn estimate(&self, workload: &str, mechanism: &str, params: &WorkloadParams) -> f64 {
        let key = (workload.to_string(), mechanism.to_string());
        if let Some(&(sum, n)) = self.per_tx.get(&key) {
            if n > 0 {
                return (sum / n as f64) * params.tx_per_node as f64;
            }
        }
        Self::heuristic(params)
    }

    /// Parameter-derived fallback: expected transactional + non-transactional
    /// operations per node-run, scaled to pseudo-seconds.
    fn heuristic(params: &WorkloadParams) -> f64 {
        let weight_sum: f64 = params
            .static_txs
            .iter()
            .map(|t| t.weight)
            .sum::<f64>()
            .max(1e-9);
        let ops_per_tx: f64 = params
            .static_txs
            .iter()
            .map(|t| {
                let reads = (t.reads.0 + t.reads.1) as f64 / 2.0;
                let writes = (t.writes.0 + t.writes.1) as f64 / 2.0;
                t.weight * (reads + writes)
            })
            .sum::<f64>()
            / weight_sum;
        let ops = params.tx_per_node as f64 * (ops_per_tx + params.non_tx_accesses as f64);
        ops * HEURISTIC_SECS_PER_OP
    }

    pub fn observation_count(&self) -> u64 {
        self.per_tx.values().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::Mechanism;
    use crate::run::run_workload;
    use puno_workloads::WorkloadId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("puno-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let d = cell_digest(&config, &params, 42);
        assert_eq!(d, cell_digest(&config, &params, 42), "digest must be pure");

        // Every component of the cell identity must perturb the digest.
        let mut seen = vec![d];
        seen.push(cell_digest(&config, &params, 43));
        seen.push(cell_digest(
            &SystemConfig::paper(Mechanism::Puno),
            &params,
            42,
        ));
        seen.push(cell_digest(
            &config,
            &WorkloadId::Ssca2.params().scaled(0.1),
            42,
        ));
        seen.push(cell_digest(
            &config,
            &WorkloadId::Kmeans.params().scaled(0.05),
            42,
        ));
        let mut cfg2 = config;
        cfg2.commit_latency += 1;
        seen.push(cell_digest(&cfg2, &params, 42));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "digest collision: {seen:?}");
    }

    #[test]
    fn store_then_lookup_roundtrips_bit_identically() {
        let dir = temp_dir("roundtrip");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);

        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.lookup(digest).is_none());
        cache.store(digest, 0, 9, &metrics);
        // Same process, memory-served.
        let replay = cache.lookup(digest).expect("stored cell must hit");
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&metrics).unwrap(),
        );
        // Fresh open: disk-served (a new process would see this).
        let reopened = ResultCache::open(&dir).unwrap();
        let replay = reopened.lookup(digest).expect("persisted cell must hit");
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&metrics).unwrap(),
        );
        assert_eq!(reopened.stats().entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_is_idempotent_per_digest() {
        let dir = temp_dir("idempotent");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(digest, 0, 9, &metrics);
        cache.store(digest, 0, 9, &metrics);
        cache.store(digest, 0, 9, &metrics);
        assert_eq!(cache.stats().stores, 1);
        let lines = std::fs::read_to_string(ResultCache::results_path(&dir))
            .unwrap()
            .lines()
            .count();
        assert_eq!(lines, 1, "duplicate digests must not grow the file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_skipped_on_load() {
        let dir = temp_dir("torn");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.store(digest, 0, 9, &metrics);
        }
        // Simulate a crash mid-append.
        let path = ResultCache::results_path(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"digest\": 123, \"workl");
        std::fs::write(&path, text).unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.lookup(digest).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_skipped_counted_and_compacted_away() {
        let dir = temp_dir("midfile");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let m1 = run_workload(Mechanism::Baseline, &params, 9);
        let m2 = run_workload(Mechanism::Baseline, &params, 10);
        let d1 = cell_digest(&config, &params, 9);
        let d2 = cell_digest(&config, &params, 10);
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.store(d1, 0, 9, &m1);
            cache.store(d2, 0, 10, &m2);
        }
        // Corrupt the FIRST record in place: the tampered line still parses
        // as JSON, so only the content checksum can catch it.
        let path = ResultCache::results_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 2);
        let tampered = lines[0].replace("\"seed\":9", "\"seed\":8");
        assert_ne!(tampered, lines[0], "tamper site must exist");
        lines[0] = tampered;
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.corrupt_skipped, 1, "mid-file corruption must count");
        assert_eq!(stats.entries, 1);
        assert!(
            cache.lookup(d1).is_none(),
            "a checksum-failed record must never be served"
        );
        assert!(cache.lookup(d2).is_some(), "the healthy record survives");

        // Compaction drops the corrupt line for good.
        let c = cache.compact().unwrap();
        assert_eq!(c.kept, 1);
        assert_eq!(c.dropped_corrupt, 1);
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.stats().corrupt_skipped, 0);
        assert_eq!(reopened.stats().entries, 1);
        assert!(reopened.lookup(d2).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_engine_version_records_are_skipped_and_compacted_away() {
        let dir = temp_dir("stale");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.store(digest, 0, 9, &metrics);
        }
        // Craft a record from a future engine version with a checksum that
        // verifies for its own content: it must be skipped as stale, not
        // corrupt (and never served).
        let mut rec = CacheRecord::build(0xDEAD, 0, 9, &metrics);
        rec.engine_version = ENGINE_VERSION + 1;
        rec.checksum = record_checksum(
            rec.digest,
            rec.prefix_digest,
            rec.engine_version,
            &rec.workload,
            &rec.mechanism,
            rec.seed,
            &serde_json::to_string(&rec.metrics).unwrap(),
        );
        let path = ResultCache::results_path(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&serde_json::to_string(&rec).unwrap());
        text.push('\n');
        std::fs::write(&path, text).unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.stale_skipped, 1);
        assert_eq!(stats.corrupt_skipped, 0);
        assert!(cache.lookup(0xDEAD).is_none());
        let c = cache.compact().unwrap();
        assert_eq!(c.dropped_stale, 1);
        assert_eq!(c.kept, 1);
        assert_eq!(ResultCache::open(&dir).unwrap().stats().stale_skipped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_is_idempotent_and_preserves_hits() {
        let dir = temp_dir("compact-idem");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(digest, 0, 9, &metrics);
        let first = cache.compact().unwrap();
        assert_eq!(first.kept, 1);
        let again = cache.compact().unwrap();
        assert_eq!(again, first, "re-compacting a clean file changes nothing");
        // The same handle still serves (in-memory map refreshed) and the
        // re-pointed append handle still stores.
        assert!(cache.lookup(digest).is_some());
        let m2 = run_workload(Mechanism::Baseline, &params, 11);
        cache.store(cell_digest(&config, &params, 11), 0, 11, &m2);
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.stats().entries, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        let dir = temp_dir("poison");
        let params = WorkloadId::Ssca2.params().scaled(0.05);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let metrics = run_workload(Mechanism::Baseline, &params, 9);
        let digest = cell_digest(&config, &params, 9);
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(digest, 0, 9, &metrics);
        // Poison both mutexes the way a panicking worker would.
        for _ in 0..2 {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _entries = cache.entries.lock().unwrap();
                let _file = cache.file.lock();
                panic!("worker died holding the cache locks");
            }));
        }
        assert!(cache.entries.is_poisoned(), "test must actually poison");
        // Lookups, stores, stats, and compaction all still function.
        assert!(cache.lookup(digest).is_some());
        let m2 = run_workload(Mechanism::Baseline, &params, 12);
        let d2 = cell_digest(&config, &params, 12);
        cache.store(d2, 0, 12, &m2);
        assert!(cache.lookup(d2).is_some());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.compact().unwrap().kept, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cost_model_learns_per_transaction_costs() {
        let mut model = CostModel::default();
        let params_small = WorkloadId::Genome.params().scaled(0.05);
        let params_large = WorkloadId::Genome.params().scaled(0.5);
        // Heuristic fallback scales with tx_per_node.
        let h_small = model.estimate("genome", "baseline", &params_small);
        let h_large = model.estimate("genome", "baseline", &params_large);
        assert!(h_large > h_small);

        // An observation at one scale predicts proportionally at another.
        model.observe("genome", "baseline", params_small.tx_per_node, 2.0);
        let per_tx = 2.0 / params_small.tx_per_node as f64;
        let predicted = model.estimate("genome", "baseline", &params_large);
        let expected = per_tx * params_large.tx_per_node as f64;
        assert!((predicted - expected).abs() < 1e-9);
        assert_eq!(model.observation_count(), 1);
    }

    #[test]
    fn costs_persist_through_the_cache_dir() {
        let dir = temp_dir("costs");
        let cache = ResultCache::open(&dir).unwrap();
        cache.append_costs(&[CostRecord {
            workload: "genome".into(),
            mechanism: "puno".into(),
            tx_per_node: 100,
            wall_secs: 3.0,
        }]);
        let model = ResultCache::open(&dir).unwrap().load_costs();
        assert_eq!(model.observation_count(), 1);
        let params = WorkloadId::Genome.params();
        let est = model.estimate("genome", "puno", &params);
        assert!((est - 0.03 * params.tx_per_node as f64).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
