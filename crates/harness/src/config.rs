//! System configuration (the paper's Table II plus simulator knobs).

use crate::mechanism::Mechanism;
use puno_coherence::directory::DirConfig;
use puno_coherence::l1::L1Config;
use puno_core::PunoConfig;
use puno_htm::backoff::BackoffConfig;
use puno_htm::unit::AbortTiming;
use puno_noc::{LatencyModel, Mesh, NocConfig};

/// Full system configuration.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    pub mesh: Mesh,
    pub noc: NocConfig,
    pub l1: L1Config,
    pub dir: DirConfig,
    pub abort_timing: AbortTiming,
    pub backoff: BackoffConfig,
    pub puno: PunoConfig,
    pub mechanism: Mechanism,
    /// Signature-based conflict detection ablation: when set, HTM units
    /// answer conflict checks from Bloom signatures of this geometry
    /// (LogTM-SE style) instead of exact sets, adding alias-induced
    /// conflicts. `None` (default) is the paper's precise baseline.
    pub signatures: Option<puno_htm::SignatureConfig>,
    /// Commit pipeline drain cost.
    pub commit_latency: u64,
    /// Safety valve: a run exceeding this many cycles fails with a
    /// [`crate::error::RunError::Livelock`] (a protocol livelock, not a
    /// slow workload).
    pub max_cycles: u64,
    /// Forward-progress watchdog: every this-many cycles the run loop
    /// samples system-wide commits + retired nodes; a window with no change
    /// fails the run with a `Livelock` error and a NACK wait-for dump long
    /// before `max_cycles` burns down. Must comfortably exceed the longest
    /// legitimate commit-to-commit gap.
    pub watchdog_window: u64,
}

impl SystemConfig {
    /// The paper's Table II configuration: 16 nodes on a 4x4 mesh, 32 KB
    /// 4-way L1, 8 MB shared L2 (20-cycle banks), MESI static-bank
    /// directory, 200-cycle memory, 4-stage VC routers, 16-entry P-Buffer,
    /// 32-entry TxLB, fixed 20-cycle nack backoff.
    pub fn paper(mechanism: Mechanism) -> Self {
        Self::with_mesh(mechanism, Mesh::paper())
    }

    /// The Table II configuration on an arbitrary mesh: everything except
    /// the geometry (and the topology-derived notification allowance) is
    /// held at the paper's values, so big-mesh scaling runs differ from
    /// `paper()` in node count alone.
    pub fn with_mesh(mechanism: Mechanism, mesh: Mesh) -> Self {
        let noc = NocConfig::default();
        let backoff = BackoffConfig {
            round_trip_allowance: LatencyModel::new(mesh, noc).round_trip_allowance(),
            ..BackoffConfig::default()
        };
        Self {
            mesh,
            noc,
            l1: L1Config::default(),
            dir: DirConfig::default(),
            abort_timing: AbortTiming::default(),
            backoff,
            puno: PunoConfig::default(),
            mechanism,
            signatures: None,
            commit_latency: 5,
            max_cycles: 200_000_000,
            watchdog_window: 25_000_000,
        }
    }

    /// The paper configuration scaled to an 8x8 mesh (64 nodes) — the
    /// regime where directory-protocol mismatch effects grow; practical to
    /// sweep with the intra-run parallel executor.
    pub fn mesh8(mechanism: Mechanism) -> Self {
        Self::with_mesh(mechanism, Mesh::new(8, 8))
    }

    /// The paper configuration scaled to a 16x16 mesh (256 nodes).
    pub fn mesh16(mechanism: Mechanism) -> Self {
        Self::with_mesh(mechanism, Mesh::new(16, 16))
    }

    /// A small 2x2 system for fast unit/property tests.
    ///
    /// Note: deliberately built by mutating `paper()` rather than via
    /// `with_mesh`, so the notification allowance keeps the paper's
    /// 4x4-derived value (goldens depend on it).
    pub fn tiny(mechanism: Mechanism) -> Self {
        let mut c = Self::paper(mechanism);
        c.mesh = Mesh::new(2, 2);
        c.puno.pbuffer_entries = 4;
        c
    }

    pub fn nodes(&self) -> u16 {
        self.mesh.nodes() as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_ii() {
        let c = SystemConfig::paper(Mechanism::Baseline);
        assert_eq!(c.nodes(), 16);
        assert_eq!(c.l1.sets * c.l1.ways * 64, 32 * 1024);
        assert_eq!(c.dir.l2_latency, 20);
        assert_eq!(c.dir.mem_latency, 200);
        assert_eq!(c.noc.pipeline_depth, 4);
        assert_eq!(c.backoff.fixed_nack, 20);
        assert_eq!(c.puno.pbuffer_entries, 16);
        assert_eq!(c.puno.txlb_entries, 32);
    }

    #[test]
    fn notification_allowance_derived_from_topology() {
        let c = SystemConfig::paper(Mechanism::Puno);
        // 2 x mean control latency on the 4x4 mesh (see puno-noc tests).
        assert_eq!(c.backoff.round_trip_allowance, 30);
    }

    #[test]
    fn tiny_config_shrinks_mesh() {
        let c = SystemConfig::tiny(Mechanism::Puno);
        assert_eq!(c.nodes(), 4);
    }

    #[test]
    fn big_meshes_scale_nodes_and_rederive_allowance() {
        let c8 = SystemConfig::mesh8(Mechanism::Puno);
        assert_eq!(c8.nodes(), 64);
        let c16 = SystemConfig::mesh16(Mechanism::Puno);
        assert_eq!(c16.nodes(), 256);
        // The notification allowance tracks the topology's round trip, so
        // bigger meshes must grant strictly more than the 4x4's 30 cycles.
        let c4 = SystemConfig::paper(Mechanism::Puno);
        assert!(c8.backoff.round_trip_allowance > c4.backoff.round_trip_allowance);
        assert!(c16.backoff.round_trip_allowance > c8.backoff.round_trip_allowance);
        // Everything else stays at Table II values.
        assert_eq!(c8.dir.l2_latency, c4.dir.l2_latency);
        assert_eq!(c8.commit_latency, c4.commit_latency);
    }
}
