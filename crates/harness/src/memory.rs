//! The logical memory image.
//!
//! The protocol guarantees a single writable copy of each line; the
//! simulator therefore keeps one logical 64-bit value per line (enough for
//! the serializability oracle — transactions increment counters and the
//! committed sums must add up) instead of moving byte payloads through the
//! network. Eager version management writes in place at store time; aborts
//! restore values from the undo log.

use puno_sim::{LineAddr, LineMap};

/// The memory interface node logic is written against. The serial loop
/// passes the [`MemoryImage`] itself; the parallel executor passes a
/// copy-on-write overlay so workers can run node steps concurrently and
/// publish their line writes at the epoch merge. Both monomorphize —
/// the single-threaded path compiles down to the direct image calls.
pub trait MemOps {
    /// Read a line's current value (zero-initialized).
    fn read(&self, addr: LineAddr) -> u64;
    /// Write a line in place (eager versioning).
    fn write(&mut self, addr: LineAddr, value: u64);
    /// Apply an undo-log rollback (entries applied in iteration order).
    fn rollback<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = puno_htm::log::LogEntry>,
    {
        for e in entries {
            self.write(e.addr, e.old_value);
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct MemoryImage {
    values: LineMap<LineAddr, u64>,
}

impl MemoryImage {
    pub fn new() -> Self {
        Self {
            values: LineMap::with_capacity(4096),
        }
    }

    /// Read a line's current value (zero-initialized).
    pub fn read(&self, addr: LineAddr) -> u64 {
        self.values.get(addr).copied().unwrap_or(0)
    }

    /// Write a line in place (eager versioning).
    pub fn write(&mut self, addr: LineAddr, value: u64) {
        self.values.insert(addr, value);
    }

    /// Apply an undo-log rollback.
    pub fn rollback(&mut self, entries: impl IntoIterator<Item = puno_htm::log::LogEntry>) {
        for e in entries {
            self.write(e.addr, e.old_value);
        }
    }

    pub fn touched_lines(&self) -> usize {
        self.values.len()
    }

    /// Zero the whole image in place (O(1) generation bump), keeping the
    /// table allocation. Equivalent to a fresh image.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

impl MemOps for MemoryImage {
    fn read(&self, addr: LineAddr) -> u64 {
        MemoryImage::read(self, addr)
    }

    fn write(&mut self, addr: LineAddr, value: u64) {
        MemoryImage::write(self, addr, value);
    }

    fn rollback<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = puno_htm::log::LogEntry>,
    {
        MemoryImage::rollback(self, entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_htm::log::LogEntry;

    #[test]
    fn zero_initialized() {
        let m = MemoryImage::new();
        assert_eq!(m.read(LineAddr(42)), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = MemoryImage::new();
        m.write(LineAddr(1), 7);
        assert_eq!(m.read(LineAddr(1)), 7);
    }

    #[test]
    fn rollback_restores() {
        let mut m = MemoryImage::new();
        m.write(LineAddr(1), 5);
        // tx: 5 -> 6 -> 7, logged oldest-first, rolled back newest-first.
        let log = vec![
            LogEntry {
                addr: LineAddr(1),
                old_value: 6,
            },
            LogEntry {
                addr: LineAddr(1),
                old_value: 5,
            },
        ];
        m.write(LineAddr(1), 7);
        m.rollback(log);
        assert_eq!(m.read(LineAddr(1)), 5);
    }
}
