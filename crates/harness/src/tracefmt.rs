//! Trace stream formats: JSONL parsing/validation and the Chrome-trace
//! (Perfetto-loadable) exporter behind the `trace_export` binary.
//!
//! The simulator's JSONL sink writes one [`TraceRecord`] object per line.
//! This module turns such a stream back into records ([`parse_jsonl`]),
//! checks it against a channel filter ([`validate_jsonl`] — the CI traced
//! smoke), and converts it into the Chrome `traceEvents` JSON that
//! `chrome://tracing` and Perfetto load directly ([`chrome_trace`]):
//! transaction lifecycles become complete ("X") slices from `tx_begin` to
//! `tx_commit`/`tx_abort`, everything else becomes an instant event, and
//! the output is sorted so timestamps are monotonically non-decreasing.

use puno_sim::{ChannelMask, TraceChannel, TraceEvent, TraceRecord};
use serde::Value;
use std::collections::BTreeMap;

/// What [`validate_jsonl`] learned about a stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Parsed (non-empty) lines.
    pub lines: usize,
    /// Records per channel, indexed by [`TraceChannel::index`].
    pub per_channel: [u64; TraceChannel::ALL.len()],
    /// Cycle range covered by the stream (0..=0 when empty).
    pub first_cycle: u64,
    pub last_cycle: u64,
}

impl JsonlSummary {
    pub fn count(&self, ch: TraceChannel) -> u64 {
        self.per_channel[ch.index()]
    }
}

/// Parse a JSONL trace stream (one record per line; blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(line)
            .map_err(|e| format!("line {}: unparseable trace record: {e:?}", i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

/// Validate a JSONL trace stream: every line must parse, every record's
/// tagged channel must match its event's channel, every channel must be in
/// `allowed`, and cycles must be non-decreasing (the writer appends in
/// event-loop order). Returns per-channel counts on success.
pub fn validate_jsonl(text: &str, allowed: ChannelMask) -> Result<JsonlSummary, String> {
    let records = parse_jsonl(text)?;
    let mut summary = JsonlSummary {
        lines: records.len(),
        ..JsonlSummary::default()
    };
    let mut prev = 0u64;
    for (i, rec) in records.iter().enumerate() {
        let ch = rec.event.channel();
        if rec.channel != ch {
            return Err(format!(
                "record {}: tagged channel {:?} but event {} is on {:?}",
                i + 1,
                rec.channel,
                rec.event.name(),
                ch
            ));
        }
        if !allowed.contains(ch) {
            return Err(format!(
                "record {}: channel {:?} not in filter {}",
                i + 1,
                ch,
                allowed.spec()
            ));
        }
        if rec.cycle < prev {
            return Err(format!(
                "record {}: cycle {} goes backwards (previous {prev})",
                i + 1,
                rec.cycle
            ));
        }
        prev = rec.cycle;
        summary.per_channel[ch.index()] += 1;
        if summary.lines > 0 && i == 0 {
            summary.first_cycle = rec.cycle;
        }
        summary.last_cycle = rec.cycle;
    }
    Ok(summary)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn chrome_event(
    name: String,
    ph: &str,
    ts: u64,
    pid: u64,
    tid: u64,
    extra: Vec<(&str, Value)>,
) -> Value {
    let mut pairs = vec![
        ("name", Value::Str(name)),
        ("ph", Value::Str(ph.to_string())),
        ("ts", Value::U64(ts)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
    ];
    pairs.extend(extra);
    obj(pairs)
}

/// Convert trace records into Chrome-trace JSON (the object form with a
/// `traceEvents` array). One "process" per node; one "thread" per trace
/// channel. Transaction lifecycles are rendered as complete slices; every
/// other record becomes an instant with the full event as `args`.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    // (ts, seq) keyed so the output is sorted and stable.
    let mut events: Vec<(u64, Value)> = Vec::new();
    // node -> cycle the currently running transaction began at.
    let mut open: BTreeMap<u16, u64> = BTreeMap::new();
    for rec in records {
        let node = rec.event.node();
        let tid = rec.channel.index() as u64;
        match rec.event {
            TraceEvent::HtmBegin { .. } => {
                open.insert(node.0, rec.cycle);
            }
            TraceEvent::HtmCommit { .. } | TraceEvent::HtmAbort { .. } => {
                let args = serde::Serialize::to_json_value(&rec.event);
                if let Some(start) = open.remove(&node.0) {
                    events.push((
                        start,
                        chrome_event(
                            rec.event.name().to_string(),
                            "X",
                            start,
                            node.0 as u64,
                            tid,
                            vec![
                                ("dur", Value::U64(rec.cycle.saturating_sub(start))),
                                ("args", args),
                            ],
                        ),
                    ));
                } else {
                    // Terminal without a begin in the stream (ring wrapped
                    // or filtered): keep it visible as an instant.
                    events.push((
                        rec.cycle,
                        chrome_event(
                            rec.event.name().to_string(),
                            "i",
                            rec.cycle,
                            node.0 as u64,
                            tid,
                            vec![("s", Value::Str("t".to_string())), ("args", args)],
                        ),
                    ));
                }
            }
            _ => {
                let args = serde::Serialize::to_json_value(&rec.event);
                events.push((
                    rec.cycle,
                    chrome_event(
                        rec.event.name().to_string(),
                        "i",
                        rec.cycle,
                        node.0 as u64,
                        tid,
                        vec![("s", Value::Str("t".to_string())), ("args", args)],
                    ),
                ));
            }
        }
    }
    // A transaction still open at the end of the stream has no terminal
    // record; render its begin as an instant so nothing is dropped.
    for (&node, &start) in &open {
        events.push((
            start,
            chrome_event(
                "tx_begin".to_string(),
                "i",
                start,
                node as u64,
                TraceChannel::Htm.index() as u64,
                vec![("s", Value::Str("t".to_string()))],
            ),
        ));
    }
    events.sort_by_key(|(ts, _)| *ts);
    let doc = obj(vec![
        (
            "traceEvents",
            Value::Array(events.into_iter().map(|(_, v)| v).collect()),
        ),
        ("displayTimeUnit", Value::Str("ns".to_string())),
    ]);
    serde::to_json_string(&doc, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_sim::{LineAddr, NodeId, TxId};

    fn rec(cycle: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            cycle,
            channel: event.channel(),
            event,
        }
    }

    fn sample() -> Vec<TraceRecord> {
        vec![
            rec(
                1,
                TraceEvent::HtmBegin {
                    node: NodeId(3),
                    tx: TxId(7),
                    static_tx: puno_sim::StaticTxId(0),
                    timestamp: puno_sim::Timestamp(48),
                    attempt: 0,
                },
            ),
            rec(
                2,
                TraceEvent::NocInject {
                    src: NodeId(3),
                    dst: NodeId(0),
                    vnet: 0,
                    flits: 1,
                },
            ),
            rec(
                9,
                TraceEvent::HtmCommit {
                    node: NodeId(3),
                    tx: TxId(7),
                    length: 8,
                },
            ),
        ]
    }

    fn to_jsonl(records: &[TraceRecord]) -> String {
        records
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect()
    }

    #[test]
    fn jsonl_round_trips() {
        let records = sample();
        let parsed = parse_jsonl(&to_jsonl(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn validation_checks_filter_and_order() {
        let text = to_jsonl(&sample());
        let summary = validate_jsonl(&text, ChannelMask::ALL).unwrap();
        assert_eq!(summary.lines, 3);
        assert_eq!(summary.count(TraceChannel::Htm), 2);
        assert_eq!(summary.count(TraceChannel::Noc), 1);
        assert_eq!((summary.first_cycle, summary.last_cycle), (1, 9));

        let htm_only = ChannelMask::NONE.with(TraceChannel::Htm);
        let err = validate_jsonl(&text, htm_only).unwrap_err();
        assert!(err.contains("not in filter"), "{err}");

        let mut backwards = sample();
        backwards[2].cycle = 0;
        let err = validate_jsonl(&to_jsonl(&backwards), ChannelMask::ALL).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn chrome_trace_is_sorted_and_renders_slices() {
        let json = chrome_trace(&sample());
        let doc: Value = serde_json::from_str(&json).expect("exporter must emit valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2, "begin+commit fold into one slice");
        let mut prev = 0u64;
        let mut slices = 0;
        for ev in events {
            let ts = match ev.get("ts").unwrap() {
                Value::U64(n) => *n,
                other => panic!("ts must be unsigned, got {other:?}"),
            };
            assert!(ts >= prev, "timestamps must be non-decreasing");
            prev = ts;
            if matches!(ev.get("ph"), Some(Value::Str(ph)) if ph == "X") {
                slices += 1;
                assert_eq!(ev.get("dur"), Some(&Value::U64(8)));
            }
        }
        assert_eq!(slices, 1);
    }

    #[test]
    fn unmatched_terminal_degrades_to_instant() {
        let lone = vec![rec(
            4,
            TraceEvent::HtmAbort {
                node: NodeId(1),
                tx: TxId(2),
                cause: puno_sim::AbortCauseCode::TxReadConflict,
                by: Some(NodeId(0)),
                addr: Some(LineAddr(0x10)),
                discarded: 3,
            },
        )];
        let json = chrome_trace(&lone);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph"), Some(&Value::Str("i".to_string())));
    }
}
