//! Per-transaction telemetry aggregated from the typed trace stream.
//!
//! A [`TelemetryCollector`] consumes the same [`TraceEvent`]s the tracer
//! sinks and folds them into three reports the paper's analysis keeps
//! asking for in aggregate form:
//!
//! * an **abort-blame matrix** — who aborted whom, built from the aborter
//!   attribution carried by `HtmAbort` events (cross-checkable against the
//!   `FalseAbortOracle` and `HtmStats` abort counts),
//! * a **per-line contention heat table** — the top-N hottest lines by
//!   NACKs + conflict aborts, and
//! * a **windowed time series** — commits/aborts/NACKs/flits per cycle
//!   epoch, size-bounded by doubling the epoch width whenever the sample
//!   count would exceed the configured maximum.
//!
//! Everything here is a pure function of the (deterministic) event stream,
//! so the serialized [`TelemetryReport`] is bit-identical across runs and
//! safe to embed in `RunMetrics`.

use puno_sim::{ChannelMask, Cycle, Cycles, TraceChannel, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Size bounds and epoch width for the collector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Initial cycles per time-series epoch (doubles under pressure).
    pub epoch_cycles: Cycles,
    /// Maximum retained epoch samples; exceeding it merges adjacent pairs
    /// and doubles the epoch width.
    pub max_epochs: usize,
    /// Rows kept in the contention heat table.
    pub heat_top_n: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            epoch_cycles: 8192,
            max_epochs: 64,
            heat_top_n: 16,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct NodeAgg {
    commits: u64,
    aborts: u64,
    retries: u64,
    running_cycles: u64,
    stalled_cycles: u64,
    discarded_cycles: u64,
}

/// Folds trace events into the aggregates of [`TelemetryReport`].
#[derive(Debug)]
pub struct TelemetryCollector {
    config: TelemetryConfig,
    /// Current epoch width (>= `config.epoch_cycles`; doubles).
    epoch_cycles: Cycles,
    epochs: Vec<EpochSample>,
    /// (aborter, victim) -> count.
    blame: BTreeMap<(u16, u16), u64>,
    /// line addr -> (nacks, conflict aborts).
    heat: BTreeMap<u64, (u64, u64)>,
    nodes: BTreeMap<u16, NodeAgg>,
}

impl TelemetryCollector {
    pub fn new(config: TelemetryConfig) -> Self {
        assert!(config.epoch_cycles > 0, "epoch width must be positive");
        assert!(config.max_epochs >= 2, "need at least two epoch samples");
        Self {
            config,
            epoch_cycles: config.epoch_cycles,
            epochs: Vec::new(),
            blame: BTreeMap::new(),
            heat: BTreeMap::new(),
            nodes: BTreeMap::new(),
        }
    }

    /// The channels the collector needs to see (`Htm` for lifecycle and
    /// blame, `Noc` for the flit time series).
    pub fn channels() -> ChannelMask {
        ChannelMask::NONE
            .with(TraceChannel::Htm)
            .with(TraceChannel::Noc)
    }

    fn epoch_mut(&mut self, cycle: Cycle) -> &mut EpochSample {
        let mut idx = (cycle / self.epoch_cycles) as usize;
        while idx >= self.config.max_epochs {
            self.coalesce();
            idx = (cycle / self.epoch_cycles) as usize;
        }
        if idx >= self.epochs.len() {
            self.epochs.resize(idx + 1, EpochSample::default());
        }
        &mut self.epochs[idx]
    }

    /// Merge adjacent epoch pairs and double the width (deterministic:
    /// depends only on the sample vector).
    fn coalesce(&mut self) {
        let merged: Vec<EpochSample> = self
            .epochs
            .chunks(2)
            .map(|pair| {
                let mut acc = pair[0];
                if let Some(b) = pair.get(1) {
                    acc.commits += b.commits;
                    acc.aborts += b.aborts;
                    acc.nacks += b.nacks;
                    acc.flits += b.flits;
                }
                acc
            })
            .collect();
        self.epochs = merged;
        self.epoch_cycles *= 2;
    }

    /// Fold one event (cheap; called for every unfiltered event).
    pub fn observe(&mut self, cycle: Cycle, event: &TraceEvent) {
        match *event {
            TraceEvent::HtmCommit { node, length, .. } => {
                self.epoch_mut(cycle).commits += 1;
                let agg = self.nodes.entry(node.0).or_default();
                agg.commits += 1;
                agg.running_cycles += length;
            }
            TraceEvent::HtmAbort {
                node,
                by,
                addr,
                discarded,
                ..
            } => {
                self.epoch_mut(cycle).aborts += 1;
                let agg = self.nodes.entry(node.0).or_default();
                agg.aborts += 1;
                agg.discarded_cycles += discarded;
                if let Some(aborter) = by {
                    *self.blame.entry((aborter.0, node.0)).or_insert(0) += 1;
                }
                if let Some(addr) = addr {
                    self.heat.entry(addr.0).or_insert((0, 0)).1 += 1;
                }
            }
            TraceEvent::HtmNackSent { addr, .. } => {
                self.epoch_mut(cycle).nacks += 1;
                self.heat.entry(addr.0).or_insert((0, 0)).0 += 1;
            }
            TraceEvent::HtmStall { node, backoff, .. } => {
                let agg = self.nodes.entry(node.0).or_default();
                agg.retries += 1;
                agg.stalled_cycles += backoff;
            }
            TraceEvent::NocInject { flits, .. } => {
                self.epoch_mut(cycle).flits += flits as u64;
            }
            _ => {}
        }
    }

    /// Assemble the serializable report.
    pub fn report(&self) -> TelemetryReport {
        let blame = self
            .blame
            .iter()
            .map(|(&(aborter, victim), &count)| BlameEntry {
                aborter,
                victim,
                count,
            })
            .collect();
        let mut heat: Vec<LineHeat> = self
            .heat
            .iter()
            .map(|(&addr, &(nacks, aborts))| LineHeat {
                addr,
                nacks,
                aborts,
            })
            .collect();
        // Hottest first: conflicts descending, address ascending for ties.
        heat.sort_by(|a, b| (b.nacks + b.aborts, a.addr).cmp(&(a.nacks + a.aborts, b.addr)));
        heat.truncate(self.config.heat_top_n);
        let nodes = self
            .nodes
            .iter()
            .map(|(&node, agg)| NodeTxSummary {
                node,
                commits: agg.commits,
                aborts: agg.aborts,
                retries: agg.retries,
                running_cycles: agg.running_cycles,
                stalled_cycles: agg.stalled_cycles,
                discarded_cycles: agg.discarded_cycles,
            })
            .collect();
        TelemetryReport {
            epoch_cycles: self.epoch_cycles,
            epochs: self.epochs.clone(),
            blame,
            heat,
            nodes,
        }
    }
}

/// One time-series window: activity within `epoch_cycles` cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochSample {
    pub commits: u64,
    pub aborts: u64,
    pub nacks: u64,
    pub flits: u64,
}

/// One abort-blame matrix cell: `aborter` killed `victim`'s transaction
/// `count` times.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameEntry {
    pub aborter: u16,
    pub victim: u16,
    pub count: u64,
}

/// One contention heat-table row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineHeat {
    pub addr: u64,
    pub nacks: u64,
    pub aborts: u64,
}

/// Per-node transaction lifecycle totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTxSummary {
    pub node: u16,
    pub commits: u64,
    pub aborts: u64,
    pub retries: u64,
    /// Wall cycles of committed attempts (begin -> commit).
    pub running_cycles: u64,
    /// Backoff cycles spent waiting to retry nacked requests.
    pub stalled_cycles: u64,
    /// Execution effort discarded by aborts (Figure 14's D component).
    pub discarded_cycles: u64,
}

/// The serialized telemetry for one run (`RunMetrics::telemetry`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Final epoch width in cycles (>= configured; doubles under pressure).
    pub epoch_cycles: u64,
    pub epochs: Vec<EpochSample>,
    pub blame: Vec<BlameEntry>,
    pub heat: Vec<LineHeat>,
    pub nodes: Vec<NodeTxSummary>,
}

impl TelemetryReport {
    /// Total aborts across the blame matrix (== conflict aborts: injected
    /// and capacity aborts carry no aborter).
    pub fn blame_total(&self) -> u64 {
        self.blame.iter().map(|b| b.count).sum()
    }

    /// Total commits in the time series (== `RunMetrics::committed`).
    pub fn commits_total(&self) -> u64 {
        self.epochs.iter().map(|e| e.commits).sum()
    }

    /// Total aborts in the time series (== `HtmStats::aborts`).
    pub fn aborts_total(&self) -> u64 {
        self.epochs.iter().map(|e| e.aborts).sum()
    }

    /// Human-readable rendering (the `sweep_all --trace` summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "time series: {} epochs x {} cycles (commits/aborts/nacks/flits)",
            self.epochs.len(),
            self.epoch_cycles
        );
        for (i, e) in self.epochs.iter().enumerate() {
            let _ = writeln!(
                out,
                "  [{:>3}] {:>6} / {:>6} / {:>6} / {:>8}",
                i, e.commits, e.aborts, e.nacks, e.flits
            );
        }
        let _ = writeln!(out, "abort blame (aborter -> victim: count):");
        if self.blame.is_empty() {
            let _ = writeln!(out, "  (no conflict aborts)");
        }
        for b in &self.blame {
            let _ = writeln!(
                out,
                "  node {:>2} -> node {:>2}: {}",
                b.aborter, b.victim, b.count
            );
        }
        let _ = writeln!(out, "contention heat (top {} lines):", self.heat.len());
        for h in &self.heat {
            let _ = writeln!(
                out,
                "  line {:#8x}: {:>6} nacks, {:>6} aborts",
                h.addr, h.nacks, h.aborts
            );
        }
        let _ = writeln!(
            out,
            "per-node lifecycle (commits/aborts/retries, running/stalled/discarded cycles):"
        );
        for n in &self.nodes {
            let _ = writeln!(
                out,
                "  node {:>2}: {:>5} / {:>5} / {:>5}, {:>9} / {:>9} / {:>9}",
                n.node,
                n.commits,
                n.aborts,
                n.retries,
                n.running_cycles,
                n.stalled_cycles,
                n.discarded_cycles
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_sim::{LineAddr, NodeId, TxId};

    fn commit(node: u16, length: u64) -> TraceEvent {
        TraceEvent::HtmCommit {
            node: NodeId(node),
            tx: TxId(1),
            length,
        }
    }

    #[test]
    fn epoch_doubling_bounds_the_series() {
        let mut c = TelemetryCollector::new(TelemetryConfig {
            epoch_cycles: 10,
            max_epochs: 4,
            heat_top_n: 4,
        });
        for cycle in (0..400).step_by(10) {
            c.observe(cycle, &commit(0, 5));
        }
        let r = c.report();
        assert!(
            r.epochs.len() <= 4,
            "epochs {} exceed bound",
            r.epochs.len()
        );
        assert_eq!(r.commits_total(), 40);
        assert!(r.epoch_cycles > 10, "width must have doubled");
    }

    #[test]
    fn blame_and_heat_attribute_conflict_aborts() {
        let mut c = TelemetryCollector::new(TelemetryConfig::default());
        let abort = TraceEvent::HtmAbort {
            node: NodeId(2),
            tx: TxId(1),
            cause: puno_sim::AbortCauseCode::TxWriteInvalidation,
            by: Some(NodeId(5)),
            addr: Some(LineAddr(0x40)),
            discarded: 100,
        };
        c.observe(10, &abort);
        c.observe(20, &abort);
        let injected = TraceEvent::HtmAbort {
            node: NodeId(2),
            tx: TxId(1),
            cause: puno_sim::AbortCauseCode::Injected,
            by: None,
            addr: None,
            discarded: 1,
        };
        c.observe(30, &injected);
        let r = c.report();
        assert_eq!(r.blame_total(), 2, "injected abort carries no blame");
        assert_eq!(r.blame[0].aborter, 5);
        assert_eq!(r.blame[0].victim, 2);
        assert_eq!(r.aborts_total(), 3);
        assert_eq!(r.heat[0].addr, 0x40);
        assert_eq!(r.heat[0].aborts, 2);
        assert_eq!(r.nodes[0].discarded_cycles, 201);
    }

    #[test]
    fn heat_table_is_top_n_hottest_first() {
        let mut c = TelemetryCollector::new(TelemetryConfig {
            heat_top_n: 2,
            ..TelemetryConfig::default()
        });
        for (addr, n) in [(1u64, 3), (2, 5), (3, 1)] {
            for _ in 0..n {
                c.observe(
                    0,
                    &TraceEvent::HtmNackSent {
                        node: NodeId(0),
                        requester: NodeId(1),
                        addr: LineAddr(addr),
                        notified: false,
                        mispredict: false,
                    },
                );
            }
        }
        let r = c.report();
        assert_eq!(r.heat.len(), 2);
        assert_eq!(r.heat[0].addr, 2);
        assert_eq!(r.heat[1].addr, 1);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let mut c = TelemetryCollector::new(TelemetryConfig::default());
        c.observe(5, &commit(1, 50));
        c.observe(
            6,
            &TraceEvent::NocInject {
                src: NodeId(0),
                dst: NodeId(1),
                vnet: 0,
                flits: 5,
            },
        );
        let r = c.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
