//! Live sweep observability: a lock-cheap metrics registry plus the sinks
//! that publish it while a sweep is still running.
//!
//! Everything post-hoc stays where it was — [`crate::metrics::HostPerf`] and
//! the telemetry report are the record of a *finished* cell. This module is
//! the in-flight view: the sweep driver and the run loop publish named
//! counters/gauges/histograms into one process-wide [`MetricsRegistry`],
//! and three sinks read it out in the tiny-vector sources→sinks idiom:
//!
//! 1. a Prometheus text-exposition HTTP endpoint on a background thread
//!    (`PUNO_METRICS_ADDR`, `std::net` only, default off),
//! 2. a throttled console heartbeat with cells done/total and an ETA from
//!    the persisted LPT cost model (`PUNO_PROGRESS`, stderr only — stdout
//!    stays byte-identical),
//! 3. the cross-run result warehouse (`PUNO_WAREHOUSE`, see
//!    [`crate::warehouse`]).
//!
//! Determinism contract: the registry is observability-only. Nothing in the
//! simulation reads a metric back, samplers only *copy* host counters out of
//! the running [`crate::System`], and with every sink off the single cost is
//! one relaxed atomic load per would-be publish site ([`global`] returning
//! `None`). The 16-cell golden suite runs with observability on and off and
//! must stay bit-identical either way.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

/// What a metric family is, for the `# TYPE` exposition line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Monotone counter handle. Cloning shares the underlying cell; updates are
/// single relaxed atomics (no registry lock).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous-value gauge handle (an `f64` stored as bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets (ascending); an implicit `+Inf`
    /// bucket follows. Stored per-bucket (non-cumulative); rendering
    /// cumulates, as the exposition format requires.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// Histogram handle with fixed buckets chosen at registration.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    pub fn observe(&self, v: f64) {
        let c = &self.0;
        let idx = c
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(c.bounds.len());
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = c.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match c
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Label sets are normalized (sorted by label name) so one logical
    /// series has one cell regardless of registration order.
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// Registry of named metric families. Registration takes the one lock;
/// handles returned from it update lock-free. Registering the same
/// (name, labels) again returns a handle to the same cell.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Prometheus metric/label-name charset: `[a-zA-Z_:][a-zA-Z0-9_:]*` (labels
/// without the colon).
fn valid_name(name: &str, allow_colon: bool) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == '_' || (allow_colon && first == ':');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':'))
}

fn normalize_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| {
            assert!(valid_name(k, false), "invalid label name {k:?}");
            (k.to_string(), val.to_string())
        })
        .collect();
    v.sort();
    v
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Poison-tolerant registry lock: a panicking worker holding it can at
    /// worst leave a fully-registered family behind, never a torn one.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn family_cell(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        mk: impl FnOnce() -> Series,
    ) -> Series {
        assert!(valid_name(name, true), "invalid metric name {name:?}");
        let key = normalize_labels(labels);
        let mut families = self.lock();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric {name} re-registered as {kind:?}, was {:?}",
            fam.kind
        );
        match fam.series.entry(key).or_insert_with(mk) {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }

    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.family_cell(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Series::Counter(c) => Counter(c),
            _ => unreachable!("counter family holds counter series"),
        }
    }

    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.family_cell(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            Series::Gauge(g) => Gauge(g),
            _ => unreachable!("gauge family holds gauge series"),
        }
    }

    /// `bounds` are ascending finite upper bounds; the `+Inf` bucket is
    /// implicit. Bounds are fixed by the first registration of the family's
    /// first series.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be ascending"
        );
        match self.family_cell(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }))
        }) {
            Series::Histogram(h) => Histogram(h),
            _ => unreachable!("histogram family holds histogram series"),
        }
    }

    /// Render the whole registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` per family, one sample line per
    /// series, histogram series expanded to cumulative `_bucket`/`_sum`/
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let families = self.lock();
        let mut out = String::new();
        for (name, fam) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.as_str()));
            for (labels, series) in fam.series.iter() {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            c.load(Ordering::Relaxed)
                        ));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            fmt_value(f64::from_bits(g.load(Ordering::Relaxed)))
                        ));
                    }
                    Series::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cum += h.buckets[i].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                render_labels(labels, Some(&fmt_value(*bound)))
                            ));
                        }
                        cum += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            render_labels(labels, Some("+Inf"))
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, None),
                            fmt_value(f64::from_bits(h.sum_bits.load(Ordering::Relaxed)))
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, None),
                            h.count.load(Ordering::Relaxed)
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Escape a label value per the exposition format: backslash, double quote,
/// and line feed.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape a HELP string: backslash and line feed (quotes are legal there).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Sample-value formatting: plain `f64` display, with the special values
/// spelled the way the exposition format expects.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Process-wide registry and enablement.

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// Turn the process-wide registry on (idempotent, sticky) and return it.
/// Publish sites go live from here on; already-running code keeps paying
/// only its one relaxed load until it next checks.
pub fn enable() -> &'static MetricsRegistry {
    let reg = REGISTRY.get_or_init(MetricsRegistry::new);
    ENABLED.store(true, Ordering::Release);
    reg
}

/// Whether any publish site should bother. One relaxed atomic load — this
/// is the entire cost of observability-off.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry, or `None` when observability is off.
pub fn global() -> Option<&'static MetricsRegistry> {
    if enabled() {
        Some(REGISTRY.get_or_init(MetricsRegistry::new))
    } else {
        None
    }
}

fn env_truthy(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("no"))
        }
        Err(_) => false,
    }
}

/// Resolve the observability environment once per process: any of
/// `PUNO_METRICS_ADDR`, `PUNO_OBS`, `PUNO_PROGRESS`, or `PUNO_WAREHOUSE`
/// being set enables the registry, and a metrics address additionally
/// starts the exporter thread. Harness entry points (sweep driver, run
/// entry points, the grid binaries) call this; it is a no-op after the
/// first call and when nothing is configured.
pub fn init_from_env() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let addr = std::env::var("PUNO_METRICS_ADDR").ok();
        let addr = addr
            .as_deref()
            .map(str::trim)
            .filter(|a| !a.is_empty() && *a != "0" && !a.eq_ignore_ascii_case("off"))
            .map(str::to_string);
        let wanted = addr.is_some()
            || env_truthy("PUNO_OBS")
            || env_progress().is_some()
            || crate::warehouse::env_warehouse().is_some();
        if !wanted {
            return;
        }
        let reg = enable();
        if let Some(addr) = addr {
            match serve(reg, &addr) {
                Ok(bound) => eprintln!("obs: serving Prometheus metrics on http://{bound}/metrics"),
                Err(e) => {
                    eprintln!("warning: PUNO_METRICS_ADDR={addr} unusable ({e}); exporter disabled")
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Sink 1: Prometheus text-exposition HTTP endpoint (std::net only).

/// Start the exporter thread serving `registry` on `addr` (any
/// `ToSocketAddrs` string; port 0 picks a free port). Returns the bound
/// address. The thread lives for the rest of the process — the scrape
/// endpoint outliving the sweep is the point.
pub fn serve(registry: &'static MetricsRegistry, addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("puno-obs-exporter".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let _ = handle_scrape(registry, stream);
            }
        })?;
    Ok(bound)
}

/// Answer one scrape: drain the request head (bounded, with a timeout — a
/// stalled client must not wedge the exporter), then write a minimal
/// HTTP/1.0 response carrying the exposition text. Any path serves the
/// metrics; there is nothing else to route.
fn handle_scrape(registry: &MetricsRegistry, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = registry.render_prometheus();
    let resp = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())
}

// ---------------------------------------------------------------------------
// Worker identity and per-cell notes (sweep worker threads → publish sites).

thread_local! {
    static WORKER: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
    static CACHE_HIT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Tag this thread's published run-loop series (`worker="…"`); sweep
/// workers set their index, everything else defaults to `main`.
pub fn set_worker(label: &str) {
    WORKER.with(|w| *w.borrow_mut() = label.to_string());
}

/// This thread's worker label for metric series.
pub fn current_worker() -> String {
    WORKER.with(|w| {
        let w = w.borrow();
        if w.is_empty() {
            "main".to_string()
        } else {
            w.clone()
        }
    })
}

/// Note that the cell currently running on this thread was served from the
/// result cache (set inside the sweep's cell runner, consumed by the sweep
/// driver when the cell returns).
pub fn note_cache_hit() {
    CACHE_HIT.with(|c| c.set(true));
}

/// Consume the cache-hit note for the cell that just finished.
pub fn take_cache_hit() -> bool {
    CACHE_HIT.with(|c| c.replace(false))
}

// ---------------------------------------------------------------------------
// Live run-loop sampling.

/// Default cycle interval between run-loop samples (`PUNO_OBS_SAMPLE_CYCLES`
/// overrides). Coarse on purpose: one sample is four relaxed atomics and an
/// `Instant::now`, and the golden gate only cares that it never touches
/// simulated state.
pub const DEFAULT_SAMPLE_CYCLES: u64 = 5000;

/// The run-loop sample cadence in simulated cycles (0 disables sampling
/// even when the registry is on).
pub fn env_sample_every() -> u64 {
    std::env::var("PUNO_OBS_SAMPLE_CYCLES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_SAMPLE_CYCLES)
}

/// Publishes a running [`crate::System`]'s live throughput: cumulative
/// simulated cycles/events and the instantaneous rates since the previous
/// sample, labeled by the sweep worker thread driving the run. Created at
/// run-loop entry when the registry is enabled; the run loop calls
/// [`RunSampler::sample`] at its existing batch boundary (the same spot the
/// snapshot ring hooks) and [`RunSampler::finish`] on exit.
#[derive(Debug)]
pub struct RunSampler {
    every: u64,
    /// Absolute cycle of the next due sample (the run loop compares and
    /// calls; keeping the threshold here keeps the loop's check branch-free
    /// on the common path).
    pub next_at: u64,
    last_wall: Instant,
    last_cycles: u64,
    last_events: u64,
    cycles_total: Counter,
    events_total: Counter,
    cps: Gauge,
    eps: Gauge,
}

impl RunSampler {
    pub fn new(
        registry: &MetricsRegistry,
        every: u64,
        start_cycle: u64,
        start_events: u64,
    ) -> Self {
        let worker = current_worker();
        let labels: [(&str, &str); 1] = [("worker", worker.as_str())];
        Self {
            every,
            next_at: start_cycle.saturating_add(every),
            last_wall: Instant::now(),
            last_cycles: start_cycle,
            last_events: start_events,
            cycles_total: registry.counter(
                "puno_sim_cycles_total",
                "Simulated cycles advanced by run loops on this worker.",
                &labels,
            ),
            events_total: registry.counter(
                "puno_sim_events_total",
                "Events dispatched by run loops on this worker.",
                &labels,
            ),
            cps: registry.gauge(
                "puno_sim_cycles_per_sec",
                "Live simulated cycles per wall second (last sample window).",
                &labels,
            ),
            eps: registry.gauge(
                "puno_sim_events_per_sec",
                "Live events dispatched per wall second (last sample window).",
                &labels,
            ),
        }
    }

    /// Publish the window since the last sample and rearm `next_at`.
    pub fn sample(&mut self, now_cycle: u64, events: u64) {
        let dc = now_cycle.saturating_sub(self.last_cycles);
        let de = events.saturating_sub(self.last_events);
        self.cycles_total.add(dc);
        self.events_total.add(de);
        let wall = self.last_wall.elapsed().as_secs_f64();
        if wall > 0.0 {
            self.cps.set(dc as f64 / wall);
            self.eps.set(de as f64 / wall);
        }
        self.last_wall = Instant::now();
        self.last_cycles = now_cycle;
        self.last_events = events;
        self.next_at = now_cycle.saturating_add(self.every.max(1));
    }

    /// Publish the residual window and zero the instantaneous rates (the
    /// run is over; a scrape between runs should not see a stale rate).
    pub fn finish(&mut self, now_cycle: u64, events: u64) {
        let dc = now_cycle.saturating_sub(self.last_cycles);
        let de = events.saturating_sub(self.last_events);
        self.cycles_total.add(dc);
        self.events_total.add(de);
        self.last_cycles = now_cycle;
        self.last_events = events;
        self.cps.set(0.0);
        self.eps.set(0.0);
    }
}

// ---------------------------------------------------------------------------
// Sink 2: console progress heartbeat.

/// Parse a `PUNO_PROGRESS` value into a heartbeat interval. Falsy values
/// (unset, empty, `0`, `off`, `false`, `no`) disable it; a positive number
/// is the interval in seconds; any other truthy value means the 1 s
/// default.
pub fn parse_progress(value: Option<&str>) -> Option<Duration> {
    let v = value?.trim();
    if v.is_empty()
        || v == "0"
        || v.eq_ignore_ascii_case("off")
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("no")
    {
        return None;
    }
    if let Ok(secs) = v.parse::<f64>() {
        if secs > 0.0 && secs.is_finite() {
            return Some(Duration::from_secs_f64(secs.min(3600.0)));
        }
        return None;
    }
    Some(Duration::from_secs(1))
}

/// The heartbeat interval requested by `PUNO_PROGRESS` (off by default).
pub fn env_progress() -> Option<Duration> {
    parse_progress(std::env::var("PUNO_PROGRESS").ok().as_deref())
}

/// One heartbeat line. Pure so the format is unit-testable; the sweep
/// driver prints it to stderr (stdout stays byte-identical with
/// observability off).
pub fn render_heartbeat(
    done: usize,
    total: usize,
    running: usize,
    elapsed_secs: f64,
    eta_secs: Option<f64>,
) -> String {
    let eta = match eta_secs {
        Some(e) if e.is_finite() && e >= 0.0 => format!("~{e:.1}s"),
        _ => "--".to_string(),
    };
    format!(
        "progress: {done}/{total} cells done, {running} running, elapsed {elapsed_secs:.1}s, eta {eta}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_rendering() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("puno_test_total", "A test counter.", &[("kind", "a")]);
        c.inc();
        c.add(2);
        // Re-registration returns the same cell.
        let c2 = reg.counter("puno_test_total", "A test counter.", &[("kind", "a")]);
        c2.inc();
        assert_eq!(c.get(), 4);
        let g = reg.gauge("puno_test_gauge", "A test gauge.", &[]);
        g.set(2.5);
        g.add(-0.5);
        assert!((g.get() - 2.0).abs() < 1e-12);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE puno_test_total counter\n"));
        assert!(text.contains("puno_test_total{kind=\"a\"} 4\n"));
        assert!(text.contains("# TYPE puno_test_gauge gauge\n"));
        assert!(text.contains("puno_test_gauge 2\n"));
    }

    #[test]
    fn label_order_is_normalized() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("puno_norm_total", "h", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("puno_norm_total", "h", &[("a", "1"), ("b", "2")]);
        a.inc();
        b.inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("puno_norm_total{a=\"1\",b=\"2\"} 2\n"),
            "{text}"
        );
    }

    #[test]
    fn label_values_and_help_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter(
            "puno_esc_total",
            "help with \\ and\nnewline",
            &[("path", "a\\b \"q\"\nend")],
        );
        let text = reg.render_prometheus();
        assert!(
            text.contains("# HELP puno_esc_total help with \\\\ and\\nnewline\n"),
            "{text}"
        );
        assert!(
            text.contains("puno_esc_total{path=\"a\\\\b \\\"q\\\"\\nend\"} 0\n"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_metric_names_are_rejected() {
        MetricsRegistry::new().counter("bad name", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_is_rejected() {
        let reg = MetricsRegistry::new();
        reg.counter("puno_kind_total", "h", &[]);
        reg.gauge("puno_kind_total", "h", &[]);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("puno_hist_secs", "h", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 5.55).abs() < 1e-9);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE puno_hist_secs histogram\n"));
        assert!(
            text.contains("puno_hist_secs_bucket{le=\"0.1\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("puno_hist_secs_bucket{le=\"1\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("puno_hist_secs_bucket{le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("puno_hist_secs_count 3\n"), "{text}");
    }

    #[test]
    fn special_values_render_in_exposition_spelling() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(2.0), "2");
        assert_eq!(fmt_value(0.25), "0.25");
    }

    #[test]
    fn progress_parsing() {
        assert_eq!(parse_progress(None), None);
        assert_eq!(parse_progress(Some("0")), None);
        assert_eq!(parse_progress(Some("off")), None);
        assert_eq!(parse_progress(Some("-3")), None);
        assert_eq!(
            parse_progress(Some("2.5")),
            Some(Duration::from_secs_f64(2.5))
        );
        assert_eq!(parse_progress(Some("on")), Some(Duration::from_secs(1)));
    }

    #[test]
    fn heartbeat_format() {
        assert_eq!(
            render_heartbeat(3, 16, 4, 2.25, Some(7.04)),
            "progress: 3/16 cells done, 4 running, elapsed 2.2s, eta ~7.0s"
        );
        assert_eq!(
            render_heartbeat(0, 16, 4, 0.0, None),
            "progress: 0/16 cells done, 4 running, elapsed 0.0s, eta --"
        );
    }

    #[test]
    fn sampler_publishes_deltas_and_rates() {
        let reg = MetricsRegistry::new();
        set_worker("t9");
        let mut s = RunSampler::new(&reg, 100, 0, 0);
        assert_eq!(s.next_at, 100);
        s.sample(100, 40);
        s.sample(250, 90);
        s.finish(300, 100);
        set_worker("main");
        let text = reg.render_prometheus();
        assert!(
            text.contains("puno_sim_cycles_total{worker=\"t9\"} 300\n"),
            "{text}"
        );
        assert!(
            text.contains("puno_sim_events_total{worker=\"t9\"} 100\n"),
            "{text}"
        );
        assert!(
            text.contains("puno_sim_cycles_per_sec{worker=\"t9\"} 0\n"),
            "{text}"
        );
    }

    #[test]
    fn scrape_over_http_roundtrips() {
        let reg = enable();
        let c = reg.counter("puno_scrape_total", "Scrape test series.", &[]);
        c.add(7);
        let bound = serve(reg, "127.0.0.1:0").expect("bind an ephemeral port");
        let mut stream = TcpStream::connect(bound).expect("connect to exporter");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
        assert!(resp.contains("puno_scrape_total 7\n"), "{resp}");
    }

    #[test]
    fn cache_hit_note_is_per_thread_and_consumed() {
        assert!(!take_cache_hit());
        note_cache_hit();
        assert!(take_cache_hit());
        assert!(!take_cache_hit());
        std::thread::spawn(|| {
            assert!(!take_cache_hit());
        })
        .join()
        .unwrap();
    }
}
