//! Sink 3 of the observability layer: the cross-run result warehouse.
//!
//! The result cache ([`crate::cache`]) answers "have I simulated this exact
//! cell already?" — it keys on the content digest and keeps only the latest
//! metrics. The warehouse answers the *longitudinal* questions the cache
//! deliberately forgets: how did throughput trend across the last N sweeps,
//! what is the PUNO-vs-baseline abort-rate delta per recorded run, did the
//! newest sweep regress against the persisted bench baseline. It is an
//! append-only, checksummed JSONL file (same corruption-tolerance
//! discipline as the cache: torn lines, stale versions, and duplicates are
//! skipped and counted, never served) holding one compact row per completed
//! sweep cell, grouped by a per-sweep `run_id`.
//!
//! `PUNO_WAREHOUSE=<dir>` points the sweep driver at a warehouse; the
//! `warehouse` binary answers the aggregation queries offline.

use crate::cache::ENGINE_VERSION;
use crate::metrics::RunMetrics;
use puno_workloads::fnv1a_64;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version of the row schema itself; bump on any field change so old rows
/// classify as stale instead of deserializing into garbage.
pub const WAREHOUSE_SCHEMA_VERSION: u32 = 1;

/// Abort-blame summary entry: aborts attributed to one cause.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlameCauseEntry {
    pub cause: String,
    pub count: u64,
}

/// One completed sweep cell, flattened to what cross-run queries need.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WarehouseRow {
    pub schema_version: u32,
    /// Engine version that produced the metrics; rows from another engine
    /// never mix into aggregates (simulated behaviour differs by design).
    pub engine_version: u32,
    /// Identifier of the sweep that recorded this row (`PUNO_RUN_ID` or a
    /// `<unix-secs>-<pid>` default); one sweep = one run_id.
    pub run_id: String,
    /// Unix seconds when the recording sweep started (shared by all of its
    /// rows, so a run orders as one point in a trend).
    pub recorded_unix: u64,
    /// The cell's [`crate::cache::cell_digest`] — joins a row back to the
    /// result cache and dedups re-recorded cells within a run.
    pub digest: u64,
    pub workload: String,
    pub mechanism: String,
    pub seed: u64,
    /// `ok`, `err`, or `quarantined`.
    pub outcome: String,
    /// Whether the cell replayed from the result cache (its host-side
    /// throughput then describes the *original* run, so cache-hit rows are
    /// excluded from host-perf aggregates).
    pub cache_hit: bool,
    pub cycles: u64,
    pub committed: u64,
    pub aborts: u64,
    pub abort_rate: f64,
    pub false_abort_fraction: f64,
    pub wall_secs: f64,
    pub sim_cycles_per_sec: f64,
    pub events_per_sec: f64,
    pub prefix_forks: u64,
    pub express_packets: u64,
    /// Aborts by cause (zero-count causes omitted), the blame summary the
    /// paper's false-abort analysis compares on.
    pub abort_blame: Vec<BlameCauseEntry>,
    /// FNV-1a over the row serialized with this field zeroed (see
    /// [`row_checksum`]); verified on load.
    pub checksum: u64,
}

/// Content checksum of one row: FNV-1a over the canonical JSON of the row
/// with its checksum field zeroed (the serde shim emits fields in
/// declaration order, so the serialization is canonical).
fn row_checksum(row: &WarehouseRow) -> u64 {
    let mut zeroed = row.clone();
    zeroed.checksum = 0;
    let json = serde_json::to_string(&zeroed).expect("warehouse row must serialize");
    fnv1a_64(format!("warehouse|{json}").as_bytes())
}

impl WarehouseRow {
    /// Flatten one finished cell. `outcome` is `ok`/`err`/`quarantined`;
    /// failed cells carry an empty metrics payload from the caller's point
    /// of view, so they pass what they have.
    pub fn from_metrics(
        run_id: &str,
        recorded_unix: u64,
        digest: u64,
        outcome: &str,
        cache_hit: bool,
        metrics: &RunMetrics,
    ) -> Self {
        let abort_blame = metrics
            .abort_blame()
            .into_iter()
            .map(|(cause, count)| BlameCauseEntry {
                cause: format!("{cause:?}"),
                count,
            })
            .collect();
        let mut row = Self {
            schema_version: WAREHOUSE_SCHEMA_VERSION,
            engine_version: ENGINE_VERSION,
            run_id: run_id.to_string(),
            recorded_unix,
            digest,
            workload: metrics.workload.clone(),
            mechanism: metrics.mechanism.clone(),
            seed: metrics.seed,
            outcome: outcome.to_string(),
            cache_hit,
            cycles: metrics.cycles,
            committed: metrics.committed,
            aborts: metrics.htm.aborts.get(),
            abort_rate: metrics.htm.abort_rate(),
            false_abort_fraction: metrics.oracle.false_abort_fraction(),
            wall_secs: metrics.host.wall_secs,
            sim_cycles_per_sec: metrics.host.sim_cycles_per_sec,
            events_per_sec: metrics.host.events_per_sec,
            prefix_forks: metrics.host.prefix_forks,
            express_packets: metrics.host.express_packets,
            abort_blame,
            checksum: 0,
        };
        row.checksum = row_checksum(&row);
        row
    }

    /// Row for a cell that produced no metrics (failed or quarantined):
    /// identity fields only, measurements zeroed.
    #[allow(clippy::too_many_arguments)]
    pub fn placeholder(
        run_id: &str,
        recorded_unix: u64,
        digest: u64,
        workload: &str,
        mechanism: &str,
        seed: u64,
        outcome: &str,
    ) -> Self {
        let mut row = Self {
            schema_version: WAREHOUSE_SCHEMA_VERSION,
            engine_version: ENGINE_VERSION,
            run_id: run_id.to_string(),
            recorded_unix,
            digest,
            workload: workload.to_string(),
            mechanism: mechanism.to_string(),
            seed,
            outcome: outcome.to_string(),
            cache_hit: false,
            cycles: 0,
            committed: 0,
            aborts: 0,
            abort_rate: 0.0,
            false_abort_fraction: 0.0,
            wall_secs: 0.0,
            sim_cycles_per_sec: 0.0,
            events_per_sec: 0.0,
            prefix_forks: 0,
            express_packets: 0,
            abort_blame: Vec::new(),
            checksum: 0,
        };
        row.checksum = row_checksum(&row);
        row
    }

    fn checksum_valid(&self) -> bool {
        self.checksum == row_checksum(self)
    }
}

/// What [`Warehouse::load`] skipped while reading the persisted file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarehouseLoadStats {
    /// Rows served to the caller.
    pub kept: u64,
    /// Lines that failed to parse or failed their content checksum.
    pub corrupt_skipped: u64,
    /// Rows from another engine or schema version.
    pub stale_skipped: u64,
    /// Rows superseded by a later record of the same `(run_id, digest)`.
    pub duplicate_collapsed: u64,
}

enum RowClass {
    Valid(Box<WarehouseRow>),
    Stale,
    Corrupt,
}

fn classify_row_line(line: &str) -> RowClass {
    match serde_json::from_str::<WarehouseRow>(line) {
        Ok(row) if !row.checksum_valid() => RowClass::Corrupt,
        Ok(row)
            if row.engine_version != ENGINE_VERSION
                || row.schema_version != WAREHOUSE_SCHEMA_VERSION =>
        {
            RowClass::Stale
        }
        Ok(row) => RowClass::Valid(Box::new(row)),
        Err(_) => RowClass::Corrupt,
    }
}

/// Append-only JSONL warehouse rooted at a directory (`warehouse.jsonl`
/// inside it). Open is cheap (no read); [`Warehouse::load`] reads and
/// classifies the whole file.
#[derive(Clone, Debug)]
pub struct Warehouse {
    dir: PathBuf,
}

impl Warehouse {
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    pub fn rows_path(&self) -> PathBuf {
        self.dir.join("warehouse.jsonl")
    }

    /// Append rows (one JSONL line each) and flush once.
    pub fn append(&self, rows: &[WarehouseRow]) -> std::io::Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let mut out = String::new();
        for row in rows {
            out.push_str(&serde_json::to_string(row).expect("warehouse row must serialize"));
            out.push('\n');
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.rows_path())?;
        f.write_all(out.as_bytes())?;
        f.flush()
    }

    /// Read every persisted row: corrupt (torn/tampered) lines and
    /// stale-version rows are skipped and counted; duplicates of one
    /// `(run_id, digest)` collapse last-wins (first-seen order preserved).
    pub fn load(&self) -> (Vec<WarehouseRow>, WarehouseLoadStats) {
        let mut stats = WarehouseLoadStats::default();
        let mut rows: Vec<WarehouseRow> = Vec::new();
        let mut index_of: BTreeMap<(String, u64), usize> = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(self.rows_path()) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                match classify_row_line(line) {
                    RowClass::Valid(row) => {
                        let key = (row.run_id.clone(), row.digest);
                        match index_of.get(&key) {
                            Some(&i) => {
                                stats.duplicate_collapsed += 1;
                                rows[i] = *row;
                            }
                            None => {
                                index_of.insert(key, rows.len());
                                rows.push(*row);
                            }
                        }
                    }
                    RowClass::Stale => stats.stale_skipped += 1,
                    RowClass::Corrupt => stats.corrupt_skipped += 1,
                }
            }
        }
        stats.kept = rows.len() as u64;
        (rows, stats)
    }
}

/// The warehouse directory requested by `PUNO_WAREHOUSE` (unset, empty,
/// `0`, or `off` disables the sink).
pub fn env_warehouse() -> Option<PathBuf> {
    let dir = std::env::var("PUNO_WAREHOUSE").ok()?;
    let dir = dir.trim();
    if dir.is_empty() || dir == "0" || dir.eq_ignore_ascii_case("off") {
        return None;
    }
    Some(PathBuf::from(dir))
}

/// The run identifier for one sweep's rows: `PUNO_RUN_ID` verbatim when
/// set, else `<unix-secs>-<pid>`.
pub fn run_id_from_env(now_unix: u64) -> String {
    match std::env::var("PUNO_RUN_ID") {
        Ok(id) if !id.trim().is_empty() => id.trim().to_string(),
        _ => format!("{now_unix}-{}", std::process::id()),
    }
}

/// Unix seconds right now (0 if the clock is before the epoch — only the
/// relative order of runs matters to the aggregates).
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Aggregation queries.

/// Recorded runs in chronological order: `(run_id, start_unix, rows)`.
pub fn runs_in_order(rows: &[WarehouseRow]) -> Vec<(String, u64)> {
    let mut start: BTreeMap<&str, u64> = BTreeMap::new();
    for row in rows {
        let e = start.entry(&row.run_id).or_insert(row.recorded_unix);
        *e = (*e).min(row.recorded_unix);
    }
    let mut runs: Vec<(String, u64)> = start
        .into_iter()
        .map(|(id, t)| (id.to_string(), t))
        .collect();
    runs.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    runs
}

/// One run's point in a per-workload throughput trend.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendPoint {
    pub run_id: String,
    /// Simulated (non-cache-hit, successful) cells contributing.
    pub cells: u64,
    /// Mean simulated Mcycles per wall second over those cells.
    pub mean_mcycles_per_sec: f64,
}

/// Per-workload host-throughput trend across recorded runs. Cache-hit rows
/// are excluded: their `HostPerf` replays the original run's host, not the
/// run that recorded them.
pub fn throughput_trend(rows: &[WarehouseRow]) -> Vec<(String, Vec<TrendPoint>)> {
    let runs = runs_in_order(rows);
    let mut workloads: Vec<&str> = rows.iter().map(|r| r.workload.as_str()).collect();
    workloads.sort_unstable();
    workloads.dedup();
    let mut out = Vec::new();
    for wl in workloads {
        let mut points = Vec::new();
        for (run_id, _) in &runs {
            let contributing: Vec<&WarehouseRow> = rows
                .iter()
                .filter(|r| {
                    r.workload == wl
                        && &r.run_id == run_id
                        && r.outcome == "ok"
                        && !r.cache_hit
                        && r.sim_cycles_per_sec > 0.0
                })
                .collect();
            if contributing.is_empty() {
                continue;
            }
            let mean = contributing
                .iter()
                .map(|r| r.sim_cycles_per_sec)
                .sum::<f64>()
                / contributing.len() as f64;
            points.push(TrendPoint {
                run_id: run_id.clone(),
                cells: contributing.len() as u64,
                mean_mcycles_per_sec: mean / 1e6,
            });
        }
        if !points.is_empty() {
            out.push((wl.to_string(), points));
        }
    }
    out
}

/// PUNO-vs-baseline abort-rate comparison for one (run, workload) group.
#[derive(Clone, Debug, PartialEq)]
pub struct AbortDelta {
    pub run_id: String,
    pub workload: String,
    /// Mean abort rate over the run's `baseline` cells of this workload.
    pub baseline_rate: f64,
    /// Mean abort rate over the run's `puno` cells of this workload.
    pub puno_rate: f64,
    /// `(puno - baseline) * 100`: percentage points the PUNO mechanism
    /// moved the abort rate (negative = fewer aborts, the paper's claim).
    pub delta_pp: f64,
}

/// Abort-rate deltas for every (run, workload) that recorded both a
/// `baseline` and a `puno` cell. Cache hits count here — abort rate is
/// simulated behaviour, identical however the row was produced.
pub fn abort_rate_deltas(rows: &[WarehouseRow]) -> Vec<AbortDelta> {
    let runs = runs_in_order(rows);
    let mut workloads: Vec<&str> = rows.iter().map(|r| r.workload.as_str()).collect();
    workloads.sort_unstable();
    workloads.dedup();
    let mean_rate = |run_id: &str, wl: &str, mech: &str| -> Option<f64> {
        let rates: Vec<f64> = rows
            .iter()
            .filter(|r| {
                r.run_id == run_id && r.workload == wl && r.mechanism == mech && r.outcome == "ok"
            })
            .map(|r| r.abort_rate)
            .collect();
        (!rates.is_empty()).then(|| rates.iter().sum::<f64>() / rates.len() as f64)
    };
    let mut out = Vec::new();
    for (run_id, _) in &runs {
        for wl in &workloads {
            let (Some(base), Some(puno)) = (
                mean_rate(run_id, wl, "baseline"),
                mean_rate(run_id, wl, "puno"),
            ) else {
                continue;
            };
            out.push(AbortDelta {
                run_id: run_id.clone(),
                workload: wl.to_string(),
                baseline_rate: base,
                puno_rate: puno,
                delta_pp: (puno - base) * 100.0,
            });
        }
    }
    out
}

/// Latest-run host-throughput check against the persisted bench baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchComparison {
    pub workload: String,
    pub run_id: String,
    /// Mean wall microseconds per simulated cell in the latest run.
    pub mean_wall_us: f64,
    /// The `system/throughput/<workload>` entry of the bench baseline, in
    /// microseconds per iteration.
    pub baseline_us: f64,
    /// `mean_wall_us / baseline_us`. Only comparable when the recorded
    /// sweep ran at the bench smoke scale; the ratio is reported either
    /// way, flagged by the caller's threshold.
    pub ratio: f64,
}

/// Compare the latest recorded run's per-workload mean cell wall-clock
/// against `results/BENCH_substrate_baseline.json`-style content (a flat
/// `{"name": us_per_iter}` map with `system/throughput/<workload>` keys).
pub fn compare_vs_bench_baseline(
    rows: &[WarehouseRow],
    baseline_json: &str,
) -> Vec<BenchComparison> {
    // The bench baseline is a plain JSON object (`{"name": us_per_iter}`).
    // The vendored serde shim's map Deserialize expects its own
    // array-of-pairs encoding, so go through `Value::Object` directly.
    let Ok(value) = serde_json::from_str::<serde::Value>(baseline_json) else {
        return Vec::new();
    };
    let serde::Value::Object(entries) = value else {
        return Vec::new();
    };
    let mut baseline: Vec<(String, f64)> = entries
        .into_iter()
        .filter_map(|(k, v)| v.as_f64().map(|x| (k, x)))
        .collect();
    baseline.sort_by(|a, b| a.0.cmp(&b.0));
    let runs = runs_in_order(rows);
    let Some((latest, _)) = runs.last() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for &(ref key, baseline_us) in baseline.iter() {
        let Some(wl) = key.strip_prefix("system/throughput/") else {
            continue;
        };
        if baseline_us <= 0.0 {
            continue;
        }
        let walls: Vec<f64> = rows
            .iter()
            .filter(|r| {
                &r.run_id == latest
                    && r.workload == wl
                    && r.outcome == "ok"
                    && !r.cache_hit
                    && r.wall_secs > 0.0
            })
            .map(|r| r.wall_secs * 1e6)
            .collect();
        if walls.is_empty() {
            continue;
        }
        let mean_wall_us = walls.iter().sum::<f64>() / walls.len() as f64;
        out.push(BenchComparison {
            workload: wl.to_string(),
            run_id: latest.clone(),
            mean_wall_us,
            baseline_us,
            ratio: mean_wall_us / baseline_us,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::Mechanism;
    use crate::run::run_workload;
    use puno_workloads::WorkloadId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("puno-wh-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_row(run_id: &str, t: u64, digest: u64, mech: Mechanism, seed: u64) -> WarehouseRow {
        // Intruder is the contended workload: it reliably records aborts at
        // golden scale, so the blame summary is nonempty.
        let params = WorkloadId::Intruder.params().scaled(0.05);
        let metrics = run_workload(mech, &params, seed);
        WarehouseRow::from_metrics(run_id, t, digest, "ok", false, &metrics)
    }

    #[test]
    fn rows_roundtrip_with_checksums() {
        let dir = temp_dir("roundtrip");
        let wh = Warehouse::open(&dir).unwrap();
        let row = sample_row("r1", 100, 1, Mechanism::Baseline, 9);
        assert!(row.checksum_valid());
        assert!(
            !row.abort_blame.is_empty(),
            "intruder must record some aborts"
        );
        wh.append(std::slice::from_ref(&row)).unwrap();
        let (rows, stats) = wh.load();
        assert_eq!(rows, vec![row]);
        assert_eq!(
            stats,
            WarehouseLoadStats {
                kept: 1,
                ..Default::default()
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_stale_and_duplicate_rows_are_tolerated() {
        let dir = temp_dir("tolerance");
        let wh = Warehouse::open(&dir).unwrap();
        let good = sample_row("r1", 100, 1, Mechanism::Baseline, 9);
        let mut stale = good.clone();
        stale.engine_version = ENGINE_VERSION + 1;
        stale.checksum = row_checksum(&stale);
        let dup = sample_row("r1", 100, 1, Mechanism::Baseline, 10);
        let mut tampered = sample_row("r1", 100, 2, Mechanism::Puno, 9);
        tampered.seed = 77; // breaks the checksum
        wh.append(&[good.clone(), stale, dup.clone(), tampered])
            .unwrap();
        // Torn trailing line on top.
        let mut text = std::fs::read_to_string(wh.rows_path()).unwrap();
        text.push_str("{\"schema_version\":1,\"ru");
        std::fs::write(wh.rows_path(), text).unwrap();

        let (rows, stats) = wh.load();
        assert_eq!(stats.corrupt_skipped, 2, "tampered + torn");
        assert_eq!(stats.stale_skipped, 1);
        assert_eq!(stats.duplicate_collapsed, 1);
        assert_eq!(stats.kept, 1);
        assert_eq!(rows, vec![dup], "same (run_id, digest): last wins");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trend_and_delta_aggregates() {
        let mk = |run: &str, t: u64, wl: &str, mech: &str, digest: u64, rate: f64, cps: f64| {
            let mut row = WarehouseRow {
                schema_version: WAREHOUSE_SCHEMA_VERSION,
                engine_version: ENGINE_VERSION,
                run_id: run.to_string(),
                recorded_unix: t,
                digest,
                workload: wl.to_string(),
                mechanism: mech.to_string(),
                seed: 1,
                outcome: "ok".to_string(),
                cache_hit: false,
                cycles: 1000,
                committed: 100,
                aborts: 10,
                abort_rate: rate,
                false_abort_fraction: 0.0,
                wall_secs: 0.5,
                sim_cycles_per_sec: cps,
                events_per_sec: 0.0,
                prefix_forks: 0,
                express_packets: 0,
                abort_blame: Vec::new(),
                checksum: 0,
            };
            row.checksum = row_checksum(&row);
            row
        };
        let rows = vec![
            mk("b", 200, "ssca2", "baseline", 1, 0.30, 2e6),
            mk("b", 200, "ssca2", "puno", 2, 0.10, 4e6),
            mk("a", 100, "ssca2", "baseline", 1, 0.30, 1e6),
            mk("a", 100, "ssca2", "puno", 2, 0.20, 3e6),
        ];
        assert_eq!(
            runs_in_order(&rows),
            vec![("a".to_string(), 100), ("b".to_string(), 200)]
        );
        let trend = throughput_trend(&rows);
        assert_eq!(trend.len(), 1);
        let (wl, points) = &trend[0];
        assert_eq!(wl, "ssca2");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].run_id, "a");
        assert!((points[0].mean_mcycles_per_sec - 2.0).abs() < 1e-9);
        assert!((points[1].mean_mcycles_per_sec - 3.0).abs() < 1e-9);

        let deltas = abort_rate_deltas(&rows);
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].run_id, "a");
        assert!((deltas[0].delta_pp - -10.0).abs() < 1e-9);
        assert!((deltas[1].delta_pp - -20.0).abs() < 1e-9);

        let cmp = compare_vs_bench_baseline(
            &rows,
            "{\"system/throughput/ssca2\": 1000.0, \"other/key\": 5.0}",
        );
        assert_eq!(cmp.len(), 1);
        assert_eq!(cmp[0].run_id, "b");
        assert!((cmp[0].mean_wall_us - 500000.0).abs() < 1e-6);
        assert!((cmp[0].ratio - 500.0).abs() < 1e-9);
    }

    #[test]
    fn run_id_default_and_override() {
        // No env manipulation (tests run threaded): exercise the fallback
        // formatting only.
        let id = format!("{}-{}", 1700000000u64, std::process::id());
        assert!(id.starts_with("1700000000-"));
    }
}
