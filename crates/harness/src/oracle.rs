//! The false-abort oracle — ground truth for Figures 2 and 3.
//!
//! A transactional GETX that aborts one or more sharer transactions and is
//! then NACKed by a higher-priority sharer has aborted those transactions
//! *unnecessarily*: had the multicast been suppressed, they could have kept
//! running, because the writer did not get the line anyway. The requester
//! observes both facts — which Acks carried the `aborted` flag and whether
//! the episode concluded nacked — so the oracle accumulates per-episode
//! records requester-side, mechanism-independently.

use puno_sim::Histogram;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FalseAbortOracle {
    /// Total transactional GETX episodes concluded (Figure 2 denominator).
    pub tx_getx_episodes: u64,
    /// Episodes that ended in a NACK.
    pub nacked_episodes: u64,
    /// Episodes that ended in a NACK *after* aborting >= 1 sharer — false
    /// aborting (Figure 2 numerator).
    pub false_abort_episodes: u64,
    /// Transactions aborted unnecessarily, total.
    pub false_aborted_transactions: u64,
    /// Distribution of the number of transactions aborted unnecessarily per
    /// false-aborting episode (Figure 3).
    pub victims_per_episode: Histogram,
}

impl Default for FalseAbortOracle {
    fn default() -> Self {
        Self {
            tx_getx_episodes: 0,
            nacked_episodes: 0,
            false_abort_episodes: 0,
            false_aborted_transactions: 0,
            victims_per_episode: Histogram::new(17),
        }
    }
}

impl FalseAbortOracle {
    /// Record a concluded transactional GETX episode.
    pub fn record_episode(&mut self, nacked: bool, aborted_sharers: u64) {
        self.tx_getx_episodes += 1;
        if nacked {
            self.nacked_episodes += 1;
            if aborted_sharers > 0 {
                self.false_abort_episodes += 1;
                self.false_aborted_transactions += aborted_sharers;
                self.victims_per_episode.record(aborted_sharers);
            }
        }
    }

    /// Fraction of transactional GETX requests that incur false aborting
    /// (the Figure 2 bar).
    pub fn false_abort_fraction(&self) -> f64 {
        if self.tx_getx_episodes == 0 {
            0.0
        } else {
            self.false_abort_episodes as f64 / self.tx_getx_episodes as f64
        }
    }

    /// Fraction of episodes that were nacked at all.
    pub fn nack_fraction(&self) -> f64 {
        if self.tx_getx_episodes == 0 {
            0.0
        } else {
            self.nacked_episodes as f64 / self.tx_getx_episodes as f64
        }
    }

    pub fn merge(&mut self, other: &FalseAbortOracle) {
        self.tx_getx_episodes += other.tx_getx_episodes;
        self.nacked_episodes += other.nacked_episodes;
        self.false_abort_episodes += other.false_abort_episodes;
        self.false_aborted_transactions += other.false_aborted_transactions;
        self.victims_per_episode.merge(&other.victims_per_episode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_abort_requires_both_nack_and_victims() {
        let mut o = FalseAbortOracle::default();
        o.record_episode(false, 3); // granted: true conflict resolution
        o.record_episode(true, 0); // nacked but nobody aborted: clean stall
        o.record_episode(true, 2); // false aborting, 2 victims
        assert_eq!(o.tx_getx_episodes, 3);
        assert_eq!(o.false_abort_episodes, 1);
        assert_eq!(o.false_aborted_transactions, 2);
        assert!((o.false_abort_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn victims_histogram_tracks_distribution() {
        let mut o = FalseAbortOracle::default();
        for victims in [1, 1, 5, 2] {
            o.record_episode(true, victims);
        }
        assert_eq!(o.victims_per_episode.bucket(1), Some(2));
        assert_eq!(o.victims_per_episode.bucket(5), Some(1));
        assert_eq!(o.victims_per_episode.count(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FalseAbortOracle::default();
        let mut b = FalseAbortOracle::default();
        a.record_episode(true, 1);
        b.record_episode(true, 4);
        b.record_episode(false, 0);
        a.merge(&b);
        assert_eq!(a.tx_getx_episodes, 3);
        assert_eq!(a.false_aborted_transactions, 5);
    }
}
