//! Deterministic intra-run parallel execution: the persistent worker pool
//! and the per-wave shard processing it runs.
//!
//! The run loop (see `System::run_loop_parallel`) splits each popped cycle
//! batch into *waves* of independently-owned events — node wakes owned by
//! their node id, memory completions owned by their home bank — and hands
//! each wave to the pool. Workers mutate only the node/directory/predictor
//! state their shard owns, buffer every line write in a per-item overlay,
//! and record all *global* effects (messages to inject, events to
//! schedule, trace records, RNG-consulting decisions) in a per-item
//! [`WaveOutput`]. The main thread then merges the outputs **in original
//! batch order**, which reproduces the serial loop's queue sequence
//! numbers, fault-RNG draw order, and trace emission order exactly —
//! `RunMetrics` stays bit-identical to `PUNO_RUN_THREADS=1` (gated by the
//! golden suite and `tests/parallel_exec.rs`).
//!
//! The pool is barrier-synchronized per wave: the main thread publishes a
//! [`WaveJob`] and bumps an epoch counter; workers spin (briefly) then
//! yield until they observe it, process their shard, and post a done flag
//! the main thread waits on. One pool lives for the whole run
//! (`std::thread::scope`), so per-wave cost is two atomic round-trips, not
//! a thread spawn.

use crate::memory::{MemOps, MemoryImage};
use crate::node::{Effects, NodeState, Phase};
use crate::system::{Event, PredictorImpl};
use puno_coherence::directory::{DirAction, DirectoryBank};
use puno_coherence::msg::CoherenceMsg;
use puno_sim::{Cycle, DirLineState, LineAddr, NodeId, TraceEvent};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Minimum wave items per worker for the pool to be worth the barrier:
/// below this the wave is dispatched serially in place. Low enough that a
/// 16-node mesh's initial 16-wake wave engages 4 workers (so the parity
/// tests exercise the parallel path), high enough that 2-item waves don't
/// pay two atomic round-trips.
pub(crate) const MIN_WAVE_PER_WORKER: usize = 2;

/// Spin iterations before falling back to `yield_now` in the epoch/done
/// barriers. Deliberately small: on an oversubscribed (or single-core)
/// host, spinning against a descheduled peer burns the quantum the peer
/// needs to make progress.
const SPIN_LIMIT: u32 = 64;

/// Everything a shard computes for one wave item. Global state is never
/// touched by workers; the main thread applies these at the merge, in
/// original batch order.
#[derive(Default)]
pub(crate) struct WaveOutput {
    /// The serial loop would have skipped this event (stale wake epoch,
    /// retired node, blocked phase): nothing to merge.
    pub(crate) skipped: bool,
    /// A transaction began during this step while a fault plan is active;
    /// the merge consults the forced-abort RNG stream (in batch order,
    /// exactly as the serial loop would).
    pub(crate) probe_fired: bool,
    /// Node-level effects (sends, wake, commit/finish markers).
    pub(crate) effects: Effects,
    /// Directory actions emitted by a home bank (MemReady / dir message).
    pub(crate) dir_actions: Vec<DirAction>,
    /// HTM lifecycle trace events the node buffered during its call.
    pub(crate) node_trace: Vec<(Cycle, TraceEvent)>,
    /// Line writes buffered by the item's [`OverlayMem`], applied to the
    /// shared image at the merge.
    pub(crate) mem_writes: Vec<(LineAddr, u64)>,
    /// Post-transition directory state, captured only when the Dir trace
    /// channel is live (the serial loop records it after `handle_into`).
    pub(crate) dir_state: Option<(DirLineState, bool)>,
}

impl WaveOutput {
    /// Clear for reuse, keeping the vector allocations.
    pub(crate) fn reset(&mut self) {
        self.skipped = false;
        self.probe_fired = false;
        self.effects = Effects::default();
        self.dir_actions.clear();
        self.node_trace.clear();
        self.mem_writes.clear();
        self.dir_state = None;
    }
}

/// A copy-on-write view of the memory image for one wave item: reads see
/// the pre-wave image plus this item's own writes (newest first — an
/// abort rollback rewrites the same line repeatedly); writes are buffered
/// and published by the merge. Sound because the single-writer protocol
/// invariant already guarantees two same-cycle events never read/write the
/// same line from different nodes (debug-checked at the merge).
pub(crate) struct OverlayMem<'a> {
    pub(crate) base: &'a MemoryImage,
    pub(crate) writes: &'a mut Vec<(LineAddr, u64)>,
}

impl MemOps for OverlayMem<'_> {
    fn read(&self, addr: LineAddr) -> u64 {
        for (a, v) in self.writes.iter().rev() {
            if *a == addr {
                return *v;
            }
        }
        self.base.read(addr)
    }

    fn write(&mut self, addr: LineAddr, value: u64) {
        self.writes.push((addr, value));
    }
}

/// Which shard-processing routine a published [`WaveJob`] runs.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaveKind {
    /// Nothing to do (the default job; also what a shutdown bump leaves).
    Idle,
    /// A slice of the popped cycle batch (`events`): node wakes sharded by
    /// node id, memory completions by home bank.
    Batch,
    /// One cycle's network ejections (`deliveries` + pre-drawn `nacks`),
    /// sharded by destination (the network ejects at most one message per
    /// node per cycle, so destinations are unique).
    Deliver,
}

/// The unit of work the main thread publishes to the pool each wave.
///
/// Raw pointers, republished every wave, because `System::restore`
/// replaces the underlying vectors wholesale between waves. Validity
/// contract (upheld by `run_loop_parallel`): all pointers derive from live
/// `System` buffers, the main thread does not touch those buffers while
/// the wave is in flight, and shard ownership (`shard_of`) partitions
/// every mutable element across workers.
pub(crate) struct WaveJob {
    pub(crate) kind: WaveKind,
    pub(crate) now: Cycle,
    pub(crate) events: *const Event,
    pub(crate) deliveries: *const (NodeId, CoherenceMsg),
    pub(crate) nacks: *const bool,
    pub(crate) len: usize,
    pub(crate) nodes: *mut NodeState,
    pub(crate) nodes_len: usize,
    pub(crate) dirs: *mut DirectoryBank,
    pub(crate) preds: *mut PredictorImpl,
    pub(crate) memory: *const MemoryImage,
    pub(crate) outputs: *mut WaveOutput,
    pub(crate) workers: usize,
    pub(crate) total_nodes: u16,
    pub(crate) fault_active: bool,
    pub(crate) capture_dir_state: bool,
}

impl Default for WaveJob {
    fn default() -> Self {
        Self {
            kind: WaveKind::Idle,
            now: 0,
            events: std::ptr::null(),
            deliveries: std::ptr::null(),
            nacks: std::ptr::null(),
            len: 0,
            nodes: std::ptr::null_mut(),
            nodes_len: 0,
            dirs: std::ptr::null_mut(),
            preds: std::ptr::null_mut(),
            memory: std::ptr::null(),
            outputs: std::ptr::null_mut(),
            workers: 1,
            total_nodes: 0,
            fault_active: false,
            capture_dir_state: false,
        }
    }
}

/// Which shard owns `owner` (a node/home index) out of `workers` equal
/// contiguous ranges. Stable across waves, so a node's state is only ever
/// mutated by one worker per wave.
#[inline]
pub(crate) fn shard_of(owner: usize, nodes: usize, workers: usize) -> usize {
    debug_assert!(owner < nodes);
    owner * workers / nodes
}

/// Cache-line-padded done flag, one per spawned worker, so the done-barrier
/// stores don't false-share.
#[repr(align(64))]
struct DoneSlot(AtomicU64);

/// State shared between the main thread and the pool workers for the
/// lifetime of one parallel run.
pub(crate) struct PoolShared {
    /// Wave counter: bumped (Release) after `job` is written; workers
    /// Acquire-observe it and process the published job.
    epoch: AtomicU64,
    /// Set (before a final epoch bump) to retire the workers.
    stop: AtomicBool,
    /// A worker's shard panicked; the main thread re-raises after the
    /// barrier instead of deadlocking on a dead worker.
    poisoned: AtomicBool,
    panic_msg: Mutex<Option<String>>,
    job: UnsafeCell<WaveJob>,
    /// `done[w-1]` holds the last epoch worker `w` completed.
    done: Vec<DoneSlot>,
    /// Per-shard busy nanoseconds (`busy[0]` is the main thread's own
    /// shard), read after the run for the worker-idle-fraction metric.
    busy_ns: Vec<AtomicU64>,
}

// SAFETY: the raw pointers inside `job` are only dereferenced between an
// epoch bump and the matching done barrier, during which the `WaveJob`
// validity contract partitions all mutable state across shards.
unsafe impl Sync for PoolShared {}

impl PoolShared {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            epoch: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            job: UnsafeCell::new(WaveJob::default()),
            done: (1..workers).map(|_| DoneSlot(AtomicU64::new(0))).collect(),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publish `job`, process shard 0 on the calling thread, wait for
    /// every worker's done flag, and re-raise any worker panic. Returns
    /// the wave's wall-clock span in nanoseconds.
    pub(crate) fn run_wave(&self, job: WaveJob) -> u64 {
        // SAFETY: workers only read `job` after observing the epoch bump
        // below; no wave is in flight here (the previous barrier completed).
        unsafe { *self.job.get() = job };
        let epoch = self.epoch.fetch_add(1, Ordering::Release) + 1;
        let t0 = std::time::Instant::now();
        // SAFETY: per the WaveJob contract, shard 0's elements are touched
        // by no other thread during this wave.
        let main_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            process_shard(&*self.job.get(), 0)
        }));
        self.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        for slot in &self.done {
            let mut spins = 0u32;
            while slot.0.load(Ordering::Acquire) != epoch {
                spins += 1;
                if spins < SPIN_LIMIT {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let span = t0.elapsed().as_nanos() as u64;
        if main_result.is_err() || self.poisoned.load(Ordering::Acquire) {
            // Retire the pool before unwinding: `thread::scope` joins its
            // workers on the way out, which would otherwise hang.
            self.shutdown();
            if let Err(payload) = main_result {
                std::panic::resume_unwind(payload);
            }
            let msg = self
                .panic_msg
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .unwrap_or_else(|| "worker shard panicked".to_string());
            panic!("{msg}");
        }
        span
    }

    /// Retire the workers (idempotent; safe to call with no wave in
    /// flight).
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Total busy nanoseconds across all shards (main's shard included).
    pub(crate) fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// Retires the pool when dropped, so a panic (or early `Err` return) in
/// the epoch loop can never leave `thread::scope` joining live spinners.
pub(crate) struct ShutdownGuard<'a>(pub(crate) &'a PoolShared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// The body each spawned pool worker runs: wait for an epoch bump, process
/// this worker's shard of the published job, post the done flag; exit when
/// the stop flag is raised.
pub(crate) fn worker_loop(shared: &PoolShared, worker: usize) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        let epoch = loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        };
        seen = epoch;
        // The epoch Acquire above synchronizes with shutdown's Release
        // stores, so a stop raised before this bump is visible here (the
        // job may be stale; never process it).
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let t0 = std::time::Instant::now();
        // SAFETY: the epoch bump published a valid WaveJob; this worker
        // only touches elements its shard owns.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            process_shard(&*shared.job.get(), worker)
        }));
        shared.busy_ns[worker].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker shard panicked".to_string());
            *shared.panic_msg.lock().unwrap_or_else(|p| p.into_inner()) = Some(msg);
            shared.poisoned.store(true, Ordering::Release);
        }
        // Post done even after a panic: the main thread's barrier must
        // complete so it can observe `poisoned` and re-raise.
        shared.done[worker - 1].0.store(epoch, Ordering::Release);
    }
}

/// Process one shard of the published wave. Called by workers (shards
/// 1..N) and by the main thread (shard 0).
///
/// # Safety
/// `job`'s pointers must satisfy the [`WaveJob`] validity contract, and at
/// most one live caller per shard per wave.
pub(crate) unsafe fn process_shard(job: &WaveJob, shard: usize) {
    match job.kind {
        WaveKind::Idle => {}
        WaveKind::Batch => process_batch_shard(job, shard),
        WaveKind::Deliver => process_deliver_shard(job, shard),
    }
}

/// Shard body for a [`WaveKind::Batch`] wave: node wakes and memory
/// completions, mirroring `System::on_node_wake` / the `MemReady` arm of
/// `System::dispatch_event` minus every global effect (deferred to the
/// merge). `DirSend`/`FaultedInject` items ride along untouched — they
/// never read node or directory state, so the merge replays them whole.
unsafe fn process_batch_shard(job: &WaveJob, shard: usize) {
    let events = std::slice::from_raw_parts(job.events, job.len);
    let memory = &*job.memory;
    for (i, event) in events.iter().enumerate() {
        match event {
            Event::NodeWake { node, epoch } => {
                let idx = node.index();
                if shard_of(idx, job.nodes_len, job.workers) != shard {
                    continue;
                }
                let out = &mut *job.outputs.add(i);
                let n = &mut *job.nodes.add(idx);
                if n.epoch != *epoch || n.is_done() || n.phase != Phase::Ready {
                    out.skipped = true;
                    continue;
                }
                let probe_begin = job.fault_active && n.htm.current().is_none();
                let mut overlay = OverlayMem {
                    base: memory,
                    writes: &mut out.mem_writes,
                };
                out.effects = n.step(job.now, &mut overlay);
                out.probe_fired = probe_begin && n.htm.current().is_some();
                if n.has_trace_events() {
                    out.node_trace = n.take_trace_buf();
                }
            }
            Event::MemReady { home, addr } => {
                let idx = home.index();
                if shard_of(idx, job.nodes_len, job.workers) != shard {
                    continue;
                }
                let out = &mut *job.outputs.add(i);
                let dir = &mut *job.dirs.add(idx);
                let pred = &mut *job.preds.add(idx);
                dir.mem_ready_into(job.now, *addr, pred, &mut out.dir_actions);
            }
            // Merge-only passthrough (inject-only events, no shard state).
            Event::DirSend { .. } | Event::FaultedInject { .. } => {}
            Event::NetStep | Event::Fault { .. } => {
                debug_assert!(false, "serial-only event leaked into a wave");
            }
        }
    }
}

/// Shard body for a [`WaveKind::Deliver`] wave: one cycle's network
/// ejections, sharded by destination, mirroring `System::deliver` minus
/// every global effect. Spurious-NACK decisions were pre-drawn by the main
/// thread (in delivery order, preserving the per-stream RNG sequence) and
/// arrive as `job.nacks`.
unsafe fn process_deliver_shard(job: &WaveJob, shard: usize) {
    let deliveries = std::slice::from_raw_parts(job.deliveries, job.len);
    let nacks = std::slice::from_raw_parts(job.nacks, job.len);
    let memory = &*job.memory;
    for (i, (dst, msg)) in deliveries.iter().enumerate() {
        let idx = dst.index();
        if shard_of(idx, job.nodes_len, job.workers) != shard {
            continue;
        }
        let out = &mut *job.outputs.add(i);
        match msg {
            CoherenceMsg::Gets { .. }
            | CoherenceMsg::Getx { .. }
            | CoherenceMsg::Putx { .. }
            | CoherenceMsg::Puts { .. }
            | CoherenceMsg::Unblock { .. }
            | CoherenceMsg::WbData { .. } => {
                debug_assert_eq!(
                    *dst,
                    puno_coherence::home_node(msg.addr(), job.total_nodes),
                    "directory message delivered to a non-home node"
                );
                let dir = &mut *job.dirs.add(idx);
                let pred = &mut *job.preds.add(idx);
                dir.handle_into(job.now, msg.clone(), pred, &mut out.dir_actions);
                if job.capture_dir_state {
                    out.dir_state = Some(dir.trace_state(msg.addr()));
                }
            }
            CoherenceMsg::Inv { .. }
            | CoherenceMsg::FwdGets { .. }
            | CoherenceMsg::FwdGetx { .. } => {
                let n = &mut *job.nodes.add(idx);
                if nacks[i] {
                    n.arm_spurious_nack();
                }
                let mut overlay = OverlayMem {
                    base: memory,
                    writes: &mut out.mem_writes,
                };
                out.effects = n.on_forward(job.now, msg, &mut overlay);
                if n.has_trace_events() {
                    out.node_trace = n.take_trace_buf();
                }
            }
            CoherenceMsg::Data { .. }
            | CoherenceMsg::UpgradeAck { .. }
            | CoherenceMsg::Ack { .. }
            | CoherenceMsg::Nack { .. }
            | CoherenceMsg::WbAck { .. } => {
                let n = &mut *job.nodes.add(idx);
                let mut overlay = OverlayMem {
                    base: memory,
                    writes: &mut out.mem_writes,
                };
                out.effects = n.on_response(job.now, msg, &mut overlay);
                if n.has_trace_events() {
                    out.node_trace = n.take_trace_buf();
                }
            }
            CoherenceMsg::WakeupHint { addr, .. } => {
                let n = &mut *job.nodes.add(idx);
                out.effects = n.on_wakeup_hint(job.now, *addr);
                if n.has_trace_events() {
                    out.node_trace = n.take_trace_buf();
                }
            }
        }
    }
}

/// Everything a worker touches must be `Send` (node, directory bank,
/// predictor, memory image): compile-time proof.
#[allow(dead_code)]
fn assert_worker_state_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<NodeState>();
    assert_send::<DirectoryBank>();
    assert_send::<PredictorImpl>();
    assert_send::<MemoryImage>();
    assert_send::<WaveOutput>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_reads_own_writes_newest_first() {
        let base = MemoryImage::new();
        let mut writes = Vec::new();
        let mut mem = OverlayMem {
            base: &base,
            writes: &mut writes,
        };
        assert_eq!(mem.read(LineAddr(7)), 0);
        mem.write(LineAddr(7), 3);
        mem.write(LineAddr(7), 9);
        assert_eq!(mem.read(LineAddr(7)), 9);
        assert_eq!(writes, vec![(LineAddr(7), 3), (LineAddr(7), 9)]);
    }

    #[test]
    fn shard_ranges_are_contiguous_and_cover_all_owners() {
        for (nodes, workers) in [(16usize, 4usize), (64, 4), (64, 3), (5, 2), (256, 8)] {
            let mut last = 0;
            for owner in 0..nodes {
                let s = shard_of(owner, nodes, workers);
                assert!(s < workers);
                assert!(s >= last, "shard map must be monotone");
                last = s;
            }
            assert_eq!(shard_of(0, nodes, workers), 0);
            assert_eq!(shard_of(nodes - 1, nodes, workers), workers - 1);
        }
    }

    #[test]
    fn pool_barrier_runs_and_shuts_down() {
        // An Idle wave exercises the publish/spin/done/shutdown protocol
        // without touching simulator state.
        let pool = PoolShared::new(3);
        std::thread::scope(|s| {
            for w in 1..3 {
                let shared = &pool;
                s.spawn(move || worker_loop(shared, w));
            }
            let guard = ShutdownGuard(&pool);
            for _ in 0..100 {
                pool.run_wave(WaveJob::default());
            }
            drop(guard);
        });
    }
}
