//! Single-experiment entry point.

use crate::config::SystemConfig;
use crate::error::RunError;
use crate::mechanism::Mechanism;
use crate::metrics::RunMetrics;
use crate::system::System;
use puno_sim::FaultPlan;
use puno_workloads::WorkloadParams;

/// Run `params` under `mechanism` on the paper's Table II system.
pub fn run_workload(mechanism: Mechanism, params: &WorkloadParams, seed: u64) -> RunMetrics {
    let config = SystemConfig::paper(mechanism);
    System::new(config, params, seed).run()
}

/// Like [`run_workload`] but reporting deadlock/livelock as a structured
/// [`RunError`] instead of panicking.
pub fn try_run_workload(
    mechanism: Mechanism,
    params: &WorkloadParams,
    seed: u64,
) -> Result<RunMetrics, RunError> {
    let config = SystemConfig::paper(mechanism);
    System::new(config, params, seed).try_run()
}

/// Run on the paper system with `plan` installed, reporting failures as
/// structured [`RunError`]s. Fault counts land in `RunMetrics::faults`.
pub fn run_workload_with_faults(
    mechanism: Mechanism,
    params: &WorkloadParams,
    seed: u64,
    plan: FaultPlan,
) -> Result<RunMetrics, RunError> {
    let config = SystemConfig::paper(mechanism);
    let mut sys = System::new(config, params, seed);
    sys.set_fault_plan(plan);
    sys.try_run()
}

/// Run with a custom configuration (ablations, sensitivity sweeps).
pub fn run_with_config(config: SystemConfig, params: &WorkloadParams, seed: u64) -> RunMetrics {
    System::new(config, params, seed).run()
}

/// [`run_with_config`] through the process-wide result cache (see
/// [`crate::cache::global_cache`]): with `PUNO_RESULT_CACHE` set, a cell
/// whose `(config, params, seed, engine-version)` digest is already stored
/// replays the persisted metrics without simulating; fresh results are
/// stored on completion. Without the env var this is exactly
/// [`run_with_config`].
pub fn run_with_config_cached(
    config: SystemConfig,
    params: &WorkloadParams,
    seed: u64,
) -> RunMetrics {
    let Some(cache) = crate::cache::global_cache() else {
        return run_with_config(config, params, seed);
    };
    let digest = crate::cache::cell_digest(&config, params, seed);
    if let Some(metrics) = cache.lookup(digest) {
        return metrics;
    }
    let metrics = run_with_config(config, params, seed);
    cache.store(digest, seed, &metrics);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_workloads::micro;

    #[test]
    fn all_mechanisms_complete_the_same_offered_load() {
        let params = micro::read_mostly(15);
        let mut committed = Vec::new();
        for mech in Mechanism::ALL {
            let m = run_workload(mech, &params, 2);
            committed.push(m.committed);
        }
        assert!(committed.windows(2).all(|w| w[0] == w[1]), "{committed:?}");
    }
}
