//! Single-experiment entry point.

use crate::config::SystemConfig;
use crate::error::RunError;
use crate::mechanism::Mechanism;
use crate::metrics::RunMetrics;
use crate::system::System;
use puno_sim::{FaultPlan, TraceConfig, Tracer};
use puno_workloads::WorkloadParams;
use std::path::{Path, PathBuf};

/// Where the JSONL stream for one run goes. `out` set as an existing
/// directory gets a per-cell file name inside it; anything else is taken
/// verbatim as the file path.
pub fn resolve_trace_out(out: &Path, workload: &str, mechanism: &str, seed: u64) -> PathBuf {
    if out.is_dir() {
        out.join(format!("trace_{workload}_{mechanism}_s{seed}.jsonl"))
    } else {
        out.to_path_buf()
    }
}

/// Build the tracer described by `PUNO_TRACE` / `PUNO_TRACE_OUT`, or `None`
/// when tracing is off. Panics on a malformed channel spec — a typo must
/// not silently run untraced — and reports (but survives) an unwritable
/// JSONL path.
pub fn env_tracer(workload: &str, mechanism: &str, seed: u64) -> Option<Tracer> {
    let cfg = match TraceConfig::from_env() {
        Ok(Some(cfg)) => cfg,
        Ok(None) => return None,
        Err(e) => panic!("{e}"),
    };
    let mut tracer = Tracer::ring(cfg.mask, puno_sim::trace::DEFAULT_RING_CAPACITY);
    if let Some(out) = &cfg.out {
        let path = resolve_trace_out(out, workload, mechanism, seed);
        if let Err(e) = tracer.set_jsonl_path(&path) {
            eprintln!("warning: cannot open trace output {}: {e}", path.display());
        }
    }
    Some(tracer)
}

/// Apply the env-var tracing configuration to a freshly built system.
fn install_env_tracer(sys: &mut System, params: &WorkloadParams, seed: u64) {
    crate::obs::init_from_env();
    if let Some(tracer) = env_tracer(&params.name, sys.mechanism().name(), seed) {
        sys.install_tracer(tracer);
    }
    arm_env_snapshots(sys);
    sys.set_run_threads(env_run_threads());
    sys.set_noc_express(env_noc_express());
}

/// Parse a `PUNO_RUN_THREADS` value: the intra-run worker count (see
/// [`System::set_run_threads`]). Unset, unparsable, or `0` all mean 1 —
/// the serial loop.
pub fn parse_run_threads(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// The intra-run worker count requested by `PUNO_RUN_THREADS` (default 1,
/// the serial loop). Applied by every run entry point in this module; the
/// sweep driver additionally folds it into `sweep::effective_workers` so
/// sweep x run threads never oversubscribe the host.
pub fn env_run_threads() -> usize {
    parse_run_threads(std::env::var("PUNO_RUN_THREADS").ok().as_deref())
}

/// Parse a `PUNO_PREFIX_FORK` value: whether sweep cells sharing a
/// mechanism-neutral run prefix fork from one snapshot instead of each
/// replaying it (see `System::fork_from`). On by default; `0`, `off`,
/// `false`, `no`, or an empty value disable it.
pub fn parse_prefix_fork(value: Option<&str>) -> bool {
    match value {
        None => true,
        Some(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v.eq_ignore_ascii_case("0")
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("no"))
        }
    }
}

/// Whether `PUNO_PREFIX_FORK` enables prefix-fork execution (default on).
pub fn env_prefix_fork() -> bool {
    parse_prefix_fork(std::env::var("PUNO_PREFIX_FORK").ok().as_deref())
}

/// Parse a `PUNO_NOC_EXPRESS` value: whether contention-free packets may
/// take the NoC express path (see [`System::set_noc_express`]; bit-identical
/// either way — the knob exists for A/B throughput measurement). On by
/// default; `0`, `off`, `false`, `no`, or an empty value disable it.
pub fn parse_noc_express(value: Option<&str>) -> bool {
    match value {
        None => true,
        Some(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v.eq_ignore_ascii_case("0")
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("no"))
        }
    }
}

/// Whether `PUNO_NOC_EXPRESS` enables express-path admission (default on).
pub fn env_noc_express() -> bool {
    parse_noc_express(std::env::var("PUNO_NOC_EXPRESS").ok().as_deref())
}

/// Parse `PUNO_PREFIX_CYCLES`: an optional cap on the prefix-fork point.
/// The fork point is the *minimum* of this cap and the first-transaction
/// boundary — the cap can only shorten the shared prefix (a later fork
/// point would not be mechanism-neutral), never extend it. `None` when
/// unset or unparsable.
pub fn env_prefix_cycles() -> Option<u64> {
    std::env::var("PUNO_PREFIX_CYCLES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

/// Parse `PUNO_SNAPSHOT_EVERY`: the cycle interval between periodic ring
/// snapshots (see [`System::set_snapshot_every`]). `None` when unset or
/// unparsable; an explicit `Some(0)` means off (and overrides any
/// auto-arming, e.g. on traced sweep retries).
pub fn env_snapshot_every() -> Option<u64> {
    std::env::var("PUNO_SNAPSHOT_EVERY")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

/// Arm the snapshot ring on a freshly built system when
/// `PUNO_SNAPSHOT_EVERY` asks for it.
fn arm_env_snapshots(sys: &mut System) {
    if let Some(every) = env_snapshot_every() {
        if every > 0 {
            sys.set_snapshot_every(every);
        }
    }
}

/// Run `params` under `mechanism` on the paper's Table II system.
pub fn run_workload(mechanism: Mechanism, params: &WorkloadParams, seed: u64) -> RunMetrics {
    let config = SystemConfig::paper(mechanism);
    let mut sys = System::new(config, params, seed);
    install_env_tracer(&mut sys, params, seed);
    sys.run()
}

/// Like [`run_workload`] but reporting deadlock/livelock as a structured
/// [`RunError`] instead of panicking.
pub fn try_run_workload(
    mechanism: Mechanism,
    params: &WorkloadParams,
    seed: u64,
) -> Result<RunMetrics, RunError> {
    let config = SystemConfig::paper(mechanism);
    let mut sys = System::new(config, params, seed);
    install_env_tracer(&mut sys, params, seed);
    sys.try_run()
}

/// Run on the paper system with `plan` installed, reporting failures as
/// structured [`RunError`]s. Fault counts land in `RunMetrics::faults`.
pub fn run_workload_with_faults(
    mechanism: Mechanism,
    params: &WorkloadParams,
    seed: u64,
    plan: FaultPlan,
) -> Result<RunMetrics, RunError> {
    let config = SystemConfig::paper(mechanism);
    let mut sys = System::new(config, params, seed);
    sys.set_fault_plan(plan);
    install_env_tracer(&mut sys, params, seed);
    sys.try_run()
}

/// Run with a custom configuration (ablations, sensitivity sweeps).
pub fn run_with_config(config: SystemConfig, params: &WorkloadParams, seed: u64) -> RunMetrics {
    let mut sys = System::new(config, params, seed);
    install_env_tracer(&mut sys, params, seed);
    sys.run()
}

/// [`run_with_config`] through the process-wide result cache (see
/// [`crate::cache::global_cache`]): with `PUNO_RESULT_CACHE` set, a cell
/// whose `(config, params, seed, engine-version)` digest is already stored
/// replays the persisted metrics without simulating; fresh results are
/// stored on completion. Without the env var this is exactly
/// [`run_with_config`]. A cache hit replays no events, so it emits no
/// trace — use `sweep_all --trace` (which bypasses the cache) to trace a
/// cached cell.
pub fn run_with_config_cached(
    config: SystemConfig,
    params: &WorkloadParams,
    seed: u64,
) -> RunMetrics {
    let Some(cache) = crate::cache::global_cache() else {
        return run_with_config(config, params, seed);
    };
    let digest = crate::cache::cell_digest(&config, params, seed);
    if let Some(metrics) = cache.lookup(digest) {
        return metrics;
    }
    let metrics = run_with_config(config, params, seed);
    let prefix = crate::cache::prefix_digest(&config, params, seed);
    cache.store(digest, prefix, seed, &metrics);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_workloads::micro;

    #[test]
    fn all_mechanisms_complete_the_same_offered_load() {
        let params = micro::read_mostly(15);
        let mut committed = Vec::new();
        for mech in Mechanism::ALL {
            let m = run_workload(mech, &params, 2);
            committed.push(m.committed);
        }
        assert!(committed.windows(2).all(|w| w[0] == w[1]), "{committed:?}");
    }
}
