//! Single-experiment entry point.

use crate::config::SystemConfig;
use crate::mechanism::Mechanism;
use crate::metrics::RunMetrics;
use crate::system::System;
use puno_workloads::WorkloadParams;

/// Run `params` under `mechanism` on the paper's Table II system.
pub fn run_workload(mechanism: Mechanism, params: &WorkloadParams, seed: u64) -> RunMetrics {
    let config = SystemConfig::paper(mechanism);
    System::new(config, params, seed).run()
}

/// Run with a custom configuration (ablations, sensitivity sweeps).
pub fn run_with_config(config: SystemConfig, params: &WorkloadParams, seed: u64) -> RunMetrics {
    System::new(config, params, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_workloads::micro;

    #[test]
    fn all_mechanisms_complete_the_same_offered_load() {
        let params = micro::read_mostly(15);
        let mut committed = Vec::new();
        for mech in Mechanism::ALL {
            let m = run_workload(mech, &params, 2);
            committed.push(m.committed);
        }
        assert!(committed.windows(2).all(|w| w[0] == w[1]), "{committed:?}");
    }
}
