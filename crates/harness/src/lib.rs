//! # puno-harness
//!
//! Full-system assembly: cores executing synthetic transactional programs,
//! private L1s with HTM units, a banked L2 + blocking MESI directory, the
//! PUNO predictor at each bank, and the 4x4 mesh NoC — all driven by one
//! deterministic event loop. On top: the experiment runner (one `RunMetrics`
//! per (workload, mechanism, seed)), a thread-parallel sweep driver, and the
//! report formatting that regenerates the paper's tables and figures.

pub mod cache;
pub mod config;
pub mod error;
pub(crate) mod exec;
pub mod invariants;
pub mod mechanism;
pub mod memory;
pub mod metrics;
pub mod node;
pub mod obs;
pub mod oracle;
pub mod report;
pub mod run;
pub mod sensitivity;
pub mod sweep;
pub mod system;
pub mod telemetry;
pub mod tracefmt;
pub mod warehouse;

pub use cache::{
    cell_digest, global_cache, prefix_digest, CostModel, ResultCache, ENGINE_VERSION,
    PREFIX_FORK_VERSION,
};
pub use config::SystemConfig;
pub use error::RunError;
pub use mechanism::Mechanism;
pub use memory::MemoryImage;
pub use metrics::{HostPerf, RunMetrics};
pub use obs::MetricsRegistry;
pub use oracle::FalseAbortOracle;
pub use run::{run_workload, run_workload_with_faults, try_run_workload};
pub use sweep::{sweep, RetryPolicy, SweepResult};
pub use system::{fork_compatible, PrefixStop, System, SystemSnapshot};
pub use telemetry::{TelemetryCollector, TelemetryConfig, TelemetryReport};
pub use warehouse::{Warehouse, WarehouseRow};
