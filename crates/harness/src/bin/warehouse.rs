//! Offline queries over the cross-run result warehouse (sink 3 of the
//! observability layer — see `puno_harness::warehouse`).
//!
//! Usage: warehouse [--dir <path>] <trend|delta|regress|stats|rows>
//!                  [--baseline <path>]
//!
//! The warehouse directory comes from `--dir` or `PUNO_WAREHOUSE`. Sweeps
//! append one checksummed JSONL row per completed cell there (grouped by
//! `PUNO_RUN_ID`); this binary answers the longitudinal questions:
//!
//! - `trend`: per-workload simulator-throughput trend across recorded runs
//!   (mean simulated Mcycles per wall second; cache-hit rows excluded).
//! - `delta`: per-run PUNO-vs-baseline abort-rate delta per workload, in
//!   percentage points (negative = PUNO aborts less, the paper's claim).
//! - `regress`: compare the latest run's mean wall time per cell against
//!   the persisted bench baseline (`--baseline`, default
//!   `results/BENCH_substrate_baseline.json`); flags ratios above 1.25x
//!   and exits 1 when any workload regresses.
//! - `stats`: row counts and load-recovery counters (corrupt / stale /
//!   duplicate records skipped).
//! - `rows`: dump every valid row as JSONL (for ad-hoc downstream tooling).

use puno_harness::warehouse::{
    self, abort_rate_deltas, compare_vs_bench_baseline, runs_in_order, throughput_trend, Warehouse,
};
use std::path::PathBuf;

const DEFAULT_BASELINE: &str = "results/BENCH_substrate_baseline.json";

/// `regress` flags a workload whose latest mean wall time per cell exceeds
/// this multiple of the bench baseline.
const REGRESS_RATIO: f64 = 1.25;

fn usage() -> ! {
    eprintln!(
        "usage: warehouse [--dir <path>] <trend|delta|regress|stats|rows> [--baseline <path>]\n\
         the warehouse directory comes from --dir or PUNO_WAREHOUSE"
    );
    std::process::exit(2);
}

fn main() {
    let mut dir: Option<PathBuf> = warehouse::env_warehouse();
    let mut baseline = PathBuf::from(DEFAULT_BASELINE);
    let mut command: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--dir" => match argv.next() {
                Some(v) => dir = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--baseline" => match argv.next() {
                Some(v) => baseline = PathBuf::from(v),
                None => usage(),
            },
            "trend" | "delta" | "regress" | "stats" | "rows" if command.is_none() => {
                command = Some(arg)
            }
            _ => usage(),
        }
    }
    let Some(command) = command else { usage() };
    let Some(dir) = dir else {
        eprintln!("no warehouse directory: pass --dir <path> or set PUNO_WAREHOUSE");
        std::process::exit(2);
    };
    let wh = match Warehouse::open(&dir) {
        Ok(wh) => wh,
        Err(e) => {
            eprintln!("cannot open warehouse {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    let (rows, stats) = wh.load();
    if stats.corrupt_skipped > 0 || stats.stale_skipped > 0 || stats.duplicate_collapsed > 0 {
        eprintln!(
            "warehouse recovered: {} corrupt, {} stale row(s) skipped, {} duplicate(s) collapsed",
            stats.corrupt_skipped, stats.stale_skipped, stats.duplicate_collapsed
        );
    }

    match command.as_str() {
        "stats" => {
            println!(
                "warehouse {}: {} row(s) across {} run(s)",
                wh.rows_path().display(),
                stats.kept,
                runs_in_order(&rows).len()
            );
            println!(
                "load recovery: {} corrupt, {} stale skipped; {} duplicate(s) collapsed",
                stats.corrupt_skipped, stats.stale_skipped, stats.duplicate_collapsed
            );
            for (run_id, start) in runs_in_order(&rows) {
                let n = rows.iter().filter(|r| r.run_id == run_id).count();
                let hits = rows
                    .iter()
                    .filter(|r| r.run_id == run_id && r.cache_hit)
                    .count();
                println!("  run {run_id} (t={start}): {n} cell(s), {hits} cache hit(s)");
            }
        }
        "rows" => {
            for row in &rows {
                println!(
                    "{}",
                    serde_json::to_string(row).expect("warehouse row must serialize")
                );
            }
        }
        "trend" => {
            if rows.is_empty() {
                println!("warehouse is empty — record a sweep with PUNO_WAREHOUSE set");
                return;
            }
            println!("== simulator throughput trend (mean Mcycles/s per simulated cell) ==");
            for (workload, points) in throughput_trend(&rows) {
                println!("{workload}:");
                for p in points {
                    println!(
                        "  {:<24} {:>8.2} Mcycles/s  ({} cell(s))",
                        p.run_id, p.mean_mcycles_per_sec, p.cells
                    );
                }
            }
        }
        "delta" => {
            let deltas = abort_rate_deltas(&rows);
            if deltas.is_empty() {
                println!(
                    "no (baseline, puno) pairs recorded — sweep both mechanisms \
                     with PUNO_WAREHOUSE set"
                );
                return;
            }
            println!("== PUNO vs baseline abort rate by recorded run ==");
            for d in deltas {
                println!(
                    "{:<24} {:<10} baseline {:>5.1}%  puno {:>5.1}%  delta {:>+6.2} pp",
                    d.run_id,
                    d.workload,
                    d.baseline_rate * 100.0,
                    d.puno_rate * 100.0,
                    d.delta_pp
                );
            }
        }
        "regress" => {
            let baseline_json = match std::fs::read_to_string(&baseline) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read bench baseline {}: {e}", baseline.display());
                    std::process::exit(2);
                }
            };
            let cmps = compare_vs_bench_baseline(&rows, &baseline_json);
            if cmps.is_empty() {
                println!(
                    "nothing to compare: need simulated (non-cache-hit) rows for workloads \
                     with a system/throughput/<workload> baseline entry"
                );
                return;
            }
            println!(
                "== latest run vs bench baseline {} (flagging > {REGRESS_RATIO}x) ==",
                baseline.display()
            );
            let mut regressed = false;
            for c in &cmps {
                let flag = c.ratio > REGRESS_RATIO;
                regressed |= flag;
                println!(
                    "{:<10} run {:<24} {:>10.0} us/cell vs baseline {:>10.0} us  ratio {:>5.2} {}",
                    c.workload,
                    c.run_id,
                    c.mean_wall_us,
                    c.baseline_us,
                    c.ratio,
                    if flag { "REGRESSED" } else { "ok" }
                );
            }
            if regressed {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
