//! Quick diagnostic: dump mechanism-comparison stats for one workload.
//! Usage: diag [workload|micro-name] [scale]

use puno_harness::Mechanism;
use puno_workloads::{micro, WorkloadId, WorkloadParams};

fn params_by_name(name: &str) -> WorkloadParams {
    match name {
        "hotspot" => micro::hotspot(30),
        "counter" => micro::counter(4, 25),
        "read-mostly" => micro::read_mostly(30),
        other => WorkloadId::ALL
            .iter()
            .find(|w| w.name() == other)
            .map(|w| w.params())
            .unwrap_or_else(|| panic!("unknown workload {other}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("hotspot");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let params = params_by_name(name).scaled(scale);
    let ncap: u64 = std::env::var("PUNO_NCAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(u64::MAX);
    println!("== {} (scale {scale}, ncap {ncap}) ==", params.name);
    for mech in Mechanism::ALL {
        let mut config = puno_harness::SystemConfig::paper(mech);
        config.backoff.notification_cap = ncap;
        if let Ok(f) = std::env::var("PUNO_RFACTOR") {
            config.puno.rollover_factor = f.parse().unwrap();
        }
        if let Ok(v) = std::env::var("PUNO_VTH") {
            config.puno.validity_threshold = v.parse().unwrap();
        }
        let m = puno_harness::run::run_with_config(config, &params, 5);
        println!(
            "{:>9}: cycles {:>9} commits {:>6} aborts {:>7} (rate {:.1}%) nacks {:>7} retries {:>7}",
            mech.name(),
            m.cycles,
            m.committed,
            m.htm.aborts.get(),
            m.htm.abort_rate() * 100.0,
            m.htm.nacks_received.get(),
            m.htm.retries.get(),
        );
        println!(
            "           traffic {:>10} blocking/txgetx {:>8.1} gd {:>6.2} backoff_cy {:>9}",
            m.traffic_router_traversals,
            m.dir_blocking_per_tx_getx(),
            m.htm.gd_ratio(),
            m.htm.backoff_cycles.get(),
        );
        println!(
            "           causes: inv {:>6} rdconf {:>6} nontx {:>4} capacity {:>4}",
            m.htm.aborts_for(puno_htm::AbortCause::TxWriteInvalidation),
            m.htm.aborts_for(puno_htm::AbortCause::TxReadConflict),
            m.htm.aborts_for(puno_htm::AbortCause::NonTxConflict),
            m.htm.aborts_for(puno_htm::AbortCause::Capacity),
        );
        println!(
            "           oracle: episodes {:>7} nacked {:>7} false {:>6} victims {:>7} (frac {:.1}%)",
            m.oracle.tx_getx_episodes,
            m.oracle.nacked_episodes,
            m.oracle.false_abort_episodes,
            m.oracle.false_aborted_transactions,
            m.oracle.false_abort_fraction() * 100.0
        );
        if mech == Mechanism::Puno {
            println!(
                "           puno: opp {} unicast {} declined {} mispred {} acc {:.1}% timeouts {} notif {}",
                m.puno.opportunities.get(),
                m.puno.unicasts.get(),
                m.puno.declined.get(),
                m.puno.mispredictions.get(),
                m.puno.accuracy() * 100.0,
                m.puno.timeouts.get(),
                m.htm.notifications_sent.get(),
            );
        }
    }
}
