//! CI fault smoke: a small sweep with background fault injection must
//! complete every cell without a single structured failure, and the faults
//! must actually have fired. Exits non-zero (for CI) on any failed cell.
//! Usage: fault_smoke [scale] [intensity] [seed]

use puno_harness::sweep::{try_sweep, SweepOptions};
use puno_harness::Mechanism;
use puno_sim::FaultPlan;
use puno_workloads::WorkloadId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let intensity: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

    let workloads = [WorkloadId::Ssca2, WorkloadId::Kmeans, WorkloadId::Intruder];
    let mechanisms = [Mechanism::Baseline, Mechanism::Puno];
    let mut opts = SweepOptions::new(seed, scale);
    opts.fault_plan = FaultPlan::background(seed ^ 0xFA, intensity);

    let t0 = std::time::Instant::now();
    let outcomes = try_sweep(&workloads, &mechanisms, &opts);
    eprintln!("fault smoke took {:.1}s", t0.elapsed().as_secs_f64());

    let mut failures = 0usize;
    let mut total_faults = 0u64;
    for o in &outcomes {
        let key = o.key();
        match (o.metrics(), o.error()) {
            (Some(m), _) => {
                total_faults += m.faults.total();
                println!(
                    "{:<10} {:<14} commits {:>6}  faults {:>5} (jit {} stall {} nack {} abort {})",
                    key.workload.name(),
                    format!("{:?}", key.mechanism),
                    m.committed,
                    m.faults.total(),
                    m.faults.delay_jitters.get(),
                    m.faults.link_stalls.get(),
                    m.faults.spurious_nacks.get(),
                    m.faults.forced_aborts.get(),
                );
            }
            (_, Some(e)) => {
                failures += 1;
                println!(
                    "{:<10} {:<14} FAILED [{}]: {e}",
                    key.workload.name(),
                    format!("{:?}", key.mechanism),
                    e.kind()
                );
            }
            _ => unreachable!(),
        }
    }

    if failures > 0 {
        eprintln!("fault smoke: {failures} cell(s) failed");
        std::process::exit(1);
    }
    if intensity > 0.0 && total_faults == 0 {
        eprintln!("fault smoke: intensity {intensity} but zero faults fired");
        std::process::exit(1);
    }
    println!(
        "fault smoke: all {} cells clean, {total_faults} faults injected",
        outcomes.len()
    );
}
