//! Validate a JSONL trace stream or convert it to Chrome-trace JSON.
//!
//! Usage:
//!   trace_export <trace.jsonl> [--out <chrome.json>]
//!   trace_export <trace.jsonl> --validate [--channels <spec>]
//!
//! Without `--validate`, the stream is converted to the Chrome `traceEvents`
//! format (loadable in `chrome://tracing` / Perfetto) and written to `--out`
//! (stdout by default). With `--validate`, every line must parse as a trace
//! record whose channel is within `--channels` (a `PUNO_TRACE`-style spec,
//! default `all`) and whose cycles never go backwards; the per-channel
//! record counts are printed on success. Exits 1 on a malformed stream,
//! 2 on a usage error.

use puno_harness::tracefmt;
use puno_sim::{ChannelMask, TraceChannel};

struct Args {
    input: String,
    out: Option<String>,
    validate: bool,
    channels: ChannelMask,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_export <trace.jsonl> [--out <chrome.json>] \
         [--validate [--channels <spec>]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut input = None;
    let mut out = None;
    let mut validate = false;
    let mut channels = ChannelMask::ALL;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out = Some(argv.next().unwrap_or_else(|| usage())),
            "--validate" => validate = true,
            "--channels" => {
                let spec = argv.next().unwrap_or_else(|| usage());
                channels = ChannelMask::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            _ if input.is_none() && !arg.starts_with('-') => input = Some(arg),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    Args {
        input,
        out,
        validate,
        channels,
    }
}

fn main() {
    let args = parse_args();
    let text = std::fs::read_to_string(&args.input).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args.input);
        std::process::exit(2);
    });
    if args.validate {
        match tracefmt::validate_jsonl(&text, args.channels) {
            Ok(summary) => {
                println!(
                    "{}: {} records, cycles {}..={}",
                    args.input, summary.lines, summary.first_cycle, summary.last_cycle
                );
                for ch in TraceChannel::ALL {
                    println!("  {:<6} {}", ch.name(), summary.count(ch));
                }
            }
            Err(e) => {
                eprintln!("{}: invalid trace stream: {e}", args.input);
                std::process::exit(1);
            }
        }
        return;
    }
    let records = tracefmt::parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("{}: invalid trace stream: {e}", args.input);
        std::process::exit(1);
    });
    let json = tracefmt::chrome_trace(&records);
    match &args.out {
        Some(path) => std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }),
        None => println!("{json}"),
    }
}
