//! Full 8-workload x 4-mechanism sweep with the figure-shaped summaries.
//! Usage: sweep_all [scale] [seed]

use puno_harness::report::{render_host_perf, FigureMetric, NormalizedFigure};
use puno_harness::sweep::sweep;
use puno_harness::Mechanism;
use puno_workloads::{table1_rows, WorkloadId};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let t0 = std::time::Instant::now();
    let results = sweep(&WorkloadId::ALL, &Mechanism::ALL, seed, scale);
    eprintln!("sweep took {:.1}s", t0.elapsed().as_secs_f64());

    println!("== Table I check (baseline abort rates) ==");
    for row in table1_rows() {
        let m = puno_harness::sweep::find_expect(&results, row.workload, Mechanism::Baseline);
        let rate = m.htm.abort_rate() * 100.0;
        let (lo, hi) = row.expected_abort_band;
        let ok = rate >= lo && rate <= hi;
        println!(
            "{:<10} paper {:>5.1}%  ours {:>5.1}%  band [{:>4.1}, {:>5.1}] {}",
            row.workload.name(),
            row.paper_abort_pct,
            rate,
            lo,
            hi,
            if ok { "ok" } else { "OUT OF BAND" }
        );
    }
    println!("\n== Figure 2: false-aborting fraction of TxGETX (baseline) ==");
    for &w in &WorkloadId::ALL {
        let m = puno_harness::sweep::find_expect(&results, w, Mechanism::Baseline);
        println!(
            "{:<10} {:>5.1}%  (victims/episode mean {:.2})",
            w.name(),
            m.oracle.false_abort_fraction() * 100.0,
            m.oracle.victims_per_episode.mean()
        );
    }
    for metric in [
        FigureMetric::Aborts,
        FigureMetric::NetworkTraffic,
        FigureMetric::DirectoryBlocking,
        FigureMetric::ExecutionTime,
        FigureMetric::GdRatio,
    ] {
        let fig = NormalizedFigure::build(metric, &results, &WorkloadId::ALL, &Mechanism::ALL);
        println!("\n{}", fig.render());
    }
    println!("{}", render_host_perf(&results));
}
