//! Full 8-workload x 4-mechanism sweep with the figure-shaped summaries.
//! Usage: sweep_all [scale] [seed] [--filter <workload|mechanism|workload:mechanism>]
//!                  [--trace <workload>:<mechanism>] [--mesh <4|8|16>]
//!                  [--compact-cache] [--json <path|->]
//!
//! `--filter` restricts the grid: an argument matching a workload name
//! (substring, case-insensitive) keeps only those workloads; one matching a
//! mechanism name keeps only those mechanisms. A `workload:mechanism` pair
//! (exact names) selects individual cells instead — repeatable, and the
//! sweep then prints the raw per-cell summary and host-perf section only
//! (the tables and baseline-normalized figures need the full grid). With
//! `PUNO_RESULT_CACHE` set, unchanged cells replay from the persistent
//! cache (stats go to stderr; stdout stays byte-identical between a cold
//! and a warm run).
//!
//! `--compact-cache` compacts the `PUNO_RESULT_CACHE` directory in place —
//! rewriting `results.jsonl` without corrupt, stale-engine-version, or
//! duplicate records — reports what was dropped, and exits without
//! sweeping.
//!
//! `--mesh 8` / `--mesh 16` runs the sweep on the Table II configuration
//! scaled to an 8x8 (64-node) or 16x16 (256-node) mesh. The paper's
//! Table I / figure expectations are calibrated against the 4x4 machine,
//! so big-mesh runs print the raw per-cell summary and host-perf section
//! only. Combine with `PUNO_RUN_THREADS` to parallelize the big cells.
//!
//! `--json <path>` additionally writes one machine-readable JSON row per
//! swept cell (the warehouse row schema — see
//! `puno_harness::warehouse::WarehouseRow`) as JSONL; `--json -` prints the
//! rows to stdout *instead of* the human report. Live observability (the
//! Prometheus endpoint, progress heartbeat, and warehouse sink) is armed
//! from the environment: see `PUNO_METRICS_ADDR`, `PUNO_PROGRESS`, and
//! `PUNO_WAREHOUSE` in README.md.
//!
//! `--trace` re-runs exactly one cell with full tracing and telemetry
//! instead of sweeping: the JSONL event stream goes to `PUNO_TRACE_OUT`
//! (default: `trace_<workload>_<mechanism>_s<seed>.jsonl` in the current
//! directory), the channel filter honours `PUNO_TRACE` (default: all
//! channels), and the abort-blame / contention-heat / time-series summary
//! prints to stdout. The result cache is bypassed — a cache hit replays no
//! events, so it could never produce a trace. By default the traced run
//! fast-forwards through the mechanism-neutral prefix (everything before
//! the first transaction) with the sinks detached, attaching them at the
//! same snapshot boundary the sweep forks from — metrics are unchanged,
//! but pre-transaction NoC/memory records are absent from the stream; set
//! `PUNO_PREFIX_FORK=0` to trace from cycle 0.

use puno_harness::report::{render_host_perf, render_quarantine, FigureMetric, NormalizedFigure};
use puno_harness::sweep::{try_sweep_rows, CellOutcome, SweepOptions};
use puno_harness::{Mechanism, SweepResult, System, SystemConfig, TelemetryConfig, WarehouseRow};
use puno_workloads::{table1_rows, WorkloadId};
use std::path::PathBuf;

struct Args {
    scale: f64,
    seed: u64,
    workloads: Vec<WorkloadId>,
    mechanisms: Vec<Mechanism>,
    /// Individual cells selected by `--filter workload:mechanism` pairs;
    /// non-empty takes precedence over the axis filters above.
    pairs: Vec<(WorkloadId, Mechanism)>,
    trace: Option<(WorkloadId, Mechanism)>,
    /// Mesh edge length: 4 (the paper machine), 8, or 16.
    mesh: u32,
    /// Compact the result cache and exit instead of sweeping.
    compact_cache: bool,
    /// `--json` destination: a path, or `-` for stdout (which then replaces
    /// the human report).
    json: Option<String>,
}

impl Args {
    fn config_fn(&self) -> fn(Mechanism) -> SystemConfig {
        match self.mesh {
            8 => SystemConfig::mesh8,
            16 => SystemConfig::mesh16,
            _ => SystemConfig::paper,
        }
    }
}

fn lookup_cell(spec: &str) -> Option<(WorkloadId, Mechanism)> {
    let (wl_name, mech_name) = spec.split_once(':')?;
    let wl = WorkloadId::ALL
        .iter()
        .copied()
        .find(|w| w.name().eq_ignore_ascii_case(wl_name))?;
    let mech = Mechanism::ALL
        .iter()
        .copied()
        .find(|m| m.name().eq_ignore_ascii_case(mech_name))?;
    Some((wl, mech))
}

fn parse_args() -> Args {
    let mut positional: Vec<String> = Vec::new();
    let mut filters: Vec<String> = Vec::new();
    let mut pairs: Vec<(WorkloadId, Mechanism)> = Vec::new();
    let mut trace = None;
    let mut mesh = 4u32;
    let mut compact_cache = false;
    let mut json = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--compact-cache" {
            compact_cache = true;
        } else if arg == "--json" {
            let Some(value) = argv.next() else {
                eprintln!("--json requires a destination path (or - for stdout)");
                std::process::exit(2);
            };
            json = Some(value);
        } else if arg == "--mesh" {
            let parsed = argv.next().and_then(|v| v.trim().parse::<u32>().ok());
            match parsed {
                Some(n @ (4 | 8 | 16)) => mesh = n,
                _ => {
                    eprintln!("--mesh requires 4, 8, or 16");
                    std::process::exit(2);
                }
            }
        } else if arg == "--filter" {
            let Some(value) = argv.next() else {
                eprintln!(
                    "--filter requires a value (a workload or mechanism name, \
                     or a workload:mechanism pair)"
                );
                std::process::exit(2);
            };
            if value.contains(':') {
                let Some(cell) = lookup_cell(&value) else {
                    let w_names: Vec<&str> = WorkloadId::ALL.iter().map(|w| w.name()).collect();
                    let m_names: Vec<&str> = Mechanism::ALL.iter().map(|m| m.name()).collect();
                    eprintln!(
                        "--filter {value:?} is not <workload>:<mechanism> with workload in \
                         {w_names:?} and mechanism in {m_names:?}"
                    );
                    std::process::exit(2);
                };
                if !pairs.contains(&cell) {
                    pairs.push(cell);
                }
            } else {
                filters.push(value.to_ascii_lowercase());
            }
        } else if arg == "--trace" {
            let Some(value) = argv.next() else {
                eprintln!("--trace requires <workload>:<mechanism>");
                std::process::exit(2);
            };
            let Some(cell) = lookup_cell(&value) else {
                let w_names: Vec<&str> = WorkloadId::ALL.iter().map(|w| w.name()).collect();
                let m_names: Vec<&str> = Mechanism::ALL.iter().map(|m| m.name()).collect();
                eprintln!(
                    "--trace {value:?} is not <workload>:<mechanism> with workload in {w_names:?} \
                     and mechanism in {m_names:?}"
                );
                std::process::exit(2);
            };
            trace = Some(cell);
        } else {
            positional.push(arg);
        }
    }
    let mut workloads: Vec<WorkloadId> = WorkloadId::ALL.to_vec();
    let mut mechanisms: Vec<Mechanism> = Mechanism::ALL.to_vec();
    for f in &filters {
        let wl: Vec<WorkloadId> = WorkloadId::ALL
            .iter()
            .copied()
            .filter(|w| w.name().to_ascii_lowercase().contains(f))
            .collect();
        let mech: Vec<Mechanism> = Mechanism::ALL
            .iter()
            .copied()
            .filter(|m| m.name().to_ascii_lowercase().contains(f))
            .collect();
        if !wl.is_empty() {
            workloads.retain(|w| wl.contains(w));
        } else if !mech.is_empty() {
            mechanisms.retain(|m| mech.contains(m));
        } else {
            let w_names: Vec<&str> = WorkloadId::ALL.iter().map(|w| w.name()).collect();
            let m_names: Vec<&str> = Mechanism::ALL.iter().map(|m| m.name()).collect();
            eprintln!(
                "--filter {f:?} matches no workload {w_names:?} and no mechanism {m_names:?}"
            );
            std::process::exit(2);
        }
    }
    Args {
        scale: positional
            .first()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.5),
        seed: positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(1),
        workloads,
        mechanisms,
        pairs,
        trace,
        mesh,
        compact_cache,
        json,
    }
}

/// `--json` mode: dump one warehouse-schema row per swept cell as JSONL to
/// `dest` (`-` = stdout).
fn write_json_rows(dest: &str, rows: &[WarehouseRow]) {
    let mut out = String::with_capacity(rows.len() * 256);
    for row in rows {
        out.push_str(&serde_json::to_string(row).expect("warehouse row must serialize"));
        out.push('\n');
    }
    if dest == "-" {
        print!("{out}");
    } else if let Err(e) = std::fs::write(dest, &out) {
        eprintln!("cannot write --json output {dest}: {e}");
        std::process::exit(2);
    } else {
        eprintln!("wrote {} cell row(s) to {dest}", rows.len());
    }
}

/// `--trace` mode: simulate one cell with every sink attached and print
/// the telemetry summary. Never consults the result cache.
fn run_traced_cell(args: &Args, wl: WorkloadId, mech: Mechanism) {
    let params = wl.params().scaled(args.scale);
    let mut sys = System::new(args.config_fn()(mech), &params, args.seed);
    // Fast-forward through the mechanism-neutral prefix with the sinks
    // still detached — the same checkpoint boundary the sweep forks cells
    // from — instead of tracing the pre-transaction warm-up. Metrics are
    // bit-identical either way (the prefix loop is the serial loop with an
    // early stop); only pre-begin NoC/memory records are absent from the
    // stream. `PUNO_PREFIX_FORK=0` restores cycle-0 tracing.
    let mut fast_forwarded = None;
    if puno_harness::run::env_prefix_fork() {
        match sys.run_prefix(puno_harness::run::env_prefix_cycles()) {
            Ok(puno_harness::PrefixStop::Armed { cycle }) => fast_forwarded = Some(cycle),
            Ok(puno_harness::PrefixStop::Completed) => {}
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let mask = match puno_sim::TraceConfig::from_env() {
        Ok(Some(cfg)) => cfg.mask,
        Ok(None) => puno_sim::ChannelMask::ALL,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut tracer = puno_sim::Tracer::ring(mask, puno_sim::trace::DEFAULT_RING_CAPACITY);
    let out = std::env::var_os("PUNO_TRACE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = puno_harness::run::resolve_trace_out(&out, wl.name(), mech.name(), args.seed);
    if let Err(e) = tracer.set_jsonl_path(&path) {
        eprintln!("cannot open trace output {}: {e}", path.display());
        std::process::exit(2);
    }
    sys.install_tracer(tracer);
    sys.enable_telemetry(TelemetryConfig::default());
    let result = sys.try_run_recycled();
    sys.tracer_mut().flush();
    let metrics = match result {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "== traced cell {}:{} (seed {}, scale {}) ==",
        wl.name(),
        mech.name(),
        args.seed,
        args.scale
    );
    println!(
        "cycles {}, committed {}, aborts {}",
        metrics.cycles,
        metrics.committed,
        metrics.htm.aborts.get()
    );
    if let Some(report) = &metrics.telemetry {
        println!("{}", report.render());
    }
    eprintln!(
        "trace: {} JSONL records ({} channels) -> {}",
        sys.tracer().jsonl_lines(),
        mask.spec(),
        path.display()
    );
    if let Some(cycle) = fast_forwarded {
        eprintln!(
            "trace fast-forward: pre-transaction prefix (cycles 0..{cycle}) replayed with \
             sinks detached; set PUNO_PREFIX_FORK=0 to trace from cycle 0"
        );
    }
}

/// Report the process-wide result cache's hit/miss/recovery counters on
/// stderr (stdout stays reserved for the deterministic report).
fn print_cache_stats() {
    if let Some(cache) = puno_harness::global_cache() {
        let s = cache.stats();
        eprintln!(
            "result cache: {} hits, {} misses, {} stored ({} entries)",
            s.hits, s.misses, s.stores, s.entries
        );
        if s.corrupt_skipped > 0 || s.stale_skipped > 0 {
            eprintln!(
                "result cache recovered: {} corrupt, {} stale record(s) skipped at open",
                s.corrupt_skipped, s.stale_skipped
            );
        }
        // Surface the silent open-time maintenance: when recovery found
        // skippable records, the cache compacts the persisted file in
        // place — report what that dropped instead of hiding it.
        if let Some(c) = cache.last_compact() {
            eprintln!(
                "result cache maintenance: compacted to {} record(s); dropped {} corrupt, \
                 {} stale, {} duplicate",
                c.kept, c.dropped_corrupt, c.dropped_stale, c.dropped_duplicate
            );
        }
    }
}

/// `--compact-cache` mode: rewrite the persistent cache without corrupt,
/// stale, or duplicate records, report what was dropped, and exit.
fn run_compact_cache() -> ! {
    let Some(cache) = puno_harness::global_cache() else {
        eprintln!("--compact-cache requires PUNO_RESULT_CACHE to point at a cache directory");
        std::process::exit(2);
    };
    match cache.compact() {
        Ok(s) => {
            println!(
                "result cache compacted: {} record(s) kept; dropped {} corrupt, {} stale, \
                 {} duplicate",
                s.kept, s.dropped_corrupt, s.dropped_stale, s.dropped_duplicate
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("result cache compaction failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `--filter workload:mechanism` mode: run exactly the selected cells —
/// grouped per workload so cells sharing a prefix group still fork from one
/// snapshot — and print the raw per-cell summary plus host perf (the
/// tables and baseline-normalized figures need the full grid).
fn run_pair_cells(args: &Args) {
    let t0 = std::time::Instant::now();
    let mut opts = SweepOptions::new(args.seed, args.scale);
    opts.config = args.config_fn();
    let mut outcomes: Vec<CellOutcome> = Vec::new();
    let mut rows: Vec<WarehouseRow> = Vec::new();
    let mut seen: Vec<WorkloadId> = Vec::new();
    for &(wl, _) in &args.pairs {
        if seen.contains(&wl) {
            continue;
        }
        seen.push(wl);
        let mechs: Vec<Mechanism> = args
            .pairs
            .iter()
            .filter(|&&(w, _)| w == wl)
            .map(|&(_, m)| m)
            .collect();
        let (group_outcomes, group_rows) = try_sweep_rows(&[wl], &mechs, &opts);
        outcomes.extend(group_outcomes);
        rows.extend(group_rows);
    }
    eprintln!("sweep took {:.1}s", t0.elapsed().as_secs_f64());
    let results: Vec<SweepResult> = outcomes
        .iter()
        .filter_map(|o| match o {
            CellOutcome::Ok { key, metrics } => Some(SweepResult {
                workload: key.workload,
                mechanism: key.mechanism,
                metrics: metrics.clone(),
            }),
            _ => None,
        })
        .collect();
    print_cache_stats();
    if let Some(dest) = &args.json {
        write_json_rows(dest, &rows);
        if dest == "-" {
            if render_quarantine(&outcomes).is_some() {
                std::process::exit(1);
            }
            return;
        }
    }
    println!(
        "== cell sweep ({} selected cell(s), seed {}, scale {}) ==",
        args.pairs.len(),
        args.seed,
        args.scale
    );
    for r in &results {
        println!(
            "{:<10} {:<9} cycles {:>9}  commits {:>7}  aborts {:>7}",
            r.workload.name(),
            r.mechanism.name(),
            r.metrics.cycles,
            r.metrics.committed,
            r.metrics.htm.aborts.get()
        );
    }
    println!("{}", render_host_perf(&results));
    if let Some(section) = render_quarantine(&outcomes) {
        print!("\n{section}");
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    // Arm the observability layer (metrics endpoint, heartbeat, warehouse)
    // before any simulation starts so a scraper sees the sweep from cell 0.
    puno_harness::obs::init_from_env();
    if args.compact_cache {
        run_compact_cache();
    }
    if let Some((wl, mech)) = args.trace {
        run_traced_cell(&args, wl, mech);
        return;
    }
    if !args.pairs.is_empty() {
        run_pair_cells(&args);
        return;
    }
    let t0 = std::time::Instant::now();
    let mut opts = SweepOptions::new(args.seed, args.scale);
    opts.config = args.config_fn();
    let (outcomes, rows) = try_sweep_rows(&args.workloads, &args.mechanisms, &opts);
    eprintln!("sweep took {:.1}s", t0.elapsed().as_secs_f64());
    let results: Vec<SweepResult> = outcomes
        .iter()
        .filter_map(|o| match o {
            CellOutcome::Ok { key, metrics } => Some(SweepResult {
                workload: key.workload,
                mechanism: key.mechanism,
                metrics: metrics.clone(),
            }),
            _ => None,
        })
        .collect();
    let quarantine = render_quarantine(&outcomes);
    // A degraded sweep leaves holes in the grid: keep the figures (which
    // index cells by workload x mechanism) to fully-populated workloads and
    // name the missing cells in a final section instead of aborting.
    let mut workloads = args.workloads.clone();
    if quarantine.is_some() {
        workloads.retain(|&w| {
            args.mechanisms
                .iter()
                .all(|&m| puno_harness::sweep::find(&results, w, m).is_some())
        });
    }
    print_cache_stats();
    if let Some(dest) = &args.json {
        write_json_rows(dest, &rows);
        if dest == "-" {
            if quarantine.is_some() {
                std::process::exit(1);
            }
            return;
        }
    }

    // Table I bands and the baseline-normalized figures are calibrated
    // against the 4x4 paper machine; big-mesh sweeps print a raw per-cell
    // summary instead.
    if args.mesh != 4 {
        println!(
            "== {0}x{0} mesh sweep ({1} nodes, seed {2}, scale {3}) ==",
            args.mesh,
            args.mesh * args.mesh,
            args.seed,
            args.scale
        );
        for r in &results {
            println!(
                "{:<10} {:<9} cycles {:>9}  commits {:>7}  aborts {:>7}",
                r.workload.name(),
                r.mechanism.name(),
                r.metrics.cycles,
                r.metrics.committed,
                r.metrics.htm.aborts.get()
            );
        }
    }
    if args.mesh == 4 && args.mechanisms.contains(&Mechanism::Baseline) {
        println!("== Table I check (baseline abort rates) ==");
        for row in table1_rows() {
            if !workloads.contains(&row.workload) {
                continue;
            }
            let m = puno_harness::sweep::find_expect(&results, row.workload, Mechanism::Baseline);
            let rate = m.htm.abort_rate() * 100.0;
            let (lo, hi) = row.expected_abort_band;
            let ok = rate >= lo && rate <= hi;
            println!(
                "{:<10} paper {:>5.1}%  ours {:>5.1}%  band [{:>4.1}, {:>5.1}] {}",
                row.workload.name(),
                row.paper_abort_pct,
                rate,
                lo,
                hi,
                if ok { "ok" } else { "OUT OF BAND" }
            );
        }
        println!("\n== Figure 2: false-aborting fraction of TxGETX (baseline) ==");
        for &w in &workloads {
            let m = puno_harness::sweep::find_expect(&results, w, Mechanism::Baseline);
            println!(
                "{:<10} {:>5.1}%  (victims/episode mean {:.2})",
                w.name(),
                m.oracle.false_abort_fraction() * 100.0,
                m.oracle.victims_per_episode.mean()
            );
        }
    }
    // The figures are baseline-normalized; a mechanism filter that drops
    // the baseline leaves nothing to normalize against.
    if args.mesh == 4 && args.mechanisms.contains(&Mechanism::Baseline) {
        for metric in [
            FigureMetric::Aborts,
            FigureMetric::NetworkTraffic,
            FigureMetric::DirectoryBlocking,
            FigureMetric::ExecutionTime,
            FigureMetric::GdRatio,
        ] {
            let fig = NormalizedFigure::build(metric, &results, &workloads, &args.mechanisms);
            println!("\n{}", fig.render());
        }
    }
    println!("{}", render_host_perf(&results));
    if let Some(section) = quarantine {
        print!("\n{section}");
        std::process::exit(1);
    }
}
