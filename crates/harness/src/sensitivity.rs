//! Sensitivity sweeps over PUNO's design parameters — the design-space
//! exploration behind the ablation binary and the tuning notes in
//! DESIGN.md.

use crate::config::SystemConfig;
use crate::mechanism::Mechanism;
use crate::metrics::RunMetrics;
use crate::run::run_with_config_cached;
use puno_workloads::WorkloadId;
use serde::Serialize;

/// Result of one sensitivity point, aggregated over a workload set.
#[derive(Clone, Debug, Serialize)]
pub struct SensitivityPoint {
    pub label: String,
    pub aborts: u64,
    pub cycles: u64,
    pub traffic: u64,
    pub unicasts: u64,
    pub mispredictions: u64,
    pub false_victims: u64,
}

impl SensitivityPoint {
    fn from_runs(label: String, runs: &[RunMetrics]) -> Self {
        Self {
            label,
            aborts: runs.iter().map(|m| m.htm.aborts.get()).sum(),
            cycles: runs.iter().map(|m| m.cycles).sum(),
            traffic: runs.iter().map(|m| m.traffic_router_traversals).sum(),
            unicasts: runs.iter().map(|m| m.puno.unicasts.get()).sum(),
            mispredictions: runs.iter().map(|m| m.puno.mispredictions.get()).sum(),
            false_victims: runs
                .iter()
                .map(|m| m.oracle.false_aborted_transactions)
                .sum(),
        }
    }

    pub fn accuracy(&self) -> f64 {
        if self.unicasts == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.unicasts as f64
        }
    }
}

fn run_point(
    label: &str,
    config: SystemConfig,
    workloads: &[WorkloadId],
    scale: f64,
    seed: u64,
) -> SensitivityPoint {
    // Cache-aware: sensitivity grids share many cells with prior sweeps and
    // with each other (every grid includes the paper-default point), so a
    // populated `PUNO_RESULT_CACHE` skips the overlap.
    let runs: Vec<RunMetrics> = workloads
        .iter()
        .map(|w| run_with_config_cached(config, &w.params().scaled(scale), seed))
        .collect();
    SensitivityPoint::from_runs(label.to_string(), &runs)
}

/// Sweep the rollover factor (priority freshness window).
pub fn sweep_rollover_factor(
    factors: &[u64],
    workloads: &[WorkloadId],
    scale: f64,
    seed: u64,
) -> Vec<SensitivityPoint> {
    factors
        .iter()
        .map(|&f| {
            let mut c = SystemConfig::paper(Mechanism::Puno);
            c.puno.rollover_factor = f;
            run_point(&format!("rollover-{f}x"), c, workloads, scale, seed)
        })
        .collect()
}

/// Sweep the validity-counter trust threshold.
pub fn sweep_validity_threshold(
    thresholds: &[u8],
    workloads: &[WorkloadId],
    scale: f64,
    seed: u64,
) -> Vec<SensitivityPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let mut c = SystemConfig::paper(Mechanism::Puno);
            c.puno.validity_threshold = t;
            run_point(&format!("validity-{t}"), c, workloads, scale, seed)
        })
        .collect()
}

/// Sweep the notification backoff cap.
pub fn sweep_notification_cap(
    caps: &[u64],
    workloads: &[WorkloadId],
    scale: f64,
    seed: u64,
) -> Vec<SensitivityPoint> {
    caps.iter()
        .map(|&cap| {
            let mut c = SystemConfig::paper(Mechanism::Puno);
            c.backoff.notification_cap = cap;
            let label = if cap == u64::MAX {
                "ncap-inf".to_string()
            } else {
                format!("ncap-{cap}")
            };
            run_point(&label, c, workloads, scale, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollover_sweep_produces_distinct_behaviour() {
        let pts = sweep_rollover_factor(&[1, 8], &[WorkloadId::Intruder], 0.05, 1);
        assert_eq!(pts.len(), 2);
        // A longer freshness window must not reduce unicast volume.
        assert!(
            pts[1].unicasts >= pts[0].unicasts,
            "8x {} vs 1x {}",
            pts[1].unicasts,
            pts[0].unicasts
        );
        for p in &pts {
            assert!(p.cycles > 0);
            assert!((0.0..=1.0).contains(&p.accuracy()));
        }
    }

    #[test]
    fn validity_sweep_trades_coverage_for_accuracy() {
        let pts = sweep_validity_threshold(&[2, 3], &[WorkloadId::Intruder], 0.05, 1);
        assert!(
            pts[1].unicasts <= pts[0].unicasts,
            "stricter threshold cannot unicast more"
        );
    }
}
