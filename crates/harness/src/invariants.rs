//! Global coherence/HTM invariant checking.
//!
//! The serializability oracle checks end-to-end value conservation; this
//! module checks *structural* invariants at a point in time, across every
//! L1 and directory bank in the system:
//!
//! 1. **Single writer**: at most one L1 holds a line in E/M, and then no
//!    other L1 holds it at all.
//! 2. **Directory-owner agreement**: if a directory entry is Owned, the
//!    recorded owner actually holds the line in E/M *or* has a writeback
//!    in flight for it (PUTX/PUTS racing the forward).
//! 3. **Sharer conservatism**: every L1 holding a line in S appears in the
//!    home's sharer list (the reverse is allowed: silent evictions leave
//!    stale sharers).
//!
//! Checks run between events, when no message is "half-applied". They are
//! expensive (full scan), so the system invokes them through
//! [`crate::system::System::check_invariants`], which tests call at
//! chosen points; release experiment runs skip them.

use crate::node::NodeState;
use puno_coherence::directory::DirectoryBank;
use puno_coherence::l1::LineState;
use puno_sim::{LineAddr, NodeId};
use std::collections::BTreeMap;

/// A detected violation, with enough context to debug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    MultipleWriters {
        addr: LineAddr,
        holders: Vec<NodeId>,
    },
    WriterWithReaders {
        addr: LineAddr,
        writer: NodeId,
        readers: Vec<NodeId>,
    },
    OwnerDisagreement {
        addr: LineAddr,
        dir_owner: NodeId,
    },
    UntrackedSharer {
        addr: LineAddr,
        sharer: NodeId,
    },
}

/// Scan the whole system for invariant violations.
pub fn check(nodes: &[NodeState], dirs: &[DirectoryBank], lines: &[LineAddr]) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Gather per-line L1 states.
    let mut states: BTreeMap<LineAddr, Vec<(NodeId, LineState)>> = BTreeMap::new();
    for node in nodes {
        for &addr in lines {
            if let Some(s) = node.l1.state(addr) {
                states.entry(addr).or_default().push((node.id, s));
            }
        }
    }

    for &addr in lines {
        let holders = states.get(&addr).cloned().unwrap_or_default();
        let writers: Vec<NodeId> = holders
            .iter()
            .filter(|(_, s)| s.writable())
            .map(|(n, _)| *n)
            .collect();
        let readers: Vec<NodeId> = holders
            .iter()
            .filter(|(_, s)| !s.writable())
            .map(|(n, _)| *n)
            .collect();

        // 1. Single writer.
        if writers.len() > 1 {
            violations.push(Violation::MultipleWriters {
                addr,
                holders: writers.clone(),
            });
        }
        if writers.len() == 1 && !readers.is_empty() {
            violations.push(Violation::WriterWithReaders {
                addr,
                writer: writers[0],
                readers: readers.clone(),
            });
        }

        let home = puno_coherence::home_node(addr, nodes.len() as u16);
        let bank = &dirs[home.index()];
        // Skip in-flight episodes: transient states legitimately disagree.
        if bank.is_busy(addr) {
            continue;
        }

        // 2. Directory-owner agreement.
        if let Some(owner) = bank.owner_of(addr) {
            let node = &nodes[owner.index()];
            let holds = node.l1.state(addr).is_some_and(|s| s.writable());
            let wb_pending = node.wb_buffer.contains_key(addr);
            let sticky = node.sticky_owned.contains(addr);
            if !holds && !wb_pending && !sticky {
                violations.push(Violation::OwnerDisagreement {
                    addr,
                    dir_owner: owner,
                });
            }
        }

        // 3. Sharer conservatism (S holders tracked at the home).
        let dir_holders = bank.holders_of(addr);
        for &(n, s) in &holders {
            if s == LineState::Shared && !dir_holders.contains(n) {
                violations.push(Violation::UntrackedSharer { addr, sharer: n });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    // The checker itself is exercised end-to-end through
    // `System::check_invariants` (see crates/harness/tests and the system
    // unit tests); here we only pin the violation formatting contract.
    use super::*;

    #[test]
    fn violations_carry_debuggable_context() {
        let v = Violation::MultipleWriters {
            addr: LineAddr(5),
            holders: vec![NodeId(1), NodeId(2)],
        };
        let text = format!("{v:?}");
        assert!(text.contains("L0x5"));
        assert!(text.contains("N1"));
    }
}
