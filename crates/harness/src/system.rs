//! The assembled system and its deterministic event loop.

use crate::config::SystemConfig;
use crate::error::RunError;
use crate::exec;
use crate::mechanism::Mechanism;
use crate::memory::MemoryImage;
use crate::metrics::RunMetrics;
use crate::node::{Effects, NodeState};
use crate::oracle::FalseAbortOracle;
use crate::telemetry::{TelemetryCollector, TelemetryConfig};
use puno_coherence::directory::{DirAction, DirectoryBank};
use puno_coherence::l1::L1Cache;
use puno_coherence::msg::{CoherenceMsg, TxInfo};
use puno_coherence::predictor::{NullPredictor, PredictedTarget, UnicastPredictor};
use puno_coherence::sharers::SharerSet;
use puno_core::{PunoPredictor, PunoStats, TxLengthBuffer};
use puno_htm::rmw::RmwPredictor;
use puno_htm::unit::HtmUnit;
use puno_htm::{BackoffEngine, HtmStats};
use puno_noc::Network;
use puno_sim::{
    ChannelMask, Cycle, Cycles, EventQueue, FaultInjector, FaultKind, FaultPlan, LineAddr, NodeId,
    SimRng, TraceChannel, TraceEvent, Tracer,
};
use puno_workloads::{ProgramSet, WorkloadParams};
use std::collections::VecDeque;
use std::sync::Arc;

/// How many periodic snapshots the run loop retains (oldest evicted).
const SNAPSHOT_RING_CAPACITY: usize = 4;

/// Trace-ring capacity used for the rewind-and-dump replay: large enough to
/// hold the events of a full watchdog window in the failure regimes the
/// rewind exists for (NACK storms cycle through a bounded message set).
const REWIND_TRACE_CAPACITY: usize = 4096;

/// Default for NoC express-path admission (see [`System::set_noc_express`]).
/// On: express is bit-identical to stepping, so there is no accuracy trade —
/// only the `PUNO_NOC_EXPRESS=0` escape hatch for A/B measurement.
const DEFAULT_NOC_EXPRESS: bool = true;

/// Simulation events.
#[derive(Clone, Debug)]
pub(crate) enum Event {
    /// Resume a node's core FSM (stale epochs are dropped).
    NodeWake { node: NodeId, epoch: u64 },
    /// Advance the network one cycle (re-armed while packets are in
    /// flight).
    NetStep,
    /// A delayed directory send (L2 access / prediction latency elapsed).
    DirSend {
        home: NodeId,
        dst: NodeId,
        msg: CoherenceMsg,
    },
    /// Off-chip memory fetch finished at a home bank.
    MemReady { home: NodeId, addr: LineAddr },
    /// A fault-jittered message whose extra delay has elapsed; injects
    /// without re-probing the fault streams.
    FaultedInject {
        src: NodeId,
        dst: NodeId,
        msg: CoherenceMsg,
    },
    /// A fault fires (scheduled in the plan, or a rate-drawn forced abort
    /// aimed mid-transaction).
    Fault {
        kind: FaultKind,
        node: NodeId,
        magnitude: Cycles,
    },
}

/// Per-bank predictor: baseline banks never unicast; PUNO banks run the
/// P-Buffer/UD machinery.
#[derive(Clone)]
pub(crate) enum PredictorImpl {
    Null(NullPredictor),
    Puno(Box<PunoPredictor>),
}

impl UnicastPredictor for PredictorImpl {
    fn observe_request(&mut self, now: Cycle, node: NodeId, info: &TxInfo) {
        match self {
            PredictorImpl::Null(p) => p.observe_request(now, node, info),
            PredictorImpl::Puno(p) => p.observe_request(now, node, info),
        }
    }

    fn predict_unicast(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        requester: NodeId,
        req: &TxInfo,
        holders: SharerSet,
        exclusive_owner: bool,
    ) -> Option<PredictedTarget> {
        match self {
            PredictorImpl::Null(p) => {
                p.predict_unicast(now, addr, requester, req, holders, exclusive_owner)
            }
            PredictorImpl::Puno(p) => {
                p.predict_unicast(now, addr, requester, req, holders, exclusive_owner)
            }
        }
    }

    fn on_mispredict_feedback(&mut self, now: Cycle, addr: LineAddr, node: NodeId) {
        match self {
            PredictorImpl::Null(p) => p.on_mispredict_feedback(now, addr, node),
            PredictorImpl::Puno(p) => p.on_mispredict_feedback(now, addr, node),
        }
    }

    fn after_service(&mut self, now: Cycle, addr: LineAddr, holders: SharerSet) {
        match self {
            PredictorImpl::Null(p) => p.after_service(now, addr, holders),
            PredictorImpl::Puno(p) => p.after_service(now, addr, holders),
        }
    }

    fn decision_latency(&self) -> Cycle {
        match self {
            PredictorImpl::Null(p) => p.decision_latency(),
            PredictorImpl::Puno(p) => p.decision_latency(),
        }
    }
}

/// A copy-on-write checkpoint of a [`System`]'s simulated state.
///
/// Produced by [`System::snapshot`]; [`System::restore`] rewinds the system
/// to it exactly (bit-identical continuation, validated by the resilience
/// property tests). The state lives behind an [`Arc`], so cloning a
/// snapshot — the ring rotating, a caller stashing one — is a pointer copy;
/// the deep clone happens once, at capture.
///
/// Host-side observability (tracer, telemetry, wall-clock and throughput
/// counters) is deliberately *not* captured: those sinks describe the host
/// run, not the simulated machine, and restoring keeps whatever is
/// currently installed — which is what lets the rewind-and-dump path replay
/// a failure window with tracing forced on without perturbing behaviour.
#[derive(Clone)]
pub struct SystemSnapshot {
    state: Arc<SnapshotState>,
}

impl SystemSnapshot {
    /// Simulated cycle at which the snapshot was taken.
    pub fn cycle(&self) -> Cycle {
        self.state.last_cycle
    }
}

/// How [`System::run_prefix`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefixStop {
    /// Stopped at an event boundary with some node poised to issue its
    /// first TX_BEGIN (or at the `cap` override, whichever came first);
    /// `cycle` is the boundary. The state is mechanism-neutral — snapshot
    /// it and [`System::fork_from`] every sibling cell.
    Armed { cycle: Cycle },
    /// The run finished before any node reached a transaction: there is
    /// nothing mechanism-dependent left to fork.
    Completed,
}

/// Whether two configurations agree on everything except the mechanism
/// axis — the precondition for [`System::fork_from`]. Compared on the
/// canonical `Debug` representation with the mechanism normalized out (the
/// same canonical form the result-cache digests hash), so any added config
/// field is covered automatically.
pub fn fork_compatible(a: &SystemConfig, b: &SystemConfig) -> bool {
    let mut a = *a;
    let mut b = *b;
    a.mechanism = Mechanism::Baseline;
    b.mechanism = Mechanism::Baseline;
    format!("{a:?}") == format!("{b:?}")
}

/// The deep-cloned simulated state behind a [`SystemSnapshot`].
struct SnapshotState {
    config: SystemConfig,
    workload_name: String,
    seed: u64,
    queue: EventQueue<Event>,
    network: Network<CoherenceMsg>,
    nodes: Vec<NodeState>,
    dirs: Vec<DirectoryBank>,
    predictors: Vec<PredictorImpl>,
    memory: MemoryImage,
    oracle: FalseAbortOracle,
    fault: FaultInjector,
    pending_jitter: Vec<Cycles>,
    net_step_armed: bool,
    nodes_done: usize,
    finish_cycle: Cycle,
    last_cycle: Cycle,
    watchdog_next: Cycle,
    watchdog_last: u64,
    progress_commits: u64,
}

pub struct System {
    config: SystemConfig,
    workload_name: String,
    seed: u64,
    queue: EventQueue<Event>,
    network: Network<CoherenceMsg>,
    nodes: Vec<NodeState>,
    dirs: Vec<DirectoryBank>,
    predictors: Vec<PredictorImpl>,
    memory: MemoryImage,
    oracle: FalseAbortOracle,
    net_step_armed: bool,
    nodes_done: usize,
    finish_cycle: Cycle,
    tracer: Tracer,
    /// Aggregating collector for `RunMetrics::telemetry` (off by default).
    telemetry: Option<TelemetryCollector>,
    /// Channels some sink wants: the tracer's mask unioned with what the
    /// telemetry collector needs. Cached so the per-event check is one
    /// bit test; [`System::recompute_trace_masks`] keeps it (and the
    /// per-node HTM masks) coherent.
    trace_mask: ChannelMask,
    fault: FaultInjector,
    /// Extra delay owed to each node's next injected message (accumulated
    /// by scheduled `DelayJitter` fault events).
    pending_jitter: Vec<Cycles>,
    /// Cycle of the most recently popped event (failure diagnostics).
    last_cycle: Cycle,
    /// Forward-progress watchdog: next sampling cycle and the progress
    /// marker (commits + retired nodes) captured at the previous sample.
    watchdog_next: Cycle,
    watchdog_last: u64,
    /// Running total of transaction commits, maintained by `apply_effects`
    /// so the watchdog's progress marker is O(1) instead of an all-nodes
    /// stats sum.
    progress_commits: u64,
    /// Reused scratch for directory action emission (kept empty between
    /// events; taken/restored around each directory call).
    dir_scratch: Vec<DirAction>,
    /// Reused scratch for per-cycle network deliveries.
    delivery_scratch: Vec<(NodeId, CoherenceMsg)>,
    /// Periodic-snapshot interval in cycles (0 = off; see
    /// [`System::set_snapshot_every`]).
    snapshot_every: Cycle,
    /// Next cycle at or after which the run loop captures a ring snapshot.
    next_snapshot_at: Cycle,
    /// The retained periodic snapshots, oldest first.
    snapshot_ring: VecDeque<SystemSnapshot>,
    /// Host-side throughput accounting (never affects simulated behaviour).
    events_dispatched: u64,
    peak_queue_depth: usize,
    host_wall_secs: f64,
    /// Intra-run worker count (see [`System::set_run_threads`]); 1 = the
    /// serial loop. Host-side execution strategy, deliberately not part of
    /// snapshots (a restore keeps the current setting).
    run_threads: usize,
    /// NoC express-path admission (see [`System::set_noc_express`]). Like
    /// `run_threads`, a host execution strategy: not part of `SystemConfig`
    /// or snapshots; a restore keeps the current setting (re-applied to the
    /// restored network, whose clone carries the source system's flag).
    noc_express: bool,
    /// Cycles the NetStep token skipped while every in-network packet was
    /// an express flight (host-side accounting; see `advance_net_token`).
    quiesced_cycles: u64,
    /// Parallel-executor accounting: waves handed to the pool, summed
    /// per-shard busy time, and summed wave wall-clock span (for the
    /// worker-idle fraction in [`crate::metrics::HostPerf`]).
    par_waves: u64,
    par_busy_ns: u64,
    par_span_ns: u64,
    /// Scratch for the wave scanner's duplicate-wake cut (kept all-false
    /// between scans).
    wave_seen: Vec<bool>,
    /// Live-observability sampling interval override (see
    /// [`System::set_obs_sample_every`]). `None` = read
    /// `PUNO_OBS_SAMPLE_CYCLES` when the global registry is enabled;
    /// `Some(0)` = force off; `Some(n)` = sample every `n` cycles.
    /// Host-side only: not part of `SystemConfig` or snapshots.
    obs_sample_every: Option<Cycle>,
    /// Active per-run metrics sampler, armed by `run_loop` when the global
    /// registry is enabled. Publishes sim-cycle/event totals and rates;
    /// never touches simulated state, so it is excluded from snapshots and
    /// never re-armed during forensic replay (`rewind_and_dump` drives
    /// `run_loop_inner` directly).
    obs_sampler: Option<Box<crate::obs::RunSampler>>,
}

impl System {
    /// Assemble a system running `params` under `config.mechanism`.
    pub fn new(config: SystemConfig, params: &WorkloadParams, seed: u64) -> Self {
        let programs = ProgramSet::generate(params, config.nodes(), seed);
        Self::new_shared(config, params, seed, &programs)
    }

    /// Like [`System::new`], but replaying an already generated
    /// [`ProgramSet`] instead of regenerating the trace. The set must come
    /// from the same `(params, seed)` (and cover the mesh); sharing it
    /// across mechanism cells and retries is what makes sweep-scale
    /// execution cheap without touching simulated behaviour.
    pub fn new_shared(
        config: SystemConfig,
        params: &WorkloadParams,
        seed: u64,
        programs: &ProgramSet,
    ) -> Self {
        let nodes_n = config.nodes();
        assert_eq!(
            programs.nodes(),
            nodes_n,
            "program set does not cover the mesh"
        );
        debug_assert_eq!(
            programs.seed, seed,
            "program set generated for another seed"
        );
        let root_rng = SimRng::new(seed);
        // Steady state holds roughly one wake per node plus in-flight
        // protocol events; pre-size so the hot loop never grows the queue.
        let mut queue = EventQueue::with_capacity(4 * nodes_n as usize);
        let mut nodes = Vec::with_capacity(nodes_n as usize);
        for i in 0..nodes_n {
            let id = NodeId(i);
            let rmw = config
                .mechanism
                .uses_rmw_predictor()
                .then(RmwPredictor::paper);
            let mut node = NodeState::new(
                id,
                nodes_n,
                L1Cache::new(config.l1),
                HtmUnit::new(id, config.abort_timing, rmw),
                TxLengthBuffer::new(config.puno.txlb_entries),
                BackoffEngine::new(
                    config.mechanism.backoff_kind(),
                    config.backoff,
                    root_rng.derive(0xB0FF ^ i as u64),
                ),
                programs.node(id),
                config.commit_latency,
                config.mechanism.uses_puno() && config.puno.notification_enabled,
            );
            node.set_wakeup_hints(config.mechanism.uses_puno() && config.puno.wakeup_hints);
            if let Some(sig_cfg) = config.signatures {
                node.htm.enable_signatures(sig_cfg);
            }
            queue.schedule_at(0, Event::NodeWake { node: id, epoch: 0 });
            nodes.push(node);
        }
        let dirs = (0..nodes_n)
            .map(|i| DirectoryBank::new(NodeId(i), config.dir))
            .collect();
        // The P-Buffer has exactly one entry per node (Table II); size it
        // to the mesh so non-4x4 configurations work and so the predictor's
        // timestamp decoding (begin = ts / nodes) stays correct.
        let mut puno_cfg = config.puno;
        puno_cfg.pbuffer_entries = nodes_n as usize;
        let predictors = (0..nodes_n)
            .map(|_| {
                if config.mechanism.uses_puno() {
                    PredictorImpl::Puno(Box::new(PunoPredictor::new(puno_cfg)))
                } else {
                    PredictorImpl::Null(NullPredictor)
                }
            })
            .collect();
        let mut network = Network::new(config.mesh, config.noc);
        network.set_express(DEFAULT_NOC_EXPRESS);
        Self {
            workload_name: params.name.clone(),
            seed,
            queue,
            network,
            nodes,
            dirs,
            predictors,
            memory: MemoryImage::new(),
            oracle: FalseAbortOracle::default(),
            net_step_armed: false,
            nodes_done: 0,
            finish_cycle: 0,
            tracer: Tracer::off(),
            telemetry: None,
            trace_mask: ChannelMask::NONE,
            fault: FaultInjector::new(FaultPlan::none()),
            pending_jitter: vec![0; nodes_n as usize],
            last_cycle: 0,
            watchdog_next: config.watchdog_window,
            watchdog_last: 0,
            progress_commits: 0,
            dir_scratch: Vec::with_capacity(8),
            delivery_scratch: Vec::with_capacity(nodes_n as usize),
            snapshot_every: 0,
            next_snapshot_at: 0,
            snapshot_ring: VecDeque::new(),
            events_dispatched: 0,
            peak_queue_depth: 0,
            host_wall_secs: 0.0,
            run_threads: 1,
            noc_express: DEFAULT_NOC_EXPRESS,
            quiesced_cycles: 0,
            par_waves: 0,
            par_busy_ns: 0,
            par_span_ns: 0,
            wave_seen: vec![false; nodes_n as usize],
            obs_sample_every: None,
            obs_sampler: None,
            config,
        }
    }

    /// Re-target a finished (or failed) system at a new cell, reusing its
    /// allocations — event-queue buckets, router buffers, directory entry
    /// tables, L1 tag arrays, HTM scratch, memory image — instead of
    /// constructing from scratch. Bit-identical to
    /// `System::new_shared(config, params, seed, programs)`: every leaf
    /// reset restores exactly the state its constructor builds, validated
    /// by the `sweep_engine` golden test. Falls back to full construction
    /// when the geometry (mesh, NoC, L1, directory config) changes.
    pub fn reset(
        &mut self,
        config: SystemConfig,
        params: &WorkloadParams,
        seed: u64,
        programs: &ProgramSet,
    ) {
        let nodes_n = config.nodes();
        let same_geometry = nodes_n == self.nodes.len() as u16
            && config.mesh == self.config.mesh
            && config.noc == self.config.noc
            && config.l1 == self.config.l1
            && config.dir == self.config.dir;
        if !same_geometry {
            *self = System::new_shared(config, params, seed, programs);
            return;
        }
        assert_eq!(
            programs.nodes(),
            nodes_n,
            "program set does not cover the mesh"
        );
        debug_assert_eq!(
            programs.seed, seed,
            "program set generated for another seed"
        );
        let root_rng = SimRng::new(seed);
        self.queue.reset();
        for i in 0..nodes_n {
            let id = NodeId(i);
            let rmw = config
                .mechanism
                .uses_rmw_predictor()
                .then(RmwPredictor::paper);
            let node = &mut self.nodes[i as usize];
            node.reset(
                nodes_n,
                config.l1,
                config.abort_timing,
                rmw,
                TxLengthBuffer::new(config.puno.txlb_entries),
                BackoffEngine::new(
                    config.mechanism.backoff_kind(),
                    config.backoff,
                    root_rng.derive(0xB0FF ^ i as u64),
                ),
                programs.node(id),
                config.commit_latency,
                config.mechanism.uses_puno() && config.puno.notification_enabled,
            );
            node.set_wakeup_hints(config.mechanism.uses_puno() && config.puno.wakeup_hints);
            if let Some(sig_cfg) = config.signatures {
                node.htm.enable_signatures(sig_cfg);
            }
            self.queue
                .schedule_at(0, Event::NodeWake { node: id, epoch: 0 });
        }
        for d in &mut self.dirs {
            d.reset();
        }
        let mut puno_cfg = config.puno;
        puno_cfg.pbuffer_entries = nodes_n as usize;
        for p in &mut self.predictors {
            *p = if config.mechanism.uses_puno() {
                PredictorImpl::Puno(Box::new(PunoPredictor::new(puno_cfg)))
            } else {
                PredictorImpl::Null(NullPredictor)
            };
        }
        self.network.reset();
        self.memory.clear();
        self.workload_name.clear();
        self.workload_name.push_str(&params.name);
        self.seed = seed;
        self.oracle = FalseAbortOracle::default();
        self.net_step_armed = false;
        self.nodes_done = 0;
        self.finish_cycle = 0;
        self.tracer = Tracer::off();
        self.telemetry = None;
        self.trace_mask = ChannelMask::NONE;
        self.fault = FaultInjector::new(FaultPlan::none());
        self.pending_jitter.fill(0);
        self.last_cycle = 0;
        self.watchdog_next = config.watchdog_window;
        self.watchdog_last = 0;
        self.progress_commits = 0;
        self.snapshot_every = 0;
        self.next_snapshot_at = 0;
        self.snapshot_ring.clear();
        self.events_dispatched = 0;
        self.peak_queue_depth = 0;
        self.host_wall_secs = 0.0;
        self.run_threads = 1;
        self.noc_express = DEFAULT_NOC_EXPRESS;
        self.network.set_express(self.noc_express);
        self.quiesced_cycles = 0;
        self.par_waves = 0;
        self.par_busy_ns = 0;
        self.par_span_ns = 0;
        self.wave_seen.fill(false);
        self.obs_sample_every = None;
        self.obs_sampler = None;
        self.config = config;
    }

    /// Cheap alternative to [`System::reset`] for a recycled worker System
    /// that is about to be materialized by [`System::fork_from`]: clears
    /// exactly the host-side counters, sinks, and snapshot ring that
    /// `reset` clears and `restore` deliberately keeps, but skips
    /// reinitializing the simulated state (queue, nodes, directories,
    /// predictors, memory, network) — the fork's restore replaces all of
    /// it wholesale. Returns `false` when this System's geometry differs
    /// from `config` (the per-node scratch buffers would not fit the
    /// restored state); callers fall back to a full `reset`.
    pub fn prepare_fork_target(&mut self, config: &SystemConfig) -> bool {
        let nodes_n = config.nodes();
        let same_geometry = nodes_n == self.nodes.len() as u16
            && config.mesh == self.config.mesh
            && config.noc == self.config.noc
            && config.l1 == self.config.l1
            && config.dir == self.config.dir;
        if !same_geometry {
            return false;
        }
        self.tracer = Tracer::off();
        self.telemetry = None;
        self.trace_mask = ChannelMask::NONE;
        self.snapshot_every = 0;
        self.next_snapshot_at = 0;
        self.snapshot_ring.clear();
        self.events_dispatched = 0;
        self.peak_queue_depth = 0;
        self.host_wall_secs = 0.0;
        self.run_threads = 1;
        self.noc_express = DEFAULT_NOC_EXPRESS;
        self.quiesced_cycles = 0;
        self.par_waves = 0;
        self.par_busy_ns = 0;
        self.par_span_ns = 0;
        self.wave_seen.fill(false);
        self.obs_sample_every = None;
        self.obs_sampler = None;
        true
    }

    /// Set the intra-run worker count for subsequent runs. `1` (the
    /// default) is exactly today's serial loop; `n > 1` runs each cycle's
    /// independent events on a persistent pool of `n` threads (capped at
    /// the node count), merged so `RunMetrics` stays bit-identical — see
    /// `crates/harness/src/exec.rs`. Callers compose this with sweep-level
    /// parallelism via `sweep::effective_workers`.
    pub fn set_run_threads(&mut self, threads: usize) {
        self.run_threads = threads.max(1);
    }

    /// The configured intra-run worker count.
    pub fn run_threads(&self) -> usize {
        self.run_threads
    }

    /// Allow or forbid NoC express-path admission for subsequent runs.
    /// On (the default) is bit-identical to off — admission requires the
    /// stepped schedule to be fully determined, so the express path replays
    /// it exactly (gated by the golden suite and `tests/noc_express.rs`);
    /// only host throughput changes. The flag gates *admission* only:
    /// flights already in the air still deliver (or collapse) identically,
    /// so flipping it mid-run — including via snapshot/restore across
    /// systems with different settings — is always safe.
    pub fn set_noc_express(&mut self, enabled: bool) {
        self.noc_express = enabled;
        self.network.set_express(enabled);
    }

    /// Whether NoC express-path admission is enabled.
    pub fn noc_express(&self) -> bool {
        self.noc_express
    }

    /// Capture a copy-on-write checkpoint of the simulated state. The
    /// clone is deep (event queue, NoC buffers, L1 ways, directory banks,
    /// HTM units, predictor tables, RNG streams, watchdog state) but
    /// one-time: the result shares it behind an [`Arc`], so keeping or
    /// re-cloning snapshots afterwards is free.
    ///
    /// Consistent only *between* events — the run loop snapshots at cycle
    /// boundaries, after the current cycle's batch has fully dispatched
    /// (mid-batch, popped-but-undispatched events would be lost).
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            state: Arc::new(SnapshotState {
                config: self.config,
                workload_name: self.workload_name.clone(),
                seed: self.seed,
                queue: self.queue.clone(),
                network: self.network.clone(),
                nodes: self.nodes.clone(),
                dirs: self.dirs.clone(),
                predictors: self.predictors.clone(),
                memory: self.memory.clone(),
                oracle: self.oracle.clone(),
                fault: self.fault.clone(),
                pending_jitter: self.pending_jitter.clone(),
                net_step_armed: self.net_step_armed,
                nodes_done: self.nodes_done,
                finish_cycle: self.finish_cycle,
                last_cycle: self.last_cycle,
                watchdog_next: self.watchdog_next,
                watchdog_last: self.watchdog_last,
                progress_commits: self.progress_commits,
            }),
        }
    }

    /// Rewind the simulated state to `snap` exactly; continuing the run
    /// from here is bit-identical to a run that never detoured (validated
    /// by the resilience property tests). The currently installed tracer,
    /// telemetry collector, and host-side counters are kept — they
    /// describe the host run, not the simulated machine.
    pub fn restore(&mut self, snap: &SystemSnapshot) {
        let s = &*snap.state;
        self.config = s.config;
        self.workload_name.clear();
        self.workload_name.push_str(&s.workload_name);
        self.seed = s.seed;
        self.queue = s.queue.clone();
        self.network = s.network.clone();
        self.nodes = s.nodes.clone();
        self.dirs = s.dirs.clone();
        self.predictors = s.predictors.clone();
        self.memory = s.memory.clone();
        self.oracle = s.oracle.clone();
        self.fault = s.fault.clone();
        self.pending_jitter.clear();
        self.pending_jitter.extend_from_slice(&s.pending_jitter);
        self.net_step_armed = s.net_step_armed;
        self.nodes_done = s.nodes_done;
        self.finish_cycle = s.finish_cycle;
        self.last_cycle = s.last_cycle;
        self.watchdog_next = s.watchdog_next;
        self.watchdog_last = s.watchdog_last;
        self.progress_commits = s.progress_commits;
        // The network clone carries the *source* system's express flag;
        // this system's host-side setting is authoritative.
        self.network.set_express(self.noc_express);
        if self.snapshot_every > 0 {
            self.next_snapshot_at = s.last_cycle.saturating_add(self.snapshot_every);
        }
        // The restored nodes carry capture-time trace masks; the installed
        // sinks are authoritative.
        self.recompute_trace_masks();
    }

    /// Materialize a mechanism cell from a mechanism-neutral prefix
    /// snapshot (see [`System::run_prefix`]): rewind the simulated state to
    /// `snap`, then swap in freshly constructed mechanism-specific state —
    /// HTM units, backoff engines, TxLB, commit latency, notification
    /// flags, and the directory-side predictors — exactly as
    /// `System::new_shared(config, ..)` would build them. Valid because the
    /// prefix ends before the first TX_BEGIN: no request has carried
    /// transactional metadata yet, so the predictors, backoff RNGs, and HTM
    /// history are still in their fresh-constructed state on every
    /// mechanism, and replacing them with the target mechanism's fresh
    /// state reproduces a straight-line run bit for bit (gated by
    /// `tests/prefix_fork.rs` and the golden suite).
    ///
    /// Panics if `config` differs from the snapshot's configuration on any
    /// axis other than the mechanism (see [`fork_compatible`]) — such a
    /// snapshot describes a different machine or workload.
    pub fn fork_from(&mut self, snap: &SystemSnapshot, config: SystemConfig) {
        assert!(
            fork_compatible(&snap.state.config, &config),
            "fork_from: target config differs from the snapshot beyond the mechanism axis"
        );
        self.restore(snap);
        // The prefix's express deliveries belong to the shared prefix run,
        // not to this cell's host accounting (in-air flights, by contrast,
        // deliver during the cell and rightly count here).
        self.network.reset_express_counters();
        if config.mechanism != self.config.mechanism {
            let nodes_n = self.nodes.len() as u16;
            // Same derivation as `new_shared`: mechanism-specific per-node
            // state is seeded from the run's root RNG, which no pre-begin
            // event has drawn from.
            let root_rng = SimRng::new(self.seed);
            for i in 0..nodes_n {
                let rmw = config
                    .mechanism
                    .uses_rmw_predictor()
                    .then(RmwPredictor::paper);
                let node = &mut self.nodes[i as usize];
                node.adopt_mechanism(
                    config.abort_timing,
                    rmw,
                    TxLengthBuffer::new(config.puno.txlb_entries),
                    BackoffEngine::new(
                        config.mechanism.backoff_kind(),
                        config.backoff,
                        root_rng.derive(0xB0FF ^ i as u64),
                    ),
                    config.commit_latency,
                    config.mechanism.uses_puno() && config.puno.notification_enabled,
                    config.mechanism.uses_puno() && config.puno.wakeup_hints,
                );
                if let Some(sig_cfg) = config.signatures {
                    node.htm.enable_signatures(sig_cfg);
                }
            }
            let mut puno_cfg = config.puno;
            puno_cfg.pbuffer_entries = nodes_n as usize;
            for p in &mut self.predictors {
                *p = if config.mechanism.uses_puno() {
                    PredictorImpl::Puno(Box::new(PunoPredictor::new(puno_cfg)))
                } else {
                    PredictorImpl::Null(NullPredictor)
                };
            }
            self.config = config;
            // The restored nodes carry the snapshot's trace masks; the
            // installed sinks are authoritative (same rule as `restore`).
            self.recompute_trace_masks();
        }
    }

    /// Run the mechanism-neutral prefix of this cell: the serial loop up to
    /// (not including) the cycle sub-batch in which some node would issue
    /// its first TX_BEGIN, or up to the `cap` override — whichever comes
    /// first (the cap can only shorten the prefix; a fork point past the
    /// first begin would not be mechanism-neutral). Stops only between
    /// events, so [`System::snapshot`] is valid at the boundary and
    /// [`System::fork_from`] + `try_run_recycled` reproduces a straight-
    /// line run exactly. Always serial regardless of
    /// [`System::set_run_threads`], so the fork cycle is identical on every
    /// host.
    pub fn run_prefix(&mut self, cap: Option<Cycle>) -> Result<PrefixStop, RunError> {
        let t0 = std::time::Instant::now();
        let result = self.run_prefix_inner(cap);
        self.host_wall_secs += t0.elapsed().as_secs_f64();
        result
    }

    fn run_prefix_inner(&mut self, cap: Option<Cycle>) -> Result<PrefixStop, RunError> {
        let mut batch: Vec<Event> = Vec::with_capacity(2 * self.nodes.len());
        loop {
            if self.nodes_done >= self.nodes.len() {
                return Ok(PrefixStop::Completed);
            }
            // Checked before every pop (a mid-cycle schedule lands at a
            // later seq and is popped by the *next* `pop_cycle_into`), so
            // the stop lands on the exact sub-batch boundary preceding the
            // first begin.
            if self.nodes.iter().any(NodeState::poised_to_begin) {
                return Ok(PrefixStop::Armed {
                    cycle: self.last_cycle,
                });
            }
            if cap.is_some_and(|c| self.last_cycle >= c) {
                return Ok(PrefixStop::Armed {
                    cycle: self.last_cycle,
                });
            }
            let popped = self.pop_guarded(|q| q.pop_cycle_into(&mut batch).map(|now| (now, ())))?;
            let Some((now, ())) = popped else {
                return Err(self.deadlock_error());
            };
            for event in batch.drain(..) {
                if self.nodes_done >= self.nodes.len() {
                    break;
                }
                self.events_dispatched += 1;
                self.dispatch_event(now, event);
            }
            if self.snapshot_every > 0 && now >= self.next_snapshot_at {
                self.capture_ring_snapshot(now);
            }
        }
    }

    /// Arm (or, with 0, disarm) periodic ring snapshots: the run loop
    /// captures a [`SystemSnapshot`] every `every` cycles, keeping the last
    /// [`SNAPSHOT_RING_CAPACITY`]. When the deadlock/livelock watchdog then
    /// fires, the run rewinds to the retained snapshot preceding the stalled
    /// window and replays it with all trace channels forced on, so the
    /// resulting [`RunError`] carries the actual lead-up trace. Snapshots
    /// never perturb simulated behaviour (golden-identity is tested with
    /// the ring armed).
    pub fn set_snapshot_every(&mut self, every: Cycle) {
        self.snapshot_every = every;
        self.snapshot_ring.clear();
        self.next_snapshot_at = self.last_cycle.saturating_add(every.max(1));
    }

    /// Override the live-metrics sampling interval for subsequent runs:
    /// `0` forces sampling off even when the registry is enabled; `n > 0`
    /// samples every `n` cycles regardless of `PUNO_OBS_SAMPLE_CYCLES`.
    /// Without an override, runs read the env var (default
    /// [`crate::obs::DEFAULT_SAMPLE_CYCLES`]). Sampling only ever reads
    /// host-side counters; `RunMetrics::deterministic()` is bit-identical
    /// with it on or off.
    pub fn set_obs_sample_every(&mut self, every: Cycle) {
        self.obs_sample_every = Some(every);
    }

    /// Snapshots currently retained by the ring (diagnostics/tests).
    pub fn snapshot_ring_len(&self) -> usize {
        self.snapshot_ring.len()
    }

    /// The most recent snapshot retained by the ring, if any. Cheap: a
    /// snapshot is an [`Arc`] handle, so this clones a pointer, not the
    /// simulated state.
    pub fn latest_snapshot(&self) -> Option<SystemSnapshot> {
        self.snapshot_ring.back().cloned()
    }

    /// Rotate the ring with a fresh snapshot (called from the run loop at
    /// a cycle boundary).
    fn capture_ring_snapshot(&mut self, now: Cycle) {
        if self.snapshot_ring.len() >= SNAPSHOT_RING_CAPACITY {
            self.snapshot_ring.pop_front();
        }
        self.snapshot_ring.push_back(self.snapshot());
        self.next_snapshot_at = now.saturating_add(self.snapshot_every);
    }

    /// Failure forensics: rewind to the retained snapshot preceding the
    /// stalled window and deterministically replay into the failure with
    /// every trace channel forced on, returning the replayed error (whose
    /// dump now covers the cycles leading into the stall). Falls back to
    /// `original` when the ring is empty or the replay diverges (it cannot:
    /// tracing is behaviour-neutral, but a rewind must never turn a
    /// structured failure into a panic).
    fn rewind_and_dump(&mut self, original: RunError) -> RunError {
        let stall = self.last_cycle;
        let target = stall.saturating_sub(self.config.watchdog_window);
        let snap = match self
            .snapshot_ring
            .iter()
            .rev()
            .find(|s| s.cycle() <= target)
            .or_else(|| self.snapshot_ring.front())
        {
            Some(s) => s.clone(),
            None => return original,
        };
        self.restore(&snap);
        self.install_tracer(Tracer::ring(ChannelMask::ALL, REWIND_TRACE_CAPACITY));
        // No further ring rotation during the replay: the failure state is
        // already known, the replay exists only to trace it.
        self.snapshot_every = 0;
        self.snapshot_ring.clear();
        match self.run_loop_inner() {
            Err(replayed) => replayed,
            Ok(()) => original,
        }
    }

    /// Install a fault plan. Scheduled events are enqueued immediately;
    /// rate-based faults are probed at their hook points. An empty plan is
    /// exactly equivalent to never calling this (no RNG is consulted and no
    /// event is scheduled), so fault-free runs stay bit-identical.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = FaultInjector::new(plan);
        for ev in self.fault.scheduled_events().to_vec() {
            self.queue.schedule_at(
                ev.at,
                Event::Fault {
                    kind: ev.kind,
                    node: ev.node,
                    magnitude: ev.magnitude,
                },
            );
        }
    }

    /// Faults fired so far (testing/diagnostics).
    pub fn fault_stats(&self) -> &puno_sim::FaultStats {
        &self.fault.stats
    }

    /// Keep the last `capacity` trace events (all channels) in a ring for
    /// debugging; retrieve them with [`System::trace_dump`]. Shorthand for
    /// [`System::install_tracer`] with an all-channel ring tracer.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.install_tracer(Tracer::ring(ChannelMask::ALL, capacity));
    }

    /// Install a configured [`Tracer`] (channel mask, ring, optional JSONL
    /// sink) and propagate the effective channel mask to the nodes.
    pub fn install_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.recompute_trace_masks();
    }

    /// Aggregate per-transaction telemetry into `RunMetrics::telemetry`
    /// (abort blame, contention heat, windowed time series).
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        self.telemetry = Some(TelemetryCollector::new(config));
        self.recompute_trace_masks();
    }

    /// Recompute the cached effective channel mask (tracer ∪ telemetry
    /// needs) and push the HTM slice down to the nodes, which buffer their
    /// own lifecycle events.
    fn recompute_trace_masks(&mut self) {
        let mut mask = self.tracer.mask();
        if self.telemetry.is_some() {
            mask = mask.union(TelemetryCollector::channels());
        }
        self.trace_mask = mask;
        let node_mask = if mask.contains(TraceChannel::Htm) {
            ChannelMask::NONE.with(TraceChannel::Htm)
        } else {
            ChannelMask::NONE
        };
        for n in &mut self.nodes {
            n.set_trace_mask(node_mask);
        }
    }

    /// The installed tracer (ring/JSONL inspection after a run).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access (e.g. to flush the JSONL sink mid-run).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Render the retained trace ring.
    pub fn trace_dump(&self) -> String {
        self.tracer.dump()
    }

    /// Record `event` in every interested sink. Callers check
    /// `self.trace_mask` (via [`System::emit`]) before constructing events,
    /// so this is never reached on the tracing-off path.
    fn sink(&mut self, now: Cycle, event: &TraceEvent) {
        self.tracer.record(now, event);
        if let Some(t) = &mut self.telemetry {
            t.observe(now, event);
        }
    }

    /// Lazily build and record one trace event: `f` only runs when some
    /// sink subscribed to `ch`, so disabled tracing costs one bit test.
    #[inline]
    fn emit(&mut self, now: Cycle, ch: TraceChannel, f: impl FnOnce() -> TraceEvent) {
        if self.trace_mask.contains(ch) {
            self.sink(now, &f());
        }
    }

    /// Move the HTM lifecycle events a node buffered during its last call
    /// into the sinks (the buffer allocation is recycled).
    fn drain_node_trace(&mut self, node: NodeId) {
        let idx = node.index();
        if !self.nodes[idx].has_trace_events() {
            return;
        }
        let mut buf = self.nodes[idx].take_trace_buf();
        for (cycle, event) in buf.drain(..) {
            self.sink(cycle, &event);
        }
        self.nodes[idx].restore_trace_buf(buf);
    }

    pub fn memory(&self) -> &MemoryImage {
        &self.memory
    }

    /// Scan the structural coherence invariants over `lines`
    /// (single-writer/multi-reader, directory-owner agreement, sharer
    /// conservatism). Expensive; meant for tests.
    pub fn check_invariants(&self, lines: &[LineAddr]) -> Vec<crate::invariants::Violation> {
        crate::invariants::check(&self.nodes, &self.dirs, lines)
    }

    /// Run to completion like [`System::run_full`], additionally scanning
    /// the structural invariants over `lines` every `every` events and
    /// panicking on the first violation.
    pub fn run_checked(mut self, lines: &[LineAddr], every: u64) -> (RunMetrics, MemoryImage) {
        assert!(every > 0);
        let t0 = std::time::Instant::now();
        let mut events = 0u64;
        loop {
            match self.step_once() {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => panic!("{e}"),
            }
            events += 1;
            if events.is_multiple_of(every) {
                let violations = self.check_invariants(lines);
                assert!(
                    violations.is_empty(),
                    "coherence invariants violated at cycle {}: {violations:?}",
                    self.last_cycle
                );
            }
        }
        self.host_wall_secs += t0.elapsed().as_secs_f64();
        let memory = std::mem::take(&mut self.memory);
        (self.finalize(), memory)
    }

    pub fn mechanism(&self) -> Mechanism {
        self.config.mechanism
    }

    /// Process one popped event (shared by every run loop).
    fn dispatch_event(&mut self, now: Cycle, event: Event) {
        match event {
            Event::NodeWake { node, epoch } => self.on_node_wake(now, node, epoch),
            Event::NetStep => self.on_net_step(now),
            Event::DirSend { home, dst, msg } => self.inject(now, home, dst, msg),
            Event::MemReady { home, addr } => {
                let mut actions = std::mem::take(&mut self.dir_scratch);
                debug_assert!(actions.is_empty(), "dir scratch reentered");
                self.dirs[home.index()].mem_ready_into(
                    now,
                    addr,
                    &mut self.predictors[home.index()],
                    &mut actions,
                );
                self.apply_dir_actions(now, home, &mut actions);
                self.dir_scratch = actions;
            }
            Event::FaultedInject { src, dst, msg } => self.inject_now(now, src, dst, msg),
            Event::Fault {
                kind,
                node,
                magnitude,
            } => self.on_fault(now, kind, node, magnitude),
        }
    }

    /// Apply one fault at its scheduled firing point. All kinds are
    /// abort-recoverable: messages are delayed or refused, never dropped,
    /// and forced aborts reuse the ordinary abort/restart path.
    fn on_fault(&mut self, now: Cycle, kind: FaultKind, node: NodeId, magnitude: Cycles) {
        self.emit(now, TraceChannel::Fault, || TraceEvent::FaultFired {
            kind,
            node,
            magnitude,
        });
        match kind {
            FaultKind::DelayJitter => {
                // Owed to the node's next injected message; recorded when
                // consumed so the accounting matches messages affected.
                self.pending_jitter[node.index()] += magnitude.max(1);
            }
            FaultKind::LinkStall => {
                // A stall extends router busy horizons the analytic express
                // schedules assumed free; collapse before it lands.
                self.collapse_express_if_pending(now);
                self.network.stall_links(now, node, magnitude.max(1));
                self.fault.record_link_stall();
            }
            FaultKind::SpuriousNack => {
                // One-shot: the node's next non-self forward that would
                // have complied is refused instead.
                self.nodes[node.index()].arm_spurious_nack();
            }
            FaultKind::ForcedAbort => {
                let (fired, eff) = self.nodes[node.index()].force_abort(now, &mut self.memory);
                if fired {
                    self.fault.record_forced_abort();
                }
                self.drain_node_trace(node);
                self.apply_effects(now, node, eff);
            }
        }
    }

    /// Run to completion and return the metrics.
    ///
    /// Panics on deadlock/livelock; prefer [`System::try_run`] where a
    /// structured [`RunError`] is more useful (sweeps, fault injection).
    pub fn run(self) -> RunMetrics {
        self.run_full().0
    }

    /// Run to completion keeping the last `capacity` delivered protocol
    /// messages; returns the metrics and the rendered trace.
    pub fn run_traced(mut self, capacity: usize) -> (RunMetrics, String) {
        self.enable_trace(capacity);
        match self.run_loop() {
            Ok(()) => {}
            Err(e) => panic!("{e}"),
        }
        let dump = self.tracer.dump();
        (self.finalize(), dump)
    }

    /// Run to completion, returning both the metrics and the final memory
    /// image (for serializability checking).
    ///
    /// Panics on deadlock/livelock; prefer [`System::try_run_full`] where a
    /// structured [`RunError`] is more useful.
    pub fn run_full(self) -> (RunMetrics, MemoryImage) {
        match self.try_run_full() {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run to completion, reporting deadlock/livelock as a structured
    /// [`RunError`] (with the NACK wait-for graph and any retained trace)
    /// instead of panicking.
    pub fn try_run(self) -> Result<RunMetrics, RunError> {
        self.try_run_full().map(|(m, _)| m)
    }

    /// Like [`System::try_run`] but also returns the final memory image.
    pub fn try_run_full(mut self) -> Result<(RunMetrics, MemoryImage), RunError> {
        self.run_loop()?;
        let metrics = self.finalize();
        Ok((metrics, std::mem::take(&mut self.memory)))
    }

    /// Run to completion *in place*: like [`System::try_run`], but the
    /// system survives the run so [`System::reset`] can recycle its
    /// allocations for the next cell.
    pub fn try_run_recycled(&mut self) -> Result<RunMetrics, RunError> {
        self.run_loop()?;
        Ok(self.finalize())
    }

    fn run_loop(&mut self) -> Result<(), RunError> {
        let t0 = std::time::Instant::now();
        self.arm_obs_sampler();
        let mut result = self.run_loop_inner();
        if let Err(original) = result {
            result = Err(self.rewind_and_dump(original));
        }
        if let Some(mut sampler) = self.obs_sampler.take() {
            sampler.finish(self.last_cycle, self.events_dispatched);
        }
        self.host_wall_secs += t0.elapsed().as_secs_f64();
        result
    }

    /// Arm the live-metrics sampler for this run, if the global registry
    /// is enabled (see [`crate::obs`]). A disabled registry costs exactly
    /// one relaxed atomic load here and nothing in the hot loop.
    fn arm_obs_sampler(&mut self) {
        self.obs_sampler = None;
        let Some(registry) = crate::obs::global() else {
            return;
        };
        let every = self
            .obs_sample_every
            .unwrap_or_else(crate::obs::env_sample_every);
        if every == 0 {
            return;
        }
        self.obs_sampler = Some(Box::new(crate::obs::RunSampler::new(
            registry,
            every,
            self.last_cycle,
            self.events_dispatched,
        )));
    }

    /// Dispatch to the serial hot loop or, with [`System::set_run_threads`]
    /// above 1, the sharded cycle-epoch executor. Both produce bit-identical
    /// `RunMetrics` (gated by the golden suite and `tests/parallel_exec.rs`).
    fn run_loop_inner(&mut self) -> Result<(), RunError> {
        let workers = self.run_threads.min(self.nodes.len()).max(1);
        if workers <= 1 {
            self.run_loop_serial()
        } else {
            self.run_loop_parallel(workers)
        }
    }

    /// The shared pop preamble of every run loop and `step_once`: record
    /// the pre-pop queue depth, pop via `pop`, advance `last_cycle`, and
    /// run the livelock guards against the popped cycle. `Ok(None)` means
    /// the queue drained (the caller renders the deadlock diagnosis).
    fn pop_guarded<T>(
        &mut self,
        pop: impl FnOnce(&mut EventQueue<Event>) -> Option<(Cycle, T)>,
    ) -> Result<Option<(Cycle, T)>, RunError> {
        let depth = self.queue.len();
        if depth > self.peak_queue_depth {
            self.peak_queue_depth = depth;
        }
        let Some((now, payload)) = pop(&mut self.queue) else {
            return Ok(None);
        };
        self.last_cycle = now;
        self.guards(now)?;
        Ok(Some((now, payload)))
    }

    /// The hot loop: batch-pop every event of the earliest cycle and
    /// dispatch in `(cycle, seq)` order. Per-event this is observably
    /// identical to popping one at a time — the guards (max_cycles,
    /// watchdog) depend only on `now`, which is shared by the whole batch,
    /// and events scheduled mid-batch land at later seqs so the next
    /// `pop_cycle_into` picks them up in exactly the one-at-a-time order.
    fn run_loop_serial(&mut self) -> Result<(), RunError> {
        let mut batch: Vec<Event> = Vec::with_capacity(2 * self.nodes.len());
        loop {
            if self.nodes_done >= self.nodes.len() {
                return Ok(());
            }
            let popped = self.pop_guarded(|q| q.pop_cycle_into(&mut batch).map(|now| (now, ())))?;
            let Some((now, ())) = popped else {
                return Err(self.deadlock_error());
            };
            for event in batch.drain(..) {
                if self.nodes_done >= self.nodes.len() {
                    // The run is over; one-at-a-time popping would never
                    // have dispatched the rest of this cycle either.
                    break;
                }
                self.events_dispatched += 1;
                self.dispatch_event(now, event);
            }
            self.advance_net_token();
            // Ring rotation happens only here, after the popped batch has
            // fully dispatched: mid-batch the queue no longer holds the
            // current cycle's events, so an earlier capture would lose
            // them. Capturing between events cannot perturb behaviour.
            if self.snapshot_every > 0 && now >= self.next_snapshot_at {
                self.capture_ring_snapshot(now);
            }
            // Live-metrics sampling reads host counters only — it can
            // never perturb simulated behaviour (golden-gated both ways).
            if let Some(sampler) = self.obs_sampler.as_mut() {
                if now >= sampler.next_at {
                    sampler.sample(now, self.events_dispatched);
                }
            }
        }
    }

    /// The sharded cycle-epoch executor: same pop/guard/snapshot skeleton
    /// as [`System::run_loop_serial`], with each popped batch split into
    /// waves of independently-owned events that a persistent worker pool
    /// processes concurrently (see `crates/harness/src/exec.rs` for the
    /// merge-order determinism argument).
    fn run_loop_parallel(&mut self, workers: usize) -> Result<(), RunError> {
        let pool = exec::PoolShared::new(workers);
        let mut result = Ok(());
        std::thread::scope(|s| {
            for w in 1..workers {
                let shared = &pool;
                s.spawn(move || exec::worker_loop(shared, w));
            }
            // Retire the pool even if the epoch loop panics: thread::scope
            // joins its workers on the way out.
            let _guard = exec::ShutdownGuard(&pool);
            result = self.parallel_epoch_loop(&pool, workers);
        });
        self.par_busy_ns += pool.total_busy_ns();
        result
    }

    fn parallel_epoch_loop(
        &mut self,
        pool: &exec::PoolShared,
        workers: usize,
    ) -> Result<(), RunError> {
        let mut batch: Vec<Event> = Vec::with_capacity(2 * self.nodes.len());
        let mut outputs: Vec<exec::WaveOutput> = Vec::new();
        let mut nacks: Vec<bool> = Vec::new();
        loop {
            if self.nodes_done >= self.nodes.len() {
                return Ok(());
            }
            let popped = self.pop_guarded(|q| q.pop_cycle_into(&mut batch).map(|now| (now, ())))?;
            let Some((now, ())) = popped else {
                return Err(self.deadlock_error());
            };
            let mut i = 0;
            while i < batch.len() {
                if self.nodes_done >= self.nodes.len() {
                    break;
                }
                let end = self.scan_wave(&batch, i);
                if end == i {
                    // A serial-only event (NetStep reads every router;
                    // Fault mutates the jitter ledger later injects read):
                    // dispatched in place. NetStep's deliveries may
                    // themselves fan out as a delivery wave.
                    self.events_dispatched += 1;
                    match batch[i].clone() {
                        Event::NetStep => {
                            self.on_net_step_parallel(now, pool, workers, &mut outputs, &mut nacks)
                        }
                        event => self.dispatch_event(now, event),
                    }
                    i += 1;
                } else {
                    // Every wave event counts as dispatched (the serial
                    // loop counts guard-skipped events too).
                    self.events_dispatched += (end - i) as u64;
                    self.run_batch_wave(now, &batch[i..end], pool, workers, &mut outputs);
                    i = end;
                }
            }
            batch.clear();
            self.advance_net_token();
            if self.snapshot_every > 0 && now >= self.next_snapshot_at {
                self.capture_ring_snapshot(now);
            }
            if let Some(sampler) = self.obs_sampler.as_mut() {
                if now >= sampler.next_at {
                    sampler.sample(now, self.events_dispatched);
                }
            }
        }
    }

    /// Find the maximal shardable wave starting at `start`: a run of
    /// NodeWake/MemReady/DirSend/FaultedInject events, cut at (a) the first
    /// serial-only event (NetStep, Fault), (b) a repeated wake of the same
    /// node (keeps the finisher pre-scan below exact), and (c) immediately
    /// after the wake that retires the last node — the serial loop breaks
    /// out of the batch there, so later events of this cycle must never
    /// run. Returns the exclusive end; `start` itself means the event at
    /// `start` must dispatch serially.
    fn scan_wave(&mut self, batch: &[Event], start: usize) -> usize {
        if matches!(batch[start], Event::NetStep | Event::Fault { .. }) {
            return start;
        }
        if self.wave_seen.len() < self.nodes.len() {
            self.wave_seen.resize(self.nodes.len(), false);
        }
        let total = self.nodes.len();
        let mut pending_finishers = 0usize;
        let mut end = batch.len();
        for (j, event) in batch.iter().enumerate().skip(start) {
            match event {
                Event::NetStep | Event::Fault { .. } => {
                    end = j;
                    break;
                }
                Event::NodeWake { node, epoch } => {
                    let idx = node.index();
                    if self.wave_seen[idx] {
                        end = j;
                        break;
                    }
                    self.wave_seen[idx] = true;
                    // Exact pre-image of "this wake retires the node": only
                    // `NodeState::step` finishes a node, and it does so iff
                    // the wake is live and the program counter is spent.
                    let n = &self.nodes[idx];
                    let finishes = n.epoch == *epoch
                        && !n.is_done()
                        && n.phase == crate::node::Phase::Ready
                        && n.pc >= n.program.items.len();
                    if finishes {
                        pending_finishers += 1;
                        if self.nodes_done + pending_finishers >= total {
                            end = j + 1;
                            break;
                        }
                    }
                }
                Event::DirSend { .. } | Event::FaultedInject { .. } | Event::MemReady { .. } => {}
            }
        }
        for event in &batch[start..end] {
            if let Event::NodeWake { node, .. } = event {
                self.wave_seen[node.index()] = false;
            }
        }
        end
    }

    /// Run one batch wave: below the pool threshold the events dispatch
    /// serially in place (sound — the scan guarantees any run-ending
    /// finisher is the wave's last event); above it, workers process their
    /// shards concurrently and the merge applies all global effects in
    /// original batch order.
    fn run_batch_wave(
        &mut self,
        now: Cycle,
        wave: &[Event],
        pool: &exec::PoolShared,
        workers: usize,
        outputs: &mut Vec<exec::WaveOutput>,
    ) {
        if wave.len() < exec::MIN_WAVE_PER_WORKER * workers {
            for event in wave {
                self.dispatch_event(now, event.clone());
            }
            return;
        }
        if outputs.len() < wave.len() {
            outputs.resize_with(wave.len(), Default::default);
        }
        for out in outputs[..wave.len()].iter_mut() {
            out.reset();
        }
        self.par_waves += 1;
        let job = exec::WaveJob {
            kind: exec::WaveKind::Batch,
            now,
            events: wave.as_ptr(),
            len: wave.len(),
            nodes: self.nodes.as_mut_ptr(),
            nodes_len: self.nodes.len(),
            dirs: self.dirs.as_mut_ptr(),
            preds: self.predictors.as_mut_ptr(),
            memory: &self.memory,
            outputs: outputs.as_mut_ptr(),
            workers,
            total_nodes: self.config.nodes(),
            fault_active: !self.fault.is_empty(),
            capture_dir_state: false,
            ..Default::default()
        };
        self.par_span_ns += pool.run_wave(job);
        self.merge_batch_wave(now, wave, &mut outputs[..wave.len()]);
    }

    /// Apply a processed batch wave's outputs in original batch order:
    /// exactly the sequence of queue schedules, injections, RNG draws, and
    /// trace emissions the serial loop interleaves with its node steps.
    fn merge_batch_wave(&mut self, now: Cycle, wave: &[Event], outputs: &mut [exec::WaveOutput]) {
        self.publish_wave_writes(outputs);
        for (event, out) in wave.iter().zip(outputs.iter_mut()) {
            match event {
                Event::NodeWake { node, .. } => {
                    if out.skipped {
                        continue;
                    }
                    if out.probe_fired && self.fault.forced_abort() {
                        let at = now + self.fault.forced_abort_delay();
                        self.queue.schedule_at(
                            at,
                            Event::Fault {
                                kind: FaultKind::ForcedAbort,
                                node: *node,
                                magnitude: 0,
                            },
                        );
                    }
                    self.merge_node_trace(*node, out);
                    self.apply_effects(now, *node, std::mem::take(&mut out.effects));
                }
                Event::MemReady { home, .. } => {
                    let mut actions = std::mem::take(&mut out.dir_actions);
                    self.apply_dir_actions(now, *home, &mut actions);
                    out.dir_actions = actions;
                }
                // Inject-only events: no shard state, replayed whole here
                // (in batch order, preserving the jitter/stall RNG streams).
                Event::DirSend { home, dst, msg } => {
                    self.inject(now, *home, *dst, msg.clone());
                }
                Event::FaultedInject { src, dst, msg } => {
                    self.inject_now(now, *src, *dst, msg.clone());
                }
                Event::NetStep | Event::Fault { .. } => {
                    unreachable!("serial-only event leaked into a wave")
                }
            }
        }
    }

    /// Publish every overlay-buffered line write from a processed wave.
    /// Cross-item order is irrelevant: the single-writer protocol invariant
    /// guarantees two same-cycle items never write the same line
    /// (debug-checked); within an item, writes apply in program order.
    fn publish_wave_writes(&mut self, outputs: &mut [exec::WaveOutput]) {
        #[cfg(debug_assertions)]
        {
            let mut writers: std::collections::HashMap<LineAddr, usize> =
                std::collections::HashMap::new();
            for (i, out) in outputs.iter().enumerate() {
                for (addr, _) in &out.mem_writes {
                    if let Some(prev) = writers.insert(*addr, i) {
                        assert_eq!(
                            prev, i,
                            "two wave items wrote line {addr:?}: single-writer violated"
                        );
                    }
                }
            }
        }
        for out in outputs.iter_mut() {
            for (addr, value) in out.mem_writes.drain(..) {
                self.memory.write(addr, value);
            }
        }
    }

    /// Drain a wave item's buffered node trace into the sinks and hand the
    /// buffer allocation back to the node (mirrors `drain_node_trace`).
    fn merge_node_trace(&mut self, node: NodeId, out: &mut exec::WaveOutput) {
        if out.node_trace.is_empty() {
            return;
        }
        let mut buf = std::mem::take(&mut out.node_trace);
        for (cycle, event) in buf.drain(..) {
            self.sink(cycle, &event);
        }
        self.nodes[node.index()].restore_trace_buf(buf);
    }

    /// The parallel path's NetStep: router arbitration stays serial (it is
    /// inherently cross-node), but the cycle's ejections — at most one per
    /// destination — shard cleanly by destination node. Spurious-NACK
    /// decisions are pre-drawn in delivery order so the per-stream RNG
    /// sequence matches the serial loop's.
    fn on_net_step_parallel(
        &mut self,
        now: Cycle,
        pool: &exec::PoolShared,
        workers: usize,
        outputs: &mut Vec<exec::WaveOutput>,
        nacks: &mut Vec<bool>,
    ) {
        let mut delivered = std::mem::take(&mut self.delivery_scratch);
        self.network.step_into(now, &mut delivered);
        if self.network.is_idle() {
            self.net_step_armed = false;
        } else {
            self.queue.schedule_token(now + 1, Event::NetStep);
        }
        if delivered.len() < exec::MIN_WAVE_PER_WORKER * workers {
            for (dst, msg) in delivered.drain(..) {
                self.emit(now, TraceChannel::Noc, || TraceEvent::NocDeliver {
                    dst,
                    vnet: msg.vnet().index() as u8,
                    flits: msg.flits(),
                });
                self.deliver(now, dst, msg);
            }
            self.delivery_scratch = delivered;
            return;
        }
        nacks.clear();
        if self.fault.is_empty() {
            nacks.resize(delivered.len(), false);
        } else {
            for (_, msg) in &delivered {
                let forward = matches!(
                    msg,
                    CoherenceMsg::Inv { .. }
                        | CoherenceMsg::FwdGets { .. }
                        | CoherenceMsg::FwdGetx { .. }
                );
                nacks.push(forward && self.fault.spurious_nack());
            }
        }
        if outputs.len() < delivered.len() {
            outputs.resize_with(delivered.len(), Default::default);
        }
        for out in outputs[..delivered.len()].iter_mut() {
            out.reset();
        }
        self.par_waves += 1;
        let job = exec::WaveJob {
            kind: exec::WaveKind::Deliver,
            now,
            deliveries: delivered.as_ptr(),
            nacks: nacks.as_ptr(),
            len: delivered.len(),
            nodes: self.nodes.as_mut_ptr(),
            nodes_len: self.nodes.len(),
            dirs: self.dirs.as_mut_ptr(),
            preds: self.predictors.as_mut_ptr(),
            memory: &self.memory,
            outputs: outputs.as_mut_ptr(),
            workers,
            total_nodes: self.config.nodes(),
            fault_active: !self.fault.is_empty(),
            capture_dir_state: self.trace_mask.contains(TraceChannel::Dir),
            ..Default::default()
        };
        self.par_span_ns += pool.run_wave(job);
        self.merge_deliver_wave(now, &delivered, &mut outputs[..delivered.len()]);
        delivered.clear();
        self.delivery_scratch = delivered;
    }

    /// Apply a processed delivery wave's outputs in delivery order,
    /// reproducing `deliver`'s per-message emission/effect sequence.
    fn merge_deliver_wave(
        &mut self,
        now: Cycle,
        delivered: &[(NodeId, CoherenceMsg)],
        outputs: &mut [exec::WaveOutput],
    ) {
        self.publish_wave_writes(outputs);
        for ((dst, msg), out) in delivered.iter().zip(outputs.iter_mut()) {
            let dst = *dst;
            self.emit(now, TraceChannel::Noc, || TraceEvent::NocDeliver {
                dst,
                vnet: msg.vnet().index() as u8,
                flits: msg.flits(),
            });
            self.emit(now, TraceChannel::Coh, || TraceEvent::CohRecv {
                dst,
                kind: msg.trace_kind(),
                addr: msg.addr(),
            });
            match msg {
                CoherenceMsg::Gets { .. }
                | CoherenceMsg::Getx { .. }
                | CoherenceMsg::Putx { .. }
                | CoherenceMsg::Puts { .. }
                | CoherenceMsg::Unblock { .. }
                | CoherenceMsg::WbData { .. } => {
                    if let CoherenceMsg::Unblock {
                        addr,
                        mp_node: Some(mp),
                        ..
                    } = msg
                    {
                        let (addr, mp) = (*addr, *mp);
                        self.emit(now, TraceChannel::Pred, || TraceEvent::PredMispredict {
                            home: dst,
                            addr,
                            node: mp,
                        });
                    }
                    let mut actions = std::mem::take(&mut out.dir_actions);
                    self.apply_dir_actions(now, dst, &mut actions);
                    out.dir_actions = actions;
                    if let Some((state, busy)) = out.dir_state.take() {
                        self.sink(
                            now,
                            &TraceEvent::DirState {
                                home: dst,
                                kind: msg.trace_kind(),
                                addr: msg.addr(),
                                state,
                                busy,
                            },
                        );
                    }
                }
                _ => {
                    // Forwards, responses, wakeup hints: the node-side
                    // handling ran in the wave; its effects apply here.
                    self.merge_node_trace(dst, out);
                    self.apply_effects(now, dst, std::mem::take(&mut out.effects));
                }
            }
        }
    }

    /// The livelock guards shared by the batch loop and `step_once`:
    /// max-cycles ceiling and the forward-progress watchdog.
    fn guards(&mut self, now: Cycle) -> Result<(), RunError> {
        if now >= self.config.max_cycles {
            return Err(self.livelock_error(now, self.config.max_cycles));
        }
        if now >= self.watchdog_next {
            let marker = self.progress_marker();
            if marker == self.watchdog_last {
                return Err(self.livelock_error(now, self.config.watchdog_window));
            }
            self.watchdog_last = marker;
            self.watchdog_next = now + self.config.watchdog_window;
        }
        Ok(())
    }

    /// Pop and dispatch one event. Returns `Ok(false)` once every node has
    /// retired, `Ok(true)` if more events remain, and a structured error on
    /// deadlock (drained queue), livelock (`max_cycles` exceeded), or a
    /// stalled forward-progress watchdog window. Used by the invariant-
    /// scanning runner; the plain run paths use the batched loop.
    fn step_once(&mut self) -> Result<bool, RunError> {
        if self.nodes_done >= self.nodes.len() {
            return Ok(false);
        }
        let Some((now, event)) = self.pop_guarded(|q| q.pop())? else {
            return Err(self.deadlock_error());
        };
        self.events_dispatched += 1;
        self.dispatch_event(now, event);
        Ok(true)
    }

    /// Monotone system-wide progress measure sampled by the watchdog:
    /// total commits plus retired nodes (so post-commit drain phases still
    /// count as progress). O(1): `apply_effects` maintains the commit total.
    fn progress_marker(&self) -> u64 {
        debug_assert_eq!(
            self.progress_commits,
            self.nodes
                .iter()
                .map(|n| n.htm.stats().commits.get())
                .sum::<u64>(),
            "running commit counter diverged from per-node stats"
        );
        self.progress_commits + self.nodes_done as u64
    }

    /// Render who-waits-on-whom over nacked lines, for failure diagnostics.
    /// Best-effort: built from each node's retry state and the nackers of
    /// its last failed episode (or its in-flight MSHR).
    fn nack_wait_for_graph(&self) -> String {
        let mut lines = Vec::new();
        for n in &self.nodes {
            if n.is_done() {
                continue;
            }
            if let Some(addr) = n.waiting_on() {
                let nackers: Vec<String> = n
                    .last_nackers()
                    .iter()
                    .map(|id| format!("node {}", id.0))
                    .collect();
                lines.push(format!(
                    "  node {} retries line {:#x}, last nacked by [{}]",
                    n.id.0,
                    addr.0,
                    nackers.join(", ")
                ));
            } else if let Some(mshr) = &n.mshr {
                lines.push(format!(
                    "  node {} blocked in-flight on line {:#x} ({} nacks so far)",
                    n.id.0,
                    mshr.addr.0,
                    mshr.nackers.len()
                ));
            }
        }
        if lines.is_empty() {
            "  (no node is waiting on a nacked line)".to_string()
        } else {
            lines.join("\n")
        }
    }

    fn deadlock_error(&self) -> RunError {
        RunError::Deadlock {
            workload: self.workload_name.clone(),
            seed: self.seed,
            cycle: self.last_cycle,
            unfinished_nodes: self
                .nodes
                .iter()
                .filter(|n| !n.is_done())
                .map(|n| n.id.0)
                .collect(),
            wait_for: self.nack_wait_for_graph(),
            trace: self.tracer.dump(),
        }
    }

    fn livelock_error(&self, now: Cycle, commit_window: u64) -> RunError {
        RunError::Livelock {
            workload: self.workload_name.clone(),
            seed: self.seed,
            cycles: now,
            commit_window,
            wait_for: self.nack_wait_for_graph(),
            trace: self.tracer.dump(),
        }
    }

    fn on_node_wake(&mut self, now: Cycle, node: NodeId, epoch: u64) {
        let idx = node.index();
        if self.nodes[idx].epoch != epoch || self.nodes[idx].is_done() {
            return; // stale wake (control flow was redirected by an abort)
        }
        if self.nodes[idx].phase != crate::node::Phase::Ready {
            return; // blocked on the MSHR; its completion will reschedule
        }
        // Forced-abort hook: detect a transaction beginning across this
        // step and (rate permitting) schedule an abort mid-transaction.
        let probe_begin = !self.fault.is_empty() && self.nodes[idx].htm.current().is_none();
        let eff = self.nodes[idx].step(now, &mut self.memory);
        if probe_begin && self.nodes[idx].htm.current().is_some() && self.fault.forced_abort() {
            let at = now + self.fault.forced_abort_delay();
            self.queue.schedule_at(
                at,
                Event::Fault {
                    kind: FaultKind::ForcedAbort,
                    node,
                    magnitude: 0,
                },
            );
        }
        self.drain_node_trace(node);
        self.apply_effects(now, node, eff);
    }

    fn on_net_step(&mut self, now: Cycle) {
        let mut delivered = std::mem::take(&mut self.delivery_scratch);
        self.network.step_into(now, &mut delivered);
        if self.network.is_idle() {
            self.net_step_armed = false;
        } else {
            self.queue.schedule_token(now + 1, Event::NetStep);
        }
        for (dst, msg) in delivered.drain(..) {
            self.emit(now, TraceChannel::Noc, || TraceEvent::NocDeliver {
                dst,
                vnet: msg.vnet().index() as u8,
                flits: msg.flits(),
            });
            self.deliver(now, dst, msg);
        }
        self.delivery_scratch = delivered;
    }

    fn deliver(&mut self, now: Cycle, dst: NodeId, msg: CoherenceMsg) {
        self.emit(now, TraceChannel::Coh, || TraceEvent::CohRecv {
            dst,
            kind: msg.trace_kind(),
            addr: msg.addr(),
        });
        match &msg {
            // Home-directory traffic.
            CoherenceMsg::Gets { .. }
            | CoherenceMsg::Getx { .. }
            | CoherenceMsg::Putx { .. }
            | CoherenceMsg::Puts { .. }
            | CoherenceMsg::Unblock { .. }
            | CoherenceMsg::WbData { .. } => {
                debug_assert_eq!(
                    dst,
                    puno_coherence::home_node(msg.addr(), self.config.nodes()),
                    "directory message delivered to a non-home node"
                );
                // The transition event needs the message identity after
                // `handle_into` consumes it; capture it only when traced.
                let dir_info = self
                    .trace_mask
                    .contains(TraceChannel::Dir)
                    .then(|| (msg.trace_kind(), msg.addr()));
                if let CoherenceMsg::Unblock {
                    addr,
                    mp_node: Some(mp),
                    ..
                } = &msg
                {
                    let (addr, mp) = (*addr, *mp);
                    self.emit(now, TraceChannel::Pred, || TraceEvent::PredMispredict {
                        home: dst,
                        addr,
                        node: mp,
                    });
                }
                let mut actions = std::mem::take(&mut self.dir_scratch);
                debug_assert!(actions.is_empty(), "dir scratch reentered");
                self.dirs[dst.index()].handle_into(
                    now,
                    msg,
                    &mut self.predictors[dst.index()],
                    &mut actions,
                );
                self.apply_dir_actions(now, dst, &mut actions);
                self.dir_scratch = actions;
                if let Some((kind, addr)) = dir_info {
                    let (state, busy) = self.dirs[dst.index()].trace_state(addr);
                    self.sink(
                        now,
                        &TraceEvent::DirState {
                            home: dst,
                            kind,
                            addr,
                            state,
                            busy,
                        },
                    );
                }
            }
            // Forwards to sharers/owners.
            CoherenceMsg::Inv { .. }
            | CoherenceMsg::FwdGets { .. }
            | CoherenceMsg::FwdGetx { .. } => {
                // Spurious-NACK hook: a conservative refusal is always
                // protocol-legal (the requester backs off and retries), so
                // a fault may downgrade a would-be Comply to a Nack.
                if !self.fault.is_empty() && self.fault.spurious_nack() {
                    self.nodes[dst.index()].arm_spurious_nack();
                }
                let eff = self.nodes[dst.index()].on_forward(now, &msg, &mut self.memory);
                self.drain_node_trace(dst);
                self.apply_effects(now, dst, eff);
            }
            // Responses to a requester (or WbAck to an evictor).
            CoherenceMsg::Data { .. }
            | CoherenceMsg::UpgradeAck { .. }
            | CoherenceMsg::Ack { .. }
            | CoherenceMsg::Nack { .. }
            | CoherenceMsg::WbAck { .. } => {
                let eff = self.nodes[dst.index()].on_response(now, &msg, &mut self.memory);
                self.drain_node_trace(dst);
                self.apply_effects(now, dst, eff);
            }
            // Extension: early end of a notified backoff.
            CoherenceMsg::WakeupHint { addr, .. } => {
                let eff = self.nodes[dst.index()].on_wakeup_hint(now, *addr);
                self.drain_node_trace(dst);
                self.apply_effects(now, dst, eff);
            }
        }
    }

    /// Apply and drain directory actions (the buffer is the caller's
    /// reusable scratch; it comes back empty).
    fn apply_dir_actions(&mut self, now: Cycle, home: NodeId, actions: &mut Vec<DirAction>) {
        for action in actions.drain(..) {
            match action {
                DirAction::Send { dst, msg, delay } => {
                    self.emit(now, TraceChannel::Dir, || TraceEvent::DirSend {
                        home,
                        dst,
                        kind: msg.trace_kind(),
                        addr: msg.addr(),
                        delay,
                    });
                    if matches!(
                        &msg,
                        CoherenceMsg::Inv { unicast: true, .. }
                            | CoherenceMsg::FwdGetx { unicast: true, .. }
                    ) {
                        self.emit(now, TraceChannel::Pred, || TraceEvent::PredUnicast {
                            home,
                            addr: msg.addr(),
                            target: dst,
                        });
                    }
                    if delay == 0 {
                        self.inject(now, home, dst, msg);
                    } else {
                        self.queue
                            .schedule_at(now + delay, Event::DirSend { home, dst, msg });
                    }
                }
                DirAction::FetchMem { addr, delay } => {
                    self.emit(now, TraceChannel::Dir, || TraceEvent::DirFetchMem {
                        home,
                        addr,
                        delay,
                    });
                    self.queue
                        .schedule_at(now + delay, Event::MemReady { home, addr });
                }
            }
        }
    }

    fn apply_effects(&mut self, now: Cycle, node: NodeId, eff: Effects) {
        for (dst, msg) in eff.sends {
            self.inject(now, node, dst, msg);
        }
        if let Some(at) = eff.wake_at {
            let epoch = self.nodes[node.index()].epoch;
            self.queue
                .schedule_at(at.max(now), Event::NodeWake { node, epoch });
        }
        if eff.committed {
            self.progress_commits += 1;
        }
        if eff.injected_nack {
            // Recorded at application time: the one-shot arm only counts
            // if it actually downgraded a Comply.
            self.fault.record_spurious_nack();
        }
        if let Some((nacked, aborted)) = eff.oracle_episode {
            self.oracle.record_episode(nacked, aborted);
        }
        if eff.finished {
            self.nodes_done += 1;
            self.finish_cycle = self.finish_cycle.max(now);
        }
    }

    /// Fault hook point: every protocol message passes through here before
    /// entering the network. With an empty plan this is a direct call to
    /// [`System::inject_now`] — no RNG is consulted, keeping fault-free
    /// runs bit-identical.
    fn inject(&mut self, now: Cycle, src: NodeId, dst: NodeId, msg: CoherenceMsg) {
        self.emit(now, TraceChannel::Coh, || TraceEvent::CohSend {
            src,
            dst,
            kind: msg.trace_kind(),
            addr: msg.addr(),
        });
        if !self.fault.is_empty() {
            let owed = std::mem::take(&mut self.pending_jitter[src.index()]);
            let delay = if owed > 0 {
                self.fault.record_jitter(owed);
                Some(owed)
            } else {
                self.fault.message_delay()
            };
            if let Some(stall) = self.fault.link_stall() {
                // Same horizon hazard as a scheduled LinkStall (see
                // `on_fault`); rate-based stalls are not in the veto window,
                // so in-air flights must collapse before the horizon moves.
                self.collapse_express_if_pending(now);
                self.network.stall_links(now, src, stall);
            }
            if let Some(delay) = delay {
                self.queue
                    .schedule_at(now + delay, Event::FaultedInject { src, dst, msg });
                return;
            }
        }
        self.inject_now(now, src, dst, msg);
    }

    fn inject_now(&mut self, now: Cycle, src: NodeId, dst: NodeId, msg: CoherenceMsg) {
        let vnet = msg.vnet();
        let flits = msg.flits();
        self.emit(now, TraceChannel::Noc, || TraceEvent::NocInject {
            src,
            dst,
            vnet: vnet.index() as u8,
            flits,
        });
        // Express attempt: the packet drains from the NI queue at the next
        // NetStep — the armed token's cycle (`None` means it was popped into
        // the current batch and dispatches later this cycle), or `now + 1`
        // when the token gets armed below. The token is never parked past
        // `now + 1` at an inject (quiescence only skips to cycles at which
        // some event — hence any inject — fires), so `t_first` is exact.
        let msg = if self.noc_express {
            let t_first = if self.net_step_armed {
                self.queue.token_cycle().unwrap_or(now)
            } else {
                now + 1
            };
            match self.network.try_inject_express(
                now,
                t_first,
                self.link_stall_veto(now),
                src,
                dst,
                vnet,
                flits,
                msg,
            ) {
                Ok(()) => {
                    if !self.net_step_armed {
                        self.net_step_armed = true;
                        self.queue.schedule_token(now + 1, Event::NetStep);
                    }
                    return;
                }
                Err(msg) => msg,
            }
        } else {
            msg
        };
        // Stepped fallback: a resident packet can interact with in-air
        // express flights, so pull them back into the routers first.
        self.collapse_express_if_pending(now);
        self.network.inject(now, src, dst, vnet, flits, msg);
        if !self.net_step_armed {
            self.net_step_armed = true;
            self.queue.schedule_token(now + 1, Event::NetStep);
        }
    }

    /// Earliest scheduled link-stall at or after `now`: an express flight
    /// must complete strictly before it (stalls already fired are visible
    /// in the routers' busy horizons, which admission checks per hop).
    /// Stalls *at* `now` veto unconditionally — they may still be pending
    /// later in the current batch.
    fn link_stall_veto(&self, now: Cycle) -> Cycle {
        if self.fault.is_empty() {
            return Cycle::MAX;
        }
        self.fault
            .scheduled_events()
            .iter()
            .filter(|ev| matches!(ev.kind, FaultKind::LinkStall) && ev.at >= now)
            .map(|ev| ev.at)
            .min()
            .unwrap_or(Cycle::MAX)
    }

    /// Pull every express flight back into the stepped network before an
    /// interaction the analytic schedule did not account for (a stepped
    /// inject, or a link-stall horizon change). The collapse point is the
    /// cycle *before* the next NetStep — everything through the last
    /// completed network step is committed as traversal stats and
    /// arbitration state, and the remainder rematerializes in place, so
    /// stepping onward from here is exact.
    fn collapse_express_if_pending(&mut self, now: Cycle) {
        if !self.network.has_express_flights() {
            return;
        }
        debug_assert!(
            self.net_step_armed,
            "express flights in the air require an armed step token"
        );
        let next_step = self.queue.token_cycle().unwrap_or(now);
        self.network.collapse_express(next_step.saturating_sub(1));
    }

    /// Quiescence fast-forward, run between cycle batches: with the step
    /// token armed and every in-network packet on the express path,
    /// stepping the cycles up to the earliest express delivery (or the next
    /// scheduled event) is a no-op — retime the token there directly. The
    /// target is capped at the watchdog's next sampling cycle and the
    /// max-cycles ceiling so the livelock guards fire at exactly the cycles
    /// the cycle-stepped loop would sample (a cap boundary costs one extra
    /// token pop, nothing more).
    fn advance_net_token(&mut self) {
        if self.nodes_done >= self.nodes.len() {
            // The run is decided; skipping now would advance the token past
            // the last dispatched batch and over-commit in-air flights'
            // synthesized traversal stats at finalize.
            return;
        }
        if !self.net_step_armed || !self.network.stepped_side_empty() {
            return;
        }
        let Some(tc) = self.queue.token_cycle() else {
            return; // token dropped with the run already decided
        };
        let target = self
            .network
            .next_express_due()
            .unwrap_or(Cycle::MAX)
            .min(self.queue.peek_cycle_ignoring_token().unwrap_or(Cycle::MAX))
            .min(self.watchdog_next)
            .min(self.config.max_cycles);
        if target > tc {
            self.quiesced_cycles += target - tc;
            self.queue.retime_token(target);
        }
    }

    fn finalize(&mut self) -> RunMetrics {
        // Packets still in the air when the last node retires: the stepped
        // path has already recorded their traversals up to the last
        // dispatched network step, so in-air express flights must commit
        // the same prefix of their analytic schedules before the traffic
        // stats are read.
        self.collapse_express_if_pending(self.last_cycle);
        let mut htm = HtmStats::default();
        for n in &self.nodes {
            htm.merge(n.htm.stats());
        }
        let mut dir = puno_coherence::DirStats::default();
        for d in &self.dirs {
            dir.merge(d.stats());
        }
        let mut puno = PunoStats::default();
        for p in &self.predictors {
            if let PredictorImpl::Puno(pp) = p {
                puno.merge(pp.stats());
            }
        }
        RunMetrics::from_parts(
            &self.workload_name,
            self.config.mechanism.name(),
            self.seed,
            self.finish_cycle,
            htm,
            dir,
            self.network.stats(),
            self.network.link_stats().skew(),
            self.oracle.clone(),
            puno,
            self.fault.stats.clone(),
            crate::metrics::HostPerf {
                wall_secs: self.host_wall_secs,
                events_dispatched: self.events_dispatched,
                peak_queue_depth: self.peak_queue_depth as u64,
                noc_active_scan_ratio: self.network.active_scan_ratio(),
                express_packets: self.network.express_counters().0,
                express_hops: self.network.express_counters().1,
                quiesced_cycles: self.quiesced_cycles,
                run_workers: self.run_threads as u64,
                par_waves: self.par_waves,
                worker_idle_frac: if self.par_span_ns > 0 {
                    let capacity = self.par_span_ns.saturating_mul(self.run_threads as u64);
                    (1.0 - self.par_busy_ns as f64 / capacity as f64).clamp(0.0, 1.0)
                } else {
                    0.0
                },
                ..Default::default()
            }
            .finish(self.finish_cycle),
            self.telemetry.as_ref().map(|t| t.report()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_workloads::micro;

    fn run(mechanism: Mechanism, params: &WorkloadParams, seed: u64) -> RunMetrics {
        let config = SystemConfig::paper(mechanism);
        System::new(config, params, seed).run()
    }

    #[test]
    fn private_workload_commits_everything_without_aborts() {
        let params = micro::private_only(20);
        let m = run(Mechanism::Baseline, &params, 1);
        assert_eq!(m.committed, 16 * 20);
        assert_eq!(m.htm.aborts.get(), 0);
        assert_eq!(m.oracle.false_abort_episodes, 0);
        assert!(m.cycles > 0);
    }

    #[test]
    fn counter_workload_is_serializable() {
        // Every committed transactional write is an increment; the final
        // memory values must sum to exactly the number of committed writes.
        let params = micro::counter(4, 25);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let (metrics, memory) = System::new(config, &params, 3).run_full();
        assert_eq!(metrics.committed, 16 * 25);
        let total: u64 = (0..4).map(|i| memory.read(LineAddr(i))).sum();
        // Each committed counter transaction performs exactly one write.
        assert_eq!(total, 16 * 25, "lost or duplicated committed increments");
    }

    #[test]
    fn hotspot_baseline_exhibits_false_aborting() {
        let params = micro::hotspot(30);
        let m = run(Mechanism::Baseline, &params, 5);
        assert!(m.htm.aborts.get() > 0, "hotspot must conflict");
        assert!(
            m.oracle.false_abort_episodes > 0,
            "multicast under contention must produce false aborts"
        );
    }

    #[test]
    fn puno_reduces_aborts_on_hotspot() {
        let params = micro::hotspot(30);
        let base = run(Mechanism::Baseline, &params, 5);
        let puno = run(Mechanism::Puno, &params, 5);
        assert_eq!(base.committed, puno.committed, "same offered work");
        assert!(
            (puno.htm.aborts.get() as f64) < base.htm.aborts.get() as f64 * 0.9,
            "PUNO {} vs baseline {} aborts",
            puno.htm.aborts.get(),
            base.htm.aborts.get()
        );
        assert!(puno.puno.unicasts.get() > 0, "prediction must engage");
    }

    #[test]
    fn invariants_hold_throughout_a_contended_run() {
        // Scan single-writer/multi-reader + directory agreement every 64
        // events across the whole hotspot region.
        let params = micro::hotspot(10);
        let lines: Vec<LineAddr> = (0..8).map(LineAddr).collect();
        let config = SystemConfig::paper(Mechanism::Puno);
        let (metrics, _) = System::new(config, &params, 5).run_checked(&lines, 64);
        assert_eq!(metrics.committed, 16 * 10);
    }

    #[test]
    fn watchdog_trips_on_a_stalled_window() {
        // A watchdog window far below any commit latency must flag the run
        // as livelocked long before max_cycles, with diagnostics attached.
        let params = micro::hotspot(10);
        let mut config = SystemConfig::paper(Mechanism::Baseline);
        config.watchdog_window = 5;
        let err = System::new(config, &params, 1)
            .try_run()
            .expect_err("a 5-cycle progress window cannot be met");
        match &err {
            crate::error::RunError::Livelock {
                cycles,
                commit_window,
                wait_for,
                ..
            } => {
                assert!(*cycles < config.max_cycles, "watchdog must fire first");
                assert_eq!(*commit_window, 5);
                assert!(!wait_for.is_empty(), "wait-for graph must be rendered");
            }
            other => panic!("expected Livelock, got {other:?}"),
        }
        assert_eq!(err.kind(), "livelock");
        assert!(err.to_string().contains("wait-for graph"));
    }

    #[test]
    fn max_cycles_guard_reports_structured_livelock() {
        let params = micro::hotspot(10);
        let mut config = SystemConfig::paper(Mechanism::Baseline);
        config.max_cycles = 50;
        config.watchdog_window = 1_000_000;
        let err = System::new(config, &params, 1)
            .try_run()
            .expect_err("50 cycles cannot complete a hotspot run");
        assert_eq!(err.kind(), "livelock");
    }

    #[test]
    fn healthy_runs_pass_the_default_watchdog() {
        let params = micro::hotspot(10);
        let config = SystemConfig::paper(Mechanism::Puno);
        let m = System::new(config, &params, 5)
            .try_run()
            .expect("default watchdog must not false-trip");
        assert_eq!(m.committed, 16 * 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let params = micro::hotspot(10);
        let a = run(Mechanism::Puno, &params, 9);
        let b = run(Mechanism::Puno, &params, 9);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.htm.aborts.get(), b.htm.aborts.get());
        assert_eq!(a.traffic_router_traversals, b.traffic_router_traversals);
    }

    #[test]
    fn shared_programs_match_per_cell_generation() {
        let params = micro::hotspot(10);
        let config = SystemConfig::paper(Mechanism::Puno);
        let programs = ProgramSet::generate(&params, config.nodes(), 9);
        let shared = System::new_shared(config, &params, 9, &programs).run();
        let fresh = run(Mechanism::Puno, &params, 9);
        assert_eq!(
            serde_json::to_string(&shared.deterministic()).unwrap(),
            serde_json::to_string(&fresh.deterministic()).unwrap(),
            "shared-program run must be bit-identical"
        );
    }

    #[test]
    fn recycled_system_is_bit_identical_to_fresh() {
        let hot = micro::hotspot(10);
        let quiet = micro::private_only(5);
        let fresh: Vec<String> = [
            (Mechanism::Baseline, &hot, 5u64),
            (Mechanism::Puno, &hot, 5),
            (Mechanism::Puno, &quiet, 7),
        ]
        .into_iter()
        .map(|(mech, params, seed)| {
            let m = run(mech, params, seed);
            serde_json::to_string(&m.deterministic()).unwrap()
        })
        .collect();

        // One system recycled across all three cells (workload, mechanism,
        // and seed all change between resets).
        let mk = |mech, params: &WorkloadParams, seed| {
            (
                SystemConfig::paper(mech),
                ProgramSet::generate(params, SystemConfig::paper(mech).nodes(), seed),
            )
        };
        let (c0, p0) = mk(Mechanism::Baseline, &hot, 5);
        let mut sys = System::new_shared(c0, &hot, 5, &p0);
        let m0 = sys.try_run_recycled().unwrap();
        let (c1, p1) = mk(Mechanism::Puno, &hot, 5);
        sys.reset(c1, &hot, 5, &p1);
        let m1 = sys.try_run_recycled().unwrap();
        let (c2, p2) = mk(Mechanism::Puno, &quiet, 7);
        sys.reset(c2, &quiet, 7, &p2);
        let m2 = sys.try_run_recycled().unwrap();

        for (i, (got, want)) in [m0, m1, m2].iter().zip(&fresh).enumerate() {
            assert_eq!(
                &serde_json::to_string(&got.deterministic()).unwrap(),
                want,
                "recycled cell {i} diverged from fresh construction"
            );
        }
    }
}
