//! The assembled system and its deterministic event loop.

use crate::config::SystemConfig;
use crate::mechanism::Mechanism;
use crate::memory::MemoryImage;
use crate::metrics::RunMetrics;
use crate::node::{Effects, NodeState};
use crate::oracle::FalseAbortOracle;
use puno_coherence::directory::{DirAction, DirectoryBank};
use puno_coherence::l1::L1Cache;
use puno_coherence::msg::{CoherenceMsg, TxInfo};
use puno_coherence::predictor::{NullPredictor, PredictedTarget, UnicastPredictor};
use puno_coherence::sharers::SharerSet;
use puno_core::{PunoPredictor, PunoStats, TxLengthBuffer};
use puno_htm::rmw::RmwPredictor;
use puno_htm::unit::HtmUnit;
use puno_htm::{BackoffEngine, HtmStats};
use puno_noc::Network;
use puno_sim::{Cycle, EventQueue, LineAddr, NodeId, SimRng};
use puno_workloads::{generate_program, WorkloadParams};

/// Simulation events.
#[derive(Debug)]
enum Event {
    /// Resume a node's core FSM (stale epochs are dropped).
    NodeWake { node: NodeId, epoch: u64 },
    /// Advance the network one cycle (re-armed while packets are in
    /// flight).
    NetStep,
    /// A delayed directory send (L2 access / prediction latency elapsed).
    DirSend {
        home: NodeId,
        dst: NodeId,
        msg: CoherenceMsg,
    },
    /// Off-chip memory fetch finished at a home bank.
    MemReady { home: NodeId, addr: LineAddr },
}

/// Per-bank predictor: baseline banks never unicast; PUNO banks run the
/// P-Buffer/UD machinery.
enum PredictorImpl {
    Null(NullPredictor),
    Puno(Box<PunoPredictor>),
}

impl UnicastPredictor for PredictorImpl {
    fn observe_request(&mut self, now: Cycle, node: NodeId, info: &TxInfo) {
        match self {
            PredictorImpl::Null(p) => p.observe_request(now, node, info),
            PredictorImpl::Puno(p) => p.observe_request(now, node, info),
        }
    }

    fn predict_unicast(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        requester: NodeId,
        req: &TxInfo,
        holders: SharerSet,
        exclusive_owner: bool,
    ) -> Option<PredictedTarget> {
        match self {
            PredictorImpl::Null(p) => {
                p.predict_unicast(now, addr, requester, req, holders, exclusive_owner)
            }
            PredictorImpl::Puno(p) => {
                p.predict_unicast(now, addr, requester, req, holders, exclusive_owner)
            }
        }
    }

    fn on_mispredict_feedback(&mut self, now: Cycle, addr: LineAddr, node: NodeId) {
        match self {
            PredictorImpl::Null(p) => p.on_mispredict_feedback(now, addr, node),
            PredictorImpl::Puno(p) => p.on_mispredict_feedback(now, addr, node),
        }
    }

    fn after_service(&mut self, now: Cycle, addr: LineAddr, holders: SharerSet) {
        match self {
            PredictorImpl::Null(p) => p.after_service(now, addr, holders),
            PredictorImpl::Puno(p) => p.after_service(now, addr, holders),
        }
    }

    fn decision_latency(&self) -> Cycle {
        match self {
            PredictorImpl::Null(p) => p.decision_latency(),
            PredictorImpl::Puno(p) => p.decision_latency(),
        }
    }
}

pub struct System {
    config: SystemConfig,
    workload_name: String,
    seed: u64,
    queue: EventQueue<Event>,
    network: Network<CoherenceMsg>,
    nodes: Vec<NodeState>,
    dirs: Vec<DirectoryBank>,
    predictors: Vec<PredictorImpl>,
    memory: MemoryImage,
    oracle: FalseAbortOracle,
    net_step_armed: bool,
    nodes_done: usize,
    finish_cycle: Cycle,
    trace: puno_sim::TraceRing,
}

impl System {
    /// Assemble a system running `params` under `config.mechanism`.
    pub fn new(config: SystemConfig, params: &WorkloadParams, seed: u64) -> Self {
        let nodes_n = config.nodes();
        let root_rng = SimRng::new(seed);
        let mut queue = EventQueue::new();
        let mut nodes = Vec::with_capacity(nodes_n as usize);
        for i in 0..nodes_n {
            let id = NodeId(i);
            let rmw = config
                .mechanism
                .uses_rmw_predictor()
                .then(RmwPredictor::paper);
            let mut node = NodeState::new(
                id,
                nodes_n,
                L1Cache::new(config.l1),
                HtmUnit::new(id, config.abort_timing, rmw),
                TxLengthBuffer::new(config.puno.txlb_entries),
                BackoffEngine::new(
                    config.mechanism.backoff_kind(),
                    config.backoff,
                    root_rng.derive(0xB0FF ^ i as u64),
                ),
                generate_program(params, id, seed),
                config.commit_latency,
                config.mechanism.uses_puno() && config.puno.notification_enabled,
            );
            node.set_wakeup_hints(config.mechanism.uses_puno() && config.puno.wakeup_hints);
            if let Some(sig_cfg) = config.signatures {
                node.htm.enable_signatures(sig_cfg);
            }
            queue.schedule_at(0, Event::NodeWake { node: id, epoch: 0 });
            nodes.push(node);
        }
        let dirs = (0..nodes_n)
            .map(|i| DirectoryBank::new(NodeId(i), config.dir))
            .collect();
        // The P-Buffer has exactly one entry per node (Table II); size it
        // to the mesh so non-4x4 configurations work and so the predictor's
        // timestamp decoding (begin = ts / nodes) stays correct.
        let mut puno_cfg = config.puno;
        puno_cfg.pbuffer_entries = nodes_n as usize;
        let predictors = (0..nodes_n)
            .map(|_| {
                if config.mechanism.uses_puno() {
                    PredictorImpl::Puno(Box::new(PunoPredictor::new(puno_cfg)))
                } else {
                    PredictorImpl::Null(NullPredictor)
                }
            })
            .collect();
        Self {
            workload_name: params.name.clone(),
            seed,
            queue,
            network: Network::new(config.mesh, config.noc),
            nodes,
            dirs,
            predictors,
            memory: MemoryImage::new(),
            oracle: FalseAbortOracle::default(),
            net_step_armed: false,
            nodes_done: 0,
            finish_cycle: 0,
            trace: puno_sim::TraceRing::disabled(),
            config,
        }
    }

    /// Keep the last `capacity` delivered protocol messages for debugging;
    /// retrieve them with [`System::trace_dump`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = puno_sim::TraceRing::enabled(capacity);
    }

    /// Render the retained message trace.
    pub fn trace_dump(&self) -> String {
        self.trace.dump()
    }

    pub fn memory(&self) -> &MemoryImage {
        &self.memory
    }

    /// Scan the structural coherence invariants over `lines`
    /// (single-writer/multi-reader, directory-owner agreement, sharer
    /// conservatism). Expensive; meant for tests.
    pub fn check_invariants(&self, lines: &[LineAddr]) -> Vec<crate::invariants::Violation> {
        crate::invariants::check(&self.nodes, &self.dirs, lines)
    }

    /// Run to completion like [`System::run_full`], additionally scanning
    /// the structural invariants over `lines` every `every` events and
    /// panicking on the first violation.
    pub fn run_checked(mut self, lines: &[LineAddr], every: u64) -> (RunMetrics, MemoryImage) {
        assert!(every > 0);
        let mut events = 0u64;
        while self.nodes_done < self.nodes.len() {
            let Some((now, event)) = self.queue.pop() else {
                panic!("protocol deadlock");
            };
            assert!(now < self.config.max_cycles, "livelock guard");
            self.dispatch_event(now, event);
            events += 1;
            if events.is_multiple_of(every) {
                let violations = self.check_invariants(lines);
                assert!(
                    violations.is_empty(),
                    "coherence invariants violated at cycle {now}: {violations:?}"
                );
            }
        }
        let memory = std::mem::take(&mut self.memory);
        (self.finalize(), memory)
    }

    pub fn mechanism(&self) -> Mechanism {
        self.config.mechanism
    }

    /// Process one popped event (shared by every run loop).
    fn dispatch_event(&mut self, now: Cycle, event: Event) {
        match event {
            Event::NodeWake { node, epoch } => self.on_node_wake(now, node, epoch),
            Event::NetStep => self.on_net_step(now),
            Event::DirSend { home, dst, msg } => self.inject(now, home, dst, msg),
            Event::MemReady { home, addr } => {
                let actions = self.dirs[home.index()].mem_ready(
                    now,
                    addr,
                    &mut self.predictors[home.index()],
                );
                self.apply_dir_actions(now, home, actions);
            }
        }
    }

    /// Run to completion and return the metrics.
    pub fn run(self) -> RunMetrics {
        self.run_full().0
    }

    /// Run to completion keeping the last `capacity` delivered protocol
    /// messages; returns the metrics and the rendered trace.
    pub fn run_traced(mut self, capacity: usize) -> (RunMetrics, String) {
        self.enable_trace(capacity);
        let mut me = self;
        while me.nodes_done < me.nodes.len() {
            let Some((now, event)) = me.queue.pop() else {
                panic!("protocol deadlock; trace:\n{}", me.trace.dump());
            };
            assert!(
                now < me.config.max_cycles,
                "livelock guard; trace:\n{}",
                me.trace.dump()
            );
            me.dispatch_event(now, event);
        }
        let dump = me.trace.dump();
        (me.finalize(), dump)
    }

    /// Run to completion, returning both the metrics and the final memory
    /// image (for serializability checking).
    pub fn run_full(mut self) -> (RunMetrics, MemoryImage) {
        while self.nodes_done < self.nodes.len() {
            let Some((now, event)) = self.queue.pop() else {
                panic!(
                    "event queue drained with {} of {} nodes unfinished ({} @ seed {}) — protocol deadlock",
                    self.nodes.len() - self.nodes_done,
                    self.nodes.len(),
                    self.workload_name,
                    self.seed
                );
            };
            assert!(
                now < self.config.max_cycles,
                "exceeded max_cycles ({}) on {} seed {} — livelock guard",
                self.config.max_cycles,
                self.workload_name,
                self.seed
            );
            self.dispatch_event(now, event);
        }
        let memory = std::mem::take(&mut self.memory);
        (self.finalize(), memory)
    }

    fn on_node_wake(&mut self, now: Cycle, node: NodeId, epoch: u64) {
        let idx = node.index();
        if self.nodes[idx].epoch != epoch || self.nodes[idx].is_done() {
            return; // stale wake (control flow was redirected by an abort)
        }
        if self.nodes[idx].phase != crate::node::Phase::Ready {
            return; // blocked on the MSHR; its completion will reschedule
        }
        let eff = self.nodes[idx].step(now, &mut self.memory);
        self.apply_effects(now, node, eff);
    }

    fn on_net_step(&mut self, now: Cycle) {
        let delivered = self.network.step(now);
        if self.network.is_idle() {
            self.net_step_armed = false;
        } else {
            self.queue.schedule_at(now + 1, Event::NetStep);
        }
        for (dst, msg) in delivered {
            self.deliver(now, dst, msg);
        }
    }

    fn deliver(&mut self, now: Cycle, dst: NodeId, msg: CoherenceMsg) {
        self.trace.record(now, || format!("-> {dst:?}: {msg:?}"));
        match &msg {
            // Home-directory traffic.
            CoherenceMsg::Gets { .. }
            | CoherenceMsg::Getx { .. }
            | CoherenceMsg::Putx { .. }
            | CoherenceMsg::Puts { .. }
            | CoherenceMsg::Unblock { .. }
            | CoherenceMsg::WbData { .. } => {
                debug_assert_eq!(
                    dst,
                    puno_coherence::home_node(msg.addr(), self.config.nodes()),
                    "directory message delivered to a non-home node"
                );
                let actions =
                    self.dirs[dst.index()].handle(now, msg, &mut self.predictors[dst.index()]);
                self.apply_dir_actions(now, dst, actions);
            }
            // Forwards to sharers/owners.
            CoherenceMsg::Inv { .. } | CoherenceMsg::FwdGets { .. } | CoherenceMsg::FwdGetx { .. } => {
                let eff = self.nodes[dst.index()].on_forward(now, &msg, &mut self.memory);
                self.apply_effects(now, dst, eff);
            }
            // Responses to a requester (or WbAck to an evictor).
            CoherenceMsg::Data { .. }
            | CoherenceMsg::UpgradeAck { .. }
            | CoherenceMsg::Ack { .. }
            | CoherenceMsg::Nack { .. }
            | CoherenceMsg::WbAck { .. } => {
                let eff = self.nodes[dst.index()].on_response(now, &msg, &mut self.memory);
                self.apply_effects(now, dst, eff);
            }
            // Extension: early end of a notified backoff.
            CoherenceMsg::WakeupHint { addr, .. } => {
                let eff = self.nodes[dst.index()].on_wakeup_hint(now, *addr);
                self.apply_effects(now, dst, eff);
            }
        }
    }

    fn apply_dir_actions(&mut self, now: Cycle, home: NodeId, actions: Vec<DirAction>) {
        for action in actions {
            match action {
                DirAction::Send { dst, msg, delay } => {
                    if delay == 0 {
                        self.inject(now, home, dst, msg);
                    } else {
                        self.queue
                            .schedule_at(now + delay, Event::DirSend { home, dst, msg });
                    }
                }
                DirAction::FetchMem { addr, delay } => {
                    self.queue
                        .schedule_at(now + delay, Event::MemReady { home, addr });
                }
            }
        }
    }

    fn apply_effects(&mut self, now: Cycle, node: NodeId, eff: Effects) {
        for (dst, msg) in eff.sends {
            self.inject(now, node, dst, msg);
        }
        if let Some(at) = eff.wake_at {
            let epoch = self.nodes[node.index()].epoch;
            self.queue
                .schedule_at(at.max(now), Event::NodeWake { node, epoch });
        }
        if let Some((nacked, aborted)) = eff.oracle_episode {
            self.oracle.record_episode(nacked, aborted);
        }
        if eff.finished {
            self.nodes_done += 1;
            self.finish_cycle = self.finish_cycle.max(now);
        }
    }

    fn inject(&mut self, now: Cycle, src: NodeId, dst: NodeId, msg: CoherenceMsg) {
        let vnet = msg.vnet();
        let flits = msg.flits();
        self.network.inject(now, src, dst, vnet, flits, msg);
        if !self.net_step_armed {
            self.net_step_armed = true;
            self.queue.schedule_at(now + 1, Event::NetStep);
        }
    }

    fn finalize(self) -> RunMetrics {
        let mut htm = HtmStats::default();
        for n in &self.nodes {
            htm.merge(n.htm.stats());
        }
        let mut dir = puno_coherence::DirStats::default();
        for d in &self.dirs {
            dir.merge(d.stats());
        }
        let mut puno = PunoStats::default();
        for p in &self.predictors {
            if let PredictorImpl::Puno(pp) = p {
                puno.merge(pp.stats());
            }
        }
        RunMetrics::from_parts(
            &self.workload_name,
            self.config.mechanism.name(),
            self.seed,
            self.finish_cycle,
            htm,
            dir,
            self.network.stats(),
            self.network.link_stats().skew(),
            self.oracle,
            puno,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_workloads::micro;

    fn run(mechanism: Mechanism, params: &WorkloadParams, seed: u64) -> RunMetrics {
        let config = SystemConfig::paper(mechanism);
        System::new(config, params, seed).run()
    }

    #[test]
    fn private_workload_commits_everything_without_aborts() {
        let params = micro::private_only(20);
        let m = run(Mechanism::Baseline, &params, 1);
        assert_eq!(m.committed, 16 * 20);
        assert_eq!(m.htm.aborts.get(), 0);
        assert_eq!(m.oracle.false_abort_episodes, 0);
        assert!(m.cycles > 0);
    }

    #[test]
    fn counter_workload_is_serializable() {
        // Every committed transactional write is an increment; the final
        // memory values must sum to exactly the number of committed writes.
        let params = micro::counter(4, 25);
        let config = SystemConfig::paper(Mechanism::Baseline);
        let (metrics, memory) = System::new(config, &params, 3).run_full();
        assert_eq!(metrics.committed, 16 * 25);
        let total: u64 = (0..4).map(|i| memory.read(LineAddr(i))).sum();
        // Each committed counter transaction performs exactly one write.
        assert_eq!(total, 16 * 25, "lost or duplicated committed increments");
    }

    #[test]
    fn hotspot_baseline_exhibits_false_aborting() {
        let params = micro::hotspot(30);
        let m = run(Mechanism::Baseline, &params, 5);
        assert!(m.htm.aborts.get() > 0, "hotspot must conflict");
        assert!(
            m.oracle.false_abort_episodes > 0,
            "multicast under contention must produce false aborts"
        );
    }

    #[test]
    fn puno_reduces_aborts_on_hotspot() {
        let params = micro::hotspot(30);
        let base = run(Mechanism::Baseline, &params, 5);
        let puno = run(Mechanism::Puno, &params, 5);
        assert_eq!(base.committed, puno.committed, "same offered work");
        assert!(
            (puno.htm.aborts.get() as f64) < base.htm.aborts.get() as f64 * 0.9,
            "PUNO {} vs baseline {} aborts",
            puno.htm.aborts.get(),
            base.htm.aborts.get()
        );
        assert!(puno.puno.unicasts.get() > 0, "prediction must engage");
    }

    #[test]
    fn invariants_hold_throughout_a_contended_run() {
        // Scan single-writer/multi-reader + directory agreement every 64
        // events across the whole hotspot region.
        let params = micro::hotspot(10);
        let lines: Vec<LineAddr> = (0..8).map(LineAddr).collect();
        let config = SystemConfig::paper(Mechanism::Puno);
        let (metrics, _) = System::new(config, &params, 5).run_checked(&lines, 64);
        assert_eq!(metrics.committed, 16 * 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let params = micro::hotspot(10);
        let a = run(Mechanism::Puno, &params, 9);
        let b = run(Mechanism::Puno, &params, 9);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.htm.aborts.get(), b.htm.aborts.get());
        assert_eq!(a.traffic_router_traversals, b.traffic_router_traversals);
    }
}
