//! The four mechanisms compared in the paper's evaluation (Section IV-A).

use puno_htm::BackoffKind;
use serde::{Deserialize, Serialize};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// LogTM-style eager HTM, multicast invalidations, fixed 20-cycle nack
    /// backoff.
    Baseline,
    /// Baseline + randomized linear backoff on abort [17].
    RandomBackoff,
    /// Baseline + per-node 256-entry read-modify-write predictor [5].
    RmwPred,
    /// Baseline + PUNO (predictive unicast + notification).
    Puno,
}

impl Mechanism {
    pub const ALL: [Mechanism; 4] = [
        Mechanism::Baseline,
        Mechanism::RandomBackoff,
        Mechanism::RmwPred,
        Mechanism::Puno,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Baseline => "baseline",
            Mechanism::RandomBackoff => "backoff",
            Mechanism::RmwPred => "rmw-pred",
            Mechanism::Puno => "puno",
        }
    }

    pub fn backoff_kind(self) -> BackoffKind {
        match self {
            Mechanism::Baseline | Mechanism::RmwPred => BackoffKind::Fixed,
            Mechanism::RandomBackoff => BackoffKind::RandomLinear,
            Mechanism::Puno => BackoffKind::NotificationGuided,
        }
    }

    pub fn uses_rmw_predictor(self) -> bool {
        self == Mechanism::RmwPred
    }

    pub fn uses_puno(self) -> bool {
        self == Mechanism::Puno
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_wiring_matches_paper() {
        assert_eq!(Mechanism::Baseline.backoff_kind(), BackoffKind::Fixed);
        assert_eq!(
            Mechanism::RandomBackoff.backoff_kind(),
            BackoffKind::RandomLinear
        );
        assert_eq!(Mechanism::RmwPred.backoff_kind(), BackoffKind::Fixed);
        assert_eq!(
            Mechanism::Puno.backoff_kind(),
            BackoffKind::NotificationGuided
        );
        assert!(Mechanism::RmwPred.uses_rmw_predictor());
        assert!(!Mechanism::Puno.uses_rmw_predictor());
        assert!(Mechanism::Puno.uses_puno());
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = Mechanism::ALL.iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
