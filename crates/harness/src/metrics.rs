//! The measurement record one run produces — everything the paper's tables
//! and figures are computed from.

use crate::oracle::FalseAbortOracle;
use crate::telemetry::TelemetryReport;
use puno_coherence::DirStats;
use puno_core::PunoStats;
use puno_htm::{AbortCause, HtmStats};
use puno_noc::TrafficStats;
use puno_sim::FaultStats;
use serde::{Deserialize, Serialize};

/// Host-side simulator-throughput counters for one run. Everything in here
/// describes how fast the *simulator* ran, not what the simulated machine
/// did, so it varies across hosts and runs — it is excluded from
/// [`RunMetrics::deterministic`] and must never feed a simulated-behaviour
/// assertion.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HostPerf {
    /// Wall-clock spent inside the run loop, in seconds.
    pub wall_secs: f64,
    /// Simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
    /// Events popped and dispatched by the run loop.
    pub events_dispatched: u64,
    /// Events dispatched per wall-clock second.
    pub events_per_sec: f64,
    /// Maximum event-queue depth observed before any pop.
    pub peak_queue_depth: u64,
    /// Fraction of (router x step) slots the NoC actually visited: 1.0 means
    /// every router was scanned every network cycle (the old full-scan
    /// behaviour); low values mean the occupancy structure is skipping idle
    /// routers.
    pub noc_active_scan_ratio: f64,
    /// Packets delivered over the NoC express path — admitted with a
    /// provably contention-free analytic schedule and never cycle-stepped
    /// (`PUNO_NOC_EXPRESS`; bit-identical to stepping, so this is purely a
    /// host-throughput measure).
    pub express_packets: u64,
    /// Mesh hops those express packets covered without router stepping.
    pub express_hops: u64,
    /// Simulated cycles the run loop's step token skipped while every
    /// in-network packet was an express flight (event-driven quiescence).
    pub quiesced_cycles: u64,
    /// Effective worker-thread count of the sweep that produced this run
    /// (see `sweep::effective_workers`); 0 for standalone runs outside a
    /// sweep.
    pub sweep_workers: u64,
    /// Intra-run worker-thread count (`PUNO_RUN_THREADS` /
    /// `System::set_run_threads`); 1 is the serial loop.
    pub run_workers: u64,
    /// Waves the parallel executor handed to its worker pool (0 on the
    /// serial path; sub-threshold waves dispatch serially and don't count).
    pub par_waves: u64,
    /// Fraction of pooled worker time spent idle at wave barriers:
    /// `1 - busy / (workers * span)` summed over all waves. 0 on the
    /// serial path; rising values flag shard imbalance before wall-clock
    /// shows it.
    pub worker_idle_frac: f64,
    /// 1 when this run was materialized by prefix-fork execution — restored
    /// from a shared mechanism-neutral prefix snapshot (`System::fork_from`)
    /// instead of replaying from cycle 0 — and 0 otherwise. Summable across
    /// a sweep's cells.
    pub prefix_forks: u64,
    /// Simulated cycles inherited from the shared prefix snapshot (the fork
    /// point): the part of this run that was simulated once for the whole
    /// group rather than per cell.
    pub prefix_cycles_shared: u64,
    /// Host seconds of prefix simulation this cell did not repay: the
    /// wall-clock the group's prefix runner spent up to the fork point,
    /// which a straight-line run of this cell would have spent again.
    pub prefix_time_saved: f64,
}

impl HostPerf {
    /// Derive the per-second rates from the raw totals.
    pub fn finish(mut self, sim_cycles: u64) -> Self {
        if self.wall_secs > 0.0 {
            self.sim_cycles_per_sec = sim_cycles as f64 / self.wall_secs;
            self.events_per_sec = self.events_dispatched as f64 / self.wall_secs;
        }
        self
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunMetrics {
    pub workload: String,
    pub mechanism: String,
    pub seed: u64,
    /// Wall-clock of the run in simulated cycles (Figure 13's quantity:
    /// fixed work per node, so fewer cycles = faster execution).
    pub cycles: u64,
    /// Merged per-node HTM statistics (Figures 10, 14; Table I).
    pub htm: HtmStats,
    /// Merged directory statistics (Figure 12).
    pub dir: DirStats,
    /// Network statistics (Figure 11).
    pub traffic_router_traversals: u64,
    pub traffic_flits_injected: u64,
    pub traffic_mean_latency: f64,
    /// Max/mean utilization over non-idle directed links (hotspot skew).
    pub traffic_link_skew: f64,
    /// False-abort oracle (Figures 2, 3).
    pub oracle: FalseAbortOracle,
    /// PUNO predictor statistics (prediction accuracy; zeroed for other
    /// mechanisms).
    pub puno: PunoStats,
    /// Faults actually injected during the run (all-zero without a plan).
    pub faults: FaultStats,
    /// Committed transactions (sanity: nodes x tx_per_node).
    pub committed: u64,
    /// Host-side simulator throughput (non-deterministic; see [`HostPerf`]).
    pub host: HostPerf,
    /// Size-bounded telemetry (time series, abort blame, contention heat);
    /// `None` unless the run enabled a [`crate::TelemetryCollector`].
    pub telemetry: Option<TelemetryReport>,
}

impl RunMetrics {
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        workload: &str,
        mechanism: &str,
        seed: u64,
        cycles: u64,
        htm: HtmStats,
        dir: DirStats,
        traffic: &TrafficStats,
        link_skew: f64,
        oracle: FalseAbortOracle,
        puno: PunoStats,
        faults: FaultStats,
        host: HostPerf,
        telemetry: Option<TelemetryReport>,
    ) -> Self {
        let committed = htm.commits.get();
        Self {
            workload: workload.to_string(),
            mechanism: mechanism.to_string(),
            seed,
            cycles,
            htm,
            dir,
            traffic_router_traversals: traffic.router_traversals(),
            traffic_flits_injected: traffic.flits_injected(),
            traffic_mean_latency: traffic.mean_latency(),
            traffic_link_skew: link_skew,
            oracle,
            puno,
            faults,
            committed,
            host,
            telemetry,
        }
    }

    /// The run viewed without its host-side throughput counters: everything
    /// left is a pure function of (workload, mechanism, seed, config) and is
    /// what the golden-snapshot bit-identity tests compare.
    pub fn deterministic(&self) -> RunMetrics {
        let mut m = self.clone();
        m.host = HostPerf::default();
        m
    }

    /// Aborts per committed transaction — scale-free contention measure.
    pub fn aborts_per_commit(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.htm.aborts.get() as f64 / self.committed as f64
        }
    }

    /// Mean directory blocking cycles per transactional GETX (Figure 12).
    pub fn dir_blocking_per_tx_getx(&self) -> f64 {
        self.dir.blocking_cycles_tx_getx.mean()
    }

    /// Nonzero abort causes with their counts, in [`AbortCause::ALL`]
    /// order — the blame breakdown the warehouse sink records per cell and
    /// the paper's false-abort analysis compares on.
    pub fn abort_blame(&self) -> Vec<(AbortCause, u64)> {
        AbortCause::ALL
            .iter()
            .filter_map(|&cause| {
                let count = self.htm.aborts_for(cause);
                (count > 0).then_some((cause, count))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_htm::AbortCause;

    #[test]
    fn derived_metrics() {
        let mut htm = HtmStats::default();
        htm.record_commit(100);
        htm.record_commit(100);
        htm.record_abort(AbortCause::TxWriteInvalidation, 50);
        let m = RunMetrics::from_parts(
            "w",
            "m",
            0,
            1000,
            htm,
            DirStats::default(),
            &TrafficStats::default(),
            1.0,
            FalseAbortOracle::default(),
            PunoStats::default(),
            FaultStats::default(),
            HostPerf::default(),
            None,
        );
        assert_eq!(m.committed, 2);
        assert!((m.aborts_per_commit() - 0.5).abs() < 1e-12);
    }
}
