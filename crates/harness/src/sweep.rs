//! Thread-parallel experiment sweeps.
//!
//! Each simulation run is single-threaded and deterministic; the sweep
//! fans (workload x mechanism x seed) combinations across OS threads via
//! `crossbeam::scope` and reassembles results in a deterministic order.

use crate::metrics::RunMetrics;
use crate::run::run_workload;
use crate::Mechanism;
use parking_lot::Mutex;
use puno_workloads::{WorkloadId, WorkloadParams};

/// One sweep cell: the workload, the mechanism, and the run result.
#[derive(Clone, Debug)]
pub struct SweepResult {
    pub workload: WorkloadId,
    pub mechanism: Mechanism,
    pub metrics: RunMetrics,
}

/// Run `workloads x mechanisms` (single seed) in parallel. `scale` shrinks
/// or grows each workload's transaction count (1.0 = paper-sized runs).
pub fn sweep(
    workloads: &[WorkloadId],
    mechanisms: &[Mechanism],
    seed: u64,
    scale: f64,
) -> Vec<SweepResult> {
    let jobs: Vec<(WorkloadId, Mechanism, WorkloadParams)> = workloads
        .iter()
        .flat_map(|&w| {
            let params = w.params().scaled(scale);
            mechanisms
                .iter()
                .map(move |&m| (w, m, params.clone()))
        })
        .collect();

    let results: Mutex<Vec<(usize, SweepResult)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));

    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (w, m, ref params) = jobs[i];
                let metrics = run_workload(m, params, seed);
                results.lock().push((
                    i,
                    SweepResult {
                        workload: w,
                        mechanism: m,
                        metrics,
                    },
                ));
            });
        }
    })
    .expect("sweep worker panicked");

    let mut out = results.into_inner();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Run the sweep for several seeds (one full sweep per seed, all cells
/// parallelized together would interleave seeds nondeterministically in the
/// worker order, but results are keyed, so we simply run per-seed sweeps).
pub fn sweep_seeds(
    workloads: &[WorkloadId],
    mechanisms: &[Mechanism],
    seeds: &[u64],
    scale: f64,
) -> Vec<Vec<SweepResult>> {
    seeds
        .iter()
        .map(|&s| sweep(workloads, mechanisms, s, scale))
        .collect()
}

/// Find one cell in a sweep result set.
pub fn find(
    results: &[SweepResult],
    workload: WorkloadId,
    mechanism: Mechanism,
) -> &RunMetrics {
    &results
        .iter()
        .find(|r| r.workload == workload && r.mechanism == mechanism)
        .unwrap_or_else(|| panic!("missing cell {workload:?}/{mechanism:?}"))
        .metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_returns_all_cells_in_order() {
        let workloads = [WorkloadId::Ssca2, WorkloadId::Kmeans];
        let mechanisms = [Mechanism::Baseline, Mechanism::Puno];
        let results = sweep(&workloads, &mechanisms, 1, 0.05);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].workload, WorkloadId::Ssca2);
        assert_eq!(results[0].mechanism, Mechanism::Baseline);
        assert_eq!(results[3].workload, WorkloadId::Kmeans);
        assert_eq!(results[3].mechanism, Mechanism::Puno);
        let m = find(&results, WorkloadId::Kmeans, Mechanism::Puno);
        assert!(m.committed > 0);
    }

    #[test]
    fn parallel_sweep_matches_serial_run() {
        let results = sweep(&[WorkloadId::Ssca2], &[Mechanism::Baseline], 7, 0.05);
        let serial = run_workload(
            Mechanism::Baseline,
            &WorkloadId::Ssca2.params().scaled(0.05),
            7,
        );
        assert_eq!(results[0].metrics.cycles, serial.cycles);
        assert_eq!(
            results[0].metrics.htm.aborts.get(),
            serial.htm.aborts.get()
        );
    }
}
