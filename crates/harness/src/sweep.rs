//! Thread-parallel experiment sweeps with failure containment and resume.
//!
//! Each simulation run is single-threaded and deterministic; the sweep fans
//! (workload x mechanism) combinations across OS threads and reassembles
//! results in a deterministic order. A failing cell — structured
//! [`RunError`] or outright panic — no longer takes the process (and every
//! sibling cell) down: it is caught, optionally retried with the message
//! trace ring enabled, and reported as a [`CellOutcome::Err`] while the
//! remaining cells complete. With a checkpoint path set, finished cells are
//! appended to a JSONL file as they complete, and a re-run resumes from it,
//! skipping cells that already succeeded.

use crate::cache::{cell_digest, global_cache, CostRecord, ResultCache};
use crate::error::RunError;
use crate::metrics::RunMetrics;
use crate::obs;
use crate::system::{System, SystemSnapshot};
use crate::warehouse::{self, WarehouseRow};
use crate::{Mechanism, SystemConfig};
use puno_sim::FaultPlan;
use puno_workloads::{params_digest, ProgramSet, WorkloadId, WorkloadParams};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One sweep cell: the workload, the mechanism, and the run result.
#[derive(Clone, Debug)]
pub struct SweepResult {
    pub workload: WorkloadId,
    pub mechanism: Mechanism,
    pub metrics: RunMetrics,
}

/// Identity of one (workload, mechanism, seed) sweep cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellKey {
    pub workload: WorkloadId,
    pub mechanism: Mechanism,
    pub seed: u64,
}

/// The checkpointed outcome of one cell (one JSONL record per cell). A
/// hand-rolled `Result`: the serde shim has no blanket `Result` impl (and
/// no `Box` impl either, hence the unboxed — large — `Ok` variant).
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CellOutcome {
    Ok {
        key: CellKey,
        metrics: RunMetrics,
    },
    /// The cell failed and the sweep ran without a retry budget.
    Err {
        key: CellKey,
        error: RunError,
        /// Total attempts made (1 + retries actually used).
        attempts: u32,
    },
    /// The cell exhausted an escalating [`RetryPolicy`] — every attempt
    /// including the traced, snapshot-armed final one failed — and was
    /// quarantined: the sweep completed degraded around it. `error` is the
    /// final attempt's failure (with its rewind-and-dump trace when the
    /// snapshot ring engaged). On checkpoint resume, quarantined cells are
    /// re-attempted like failed ones.
    Quarantined {
        key: CellKey,
        error: RunError,
        attempts: u32,
    },
}

impl CellOutcome {
    pub fn key(&self) -> CellKey {
        match self {
            CellOutcome::Ok { key, .. }
            | CellOutcome::Err { key, .. }
            | CellOutcome::Quarantined { key, .. } => *key,
        }
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok { .. })
    }

    pub fn is_quarantined(&self) -> bool {
        matches!(self, CellOutcome::Quarantined { .. })
    }

    pub fn metrics(&self) -> Option<&RunMetrics> {
        match self {
            CellOutcome::Ok { metrics, .. } => Some(metrics),
            CellOutcome::Err { .. } | CellOutcome::Quarantined { .. } => None,
        }
    }

    pub fn error(&self) -> Option<&RunError> {
        match self {
            CellOutcome::Ok { .. } => None,
            CellOutcome::Err { error, .. } | CellOutcome::Quarantined { error, .. } => Some(error),
        }
    }

    /// Attempts consumed (None for successful cells).
    pub fn attempts(&self) -> Option<u32> {
        match self {
            CellOutcome::Ok { .. } => None,
            CellOutcome::Err { attempts, .. } | CellOutcome::Quarantined { attempts, .. } => {
                Some(*attempts)
            }
        }
    }
}

/// Escalating per-cell retry policy. The first attempt runs plain; every
/// retry runs with the message trace ring enabled and (on the cell-runner
/// path) the snapshot ring armed, so a persistent failure's final error
/// carries a rewind-and-dump trace of the cycles leading into the stall.
/// Between attempts the worker sleeps a multiplicative, seed-jittered
/// host-side backoff (never visible to simulated behaviour). A cell that
/// exhausts a multi-attempt budget is recorded as
/// [`CellOutcome::Quarantined`] and the sweep completes degraded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts per cell (clamped to >= 1; 1 = no retries).
    pub max_attempts: u32,
    /// Host-side backoff before the first retry, in milliseconds (0
    /// disables sleeping — the default, so tests and CI stay fast).
    pub backoff_base_ms: u64,
    /// Backoff multiplier per further attempt.
    pub backoff_multiplier: u32,
}

/// Ceiling on one backoff sleep regardless of attempt count.
const RETRY_BACKOFF_CAP_MS: u64 = 5_000;

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new(1)
    }
}

impl RetryPolicy {
    pub fn new(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            backoff_base_ms: 0,
            backoff_multiplier: 2,
        }
    }

    /// Extra attempts after the first.
    pub fn retries(&self) -> u32 {
        self.max_attempts - 1
    }

    /// Policy from the `PUNO_RETRY_MAX` environment variable (maximum
    /// total attempts per cell; unset or unparsable = 1, i.e. no retries).
    pub fn from_env() -> Self {
        let max = std::env::var("PUNO_RETRY_MAX")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .unwrap_or(1);
        Self::new(max)
    }

    /// Host-side sleep before attempt `next_attempt` (2-based): the base
    /// backoff multiplied per prior retry, scaled by a deterministic
    /// ±25% jitter derived from the cell seed so workers retrying
    /// simultaneously spread out, and capped.
    fn backoff(&self, next_attempt: u32, seed: u64) -> std::time::Duration {
        if self.backoff_base_ms == 0 {
            return std::time::Duration::ZERO;
        }
        let exp = next_attempt.saturating_sub(2).min(16);
        let base = self
            .backoff_base_ms
            .saturating_mul((self.backoff_multiplier.max(1) as u64).saturating_pow(exp));
        let jitter_src =
            puno_workloads::fnv1a_64(format!("retry|{seed}|{next_attempt}").as_bytes());
        // Scale into [0.75, 1.25) of the base.
        let ms = (base.saturating_mul(768 + jitter_src % 512) / 1024).min(RETRY_BACKOFF_CAP_MS);
        std::time::Duration::from_millis(ms)
    }
}

/// Options for a resilient sweep.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    pub seed: u64,
    /// Shrinks or grows each workload's transaction count (1.0 = paper-sized
    /// runs).
    pub scale: f64,
    /// Fault plan installed in every cell (empty = fault-free and
    /// bit-identical to a plain sweep).
    pub fault_plan: FaultPlan,
    /// Escalating retry policy (attempt budget, seed-jittered backoff).
    /// Retries re-run with the message trace ring enabled and the snapshot
    /// ring armed, so a persistent failure's final error carries the
    /// rewind-and-dump trace leading up to it; cells that exhaust a
    /// multi-attempt budget are quarantined instead of failing the sweep.
    /// [`SweepOptions::new`] honours the `PUNO_RETRY_MAX` env override.
    pub retry: RetryPolicy,
    /// JSONL checkpoint path: finished cells are appended as they complete;
    /// an existing file's successful cells are skipped on resume (failed
    /// and quarantined cells are re-attempted). [`SweepOptions::new`] takes
    /// the path from `PUNO_SWEEP_CHECKPOINT`, so a killed `sweep_all` can
    /// resume where it died.
    pub checkpoint: Option<PathBuf>,
    /// Persistent result cache (see [`crate::cache`]): fault-free cells
    /// whose digest is present replay the stored metrics instead of
    /// simulating; fresh results are stored as they complete. Also the
    /// source of the cost model behind the longest-first job ordering.
    /// [`SweepOptions::new`] wires in the process-wide `PUNO_RESULT_CACHE`
    /// cache; tests inject their own.
    pub result_cache: Option<Arc<ResultCache>>,
    /// System configuration per mechanism — [`SystemConfig::paper`] (the
    /// 4x4 Table II machine) by default; big-mesh scaling sweeps substitute
    /// [`SystemConfig::mesh8`] / [`SystemConfig::mesh16`]. Cache digests
    /// already cover the full config, so differently-configured sweeps
    /// never collide in the result cache.
    pub config: fn(Mechanism) -> SystemConfig,
    /// Prefix-fork execution (see `System::run_prefix` / `fork_from`):
    /// cells sharing a `(workload params, seed, geometry)` group run their
    /// mechanism-neutral prefix — everything up to the first TX_BEGIN —
    /// once, and every sibling cell forks from the snapshot instead of
    /// replaying it. Bit-identical to straight-line execution (gated by
    /// `tests/prefix_fork.rs` and the golden suite); traced retries always
    /// run straight-line so their trace covers the whole run.
    /// [`SweepOptions::new`] honours the `PUNO_PREFIX_FORK` env override
    /// (default on).
    pub prefix_fork: bool,
}

impl SweepOptions {
    pub fn new(seed: u64, scale: f64) -> Self {
        Self {
            seed,
            scale,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::from_env(),
            checkpoint: std::env::var_os("PUNO_SWEEP_CHECKPOINT").map(PathBuf::from),
            result_cache: global_cache(),
            config: SystemConfig::paper,
            prefix_fork: crate::run::env_prefix_fork(),
        }
    }
}

/// One prefix-group slot in a sweep's fork pool: computed once by whichever
/// worker reaches the group first (siblings block on the `OnceLock` for the
/// few prefix cycles, then fork), shared for the rest of the sweep.
enum PrefixEntry {
    /// The prefix stopped at the mechanism-neutral fork boundary: restore
    /// `snapshot` and swap the mechanism to materialize any sibling cell.
    Forkable {
        snapshot: SystemSnapshot,
        /// Simulated cycle of the fork boundary.
        cycle: u64,
        /// Host seconds the prefix runner spent reaching it (what every
        /// forked sibling saves).
        wall_secs: f64,
    },
    /// The group's run completed — or failed — before any transaction
    /// began: nothing to fork, siblings run straight-line (a failing
    /// prefix re-raises its structured error on the straight-line run).
    Unavailable,
}

/// Messages kept in the trace ring when a retry runs traced.
const RETRY_TRACE_CAPACITY: usize = 512;

thread_local! {
    /// One long-lived `System` per sweep worker thread: `try_sweep` resets
    /// it between cells (validated bit-identical to fresh construction)
    /// instead of reconstructing, keeping the LineMaps, event queue, NoC
    /// buffers, and per-node scratch allocations warm across the sweep.
    static WORKER_SYSTEM: RefCell<Option<System>> = const { RefCell::new(None) };
}

/// Run `workloads x mechanisms` under `opts`, containing per-cell failures.
/// Outcomes come back in deterministic (workload-major) order regardless of
/// worker scheduling or resume state.
///
/// The cell body is the sweep-scale fast path: each workload's trace is
/// generated once per `(params, seed)` and shared immutably across its
/// mechanism cells and retries; each worker thread recycles one `System`
/// across the cells it runs; and with a result cache configured, fault-free
/// cells whose inputs are unchanged replay their stored metrics without
/// simulating at all. All three paths are bit-identical to a fresh
/// `System::new(..).try_run()` per cell.
pub fn try_sweep(
    workloads: &[WorkloadId],
    mechanisms: &[Mechanism],
    opts: &SweepOptions,
) -> Vec<CellOutcome> {
    try_sweep_rows(workloads, mechanisms, opts).0
}

/// [`try_sweep`] additionally returning one flattened [`WarehouseRow`] per
/// cell (deterministic cell order, same `run_id` for the whole sweep) —
/// what `sweep_all --json` emits and what the `PUNO_WAREHOUSE` sink
/// records.
pub fn try_sweep_rows(
    workloads: &[WorkloadId],
    mechanisms: &[Mechanism],
    opts: &SweepOptions,
) -> (Vec<CellOutcome>, Vec<WarehouseRow>) {
    let programs: Mutex<HashMap<(u64, u64), Arc<ProgramSet>>> = Mutex::new(HashMap::new());
    // Prefix-fork pool, one slot per `prefix_digest` group. Sweep-local —
    // never process-global — because the snapshot bakes in this sweep's
    // fault-plan state, which is only constant within one sweep. Slots are
    // created lazily on the first *cold* cell of a group, so a fully warm
    // group never runs its prefix at all.
    let prefixes: Mutex<HashMap<u64, Arc<OnceLock<PrefixEntry>>>> = Mutex::new(HashMap::new());
    let cache = opts.result_cache.clone();
    // Fault plans perturb simulated behaviour, so those runs are neither
    // served from nor stored into the cache.
    let cacheable = opts.fault_plan.is_empty();
    try_sweep_with_rows(
        workloads,
        mechanisms,
        opts,
        move |mechanism, params, seed, traced| {
            let config = (opts.config)(mechanism);
            let digest = cell_digest(&config, params, seed);
            let prefix_key = crate::cache::prefix_digest(&config, params, seed);
            if cacheable {
                if let Some(cache) = &cache {
                    if let Some(metrics) = cache.lookup(digest) {
                        obs::note_cache_hit();
                        return Ok(metrics);
                    }
                }
            }
            let program_set = {
                let key = (params_digest(params), seed);
                let mut map = programs.lock().unwrap_or_else(|e| e.into_inner());
                map.entry(key)
                    .or_insert_with(|| Arc::new(ProgramSet::generate(params, config.nodes(), seed)))
                    .clone()
            };
            // Take the recycled System *out* of the worker's slot for the
            // duration of the run: if the cell panics, the unwind drops the
            // (possibly inconsistent) System instead of leaving it in the
            // slot to poison the next cell — it is reinstalled only after
            // the run returns normally (Ok or a structured RunError, after
            // which `reset` fully reinitializes it).
            let mut sys = WORKER_SYSTEM.with(|slot| slot.borrow_mut().take());
            // Full reinitialization for a straight-line run; deferred so
            // forked cells — whose `fork_from` overwrites the entire
            // simulated state anyway — can skip it (see below).
            let reset_now = |sys: &mut Option<System>| match sys.as_mut() {
                Some(sys) => sys.reset(config, params, seed, &program_set),
                None => *sys = Some(System::new_shared(config, params, seed, &program_set)),
            };
            // Prefix-fork execution. Traced retries are excluded: their
            // point is a trace covering the whole run, so they replay from
            // cycle 0. Exactly one cell per group — whichever worker gets
            // here first — runs the prefix (siblings block on the slot for
            // those few cycles) and then simply continues in place; every
            // other cell restores the snapshot and swaps its mechanism in.
            let mut ran_prefix_here = false;
            let mut fork_inherited: Option<(u64, f64)> = None;
            let prefix_slot = (opts.prefix_fork && !traced).then(|| {
                let mut map = prefixes.lock().unwrap_or_else(|e| e.into_inner());
                map.entry(prefix_key).or_default().clone()
            });
            if let Some(slot) = &prefix_slot {
                let entry = slot.get_or_init(|| {
                    ran_prefix_here = true;
                    reset_now(&mut sys);
                    let sys = sys.as_mut().expect("worker System just installed");
                    // The shared prefix honors the same express setting as
                    // the cells that fork from it, so an express-off sweep
                    // is express-off end to end (admission is transparent
                    // either way; this keeps the counters honest).
                    sys.set_noc_express(crate::run::env_noc_express());
                    // The plan must be armed before the prefix: fault RNG
                    // draws during the prefix are part of the shared state
                    // (and of any straight-line run's history).
                    if !opts.fault_plan.is_empty() {
                        sys.set_fault_plan(opts.fault_plan.clone());
                    }
                    let t0 = std::time::Instant::now();
                    match sys.run_prefix(crate::run::env_prefix_cycles()) {
                        Ok(crate::system::PrefixStop::Armed { cycle }) => PrefixEntry::Forkable {
                            snapshot: sys.snapshot(),
                            cycle,
                            wall_secs: t0.elapsed().as_secs_f64(),
                        },
                        // Completed before any begin, or failed (the
                        // continued run below re-detects the same
                        // structured failure, with forensics on retry).
                        Ok(crate::system::PrefixStop::Completed) | Err(_) => {
                            PrefixEntry::Unavailable
                        }
                    }
                });
                if !ran_prefix_here {
                    if let PrefixEntry::Forkable {
                        snapshot,
                        cycle,
                        wall_secs,
                    } = entry
                    {
                        // Fast path: the restore inside `fork_from` replaces
                        // the whole simulated state, so a recycled worker
                        // System only needs its host counters and sinks
                        // cleared, not the full per-node `reset`. An empty
                        // slot or a geometry mismatch falls back to `reset`.
                        if !sys.as_mut().is_some_and(|s| s.prepare_fork_target(&config)) {
                            reset_now(&mut sys);
                        }
                        let sys = sys.as_mut().expect("worker System just installed");
                        sys.fork_from(snapshot, config);
                        fork_inherited = Some((*cycle, *wall_secs));
                    }
                }
            }
            if !ran_prefix_here && fork_inherited.is_none() {
                reset_now(&mut sys);
            }
            let mut sys = sys.expect("worker System just installed");
            if traced {
                sys.enable_trace(RETRY_TRACE_CAPACITY);
                // Auto-arm the snapshot ring so a persistently failing
                // cell's final error is a rewind-and-dump of the stalled
                // window. `PUNO_SNAPSHOT_EVERY` overrides the interval
                // (an explicit 0 keeps it off).
                let every = crate::run::env_snapshot_every()
                    .unwrap_or_else(|| (config.watchdog_window / 2).max(1));
                if every > 0 {
                    sys.set_snapshot_every(every);
                }
            }
            // Straight-line cells arm the plan here; prefix runners already
            // did, and forked cells inherited the injector mid-run state
            // from the snapshot (re-arming would rewind its RNG draws).
            if !opts.fault_plan.is_empty() && !ran_prefix_here && fork_inherited.is_none() {
                sys.set_fault_plan(opts.fault_plan.clone());
            }
            sys.set_run_threads(crate::run::env_run_threads());
            sys.set_noc_express(crate::run::env_noc_express());
            let result = sys.try_run_recycled();
            WORKER_SYSTEM.with(|slot| *slot.borrow_mut() = Some(sys));
            let mut metrics = result?;
            if let Some((cycle, saved)) = fork_inherited {
                metrics.host.prefix_forks = 1;
                metrics.host.prefix_cycles_shared = cycle;
                metrics.host.prefix_time_saved = saved;
            }
            if cacheable {
                if let Some(cache) = &cache {
                    cache.store(digest, prefix_key, seed, &metrics);
                }
            }
            Ok(metrics)
        },
    )
}

/// [`try_sweep`] parameterized over the per-cell runner — the containment,
/// retry, and checkpoint machinery is identical, but tests (and custom
/// harnesses) can substitute their own cell body. The runner's `traced`
/// flag is false on the first attempt and true on retries.
pub fn try_sweep_with<F>(
    workloads: &[WorkloadId],
    mechanisms: &[Mechanism],
    opts: &SweepOptions,
    runner: F,
) -> Vec<CellOutcome>
where
    F: Fn(Mechanism, &WorkloadParams, u64, bool) -> Result<RunMetrics, RunError> + Sync,
{
    try_sweep_with_rows(workloads, mechanisms, opts, runner).0
}

/// [`try_sweep_with`] additionally returning one [`WarehouseRow`] per cell.
/// Also the home of the live-observability publication: with the registry
/// enabled (see [`crate::obs`]) the sweep publishes cells started/
/// completed/cache-hit/retry counters, per-worker busy gauges, done/total
/// progress gauges, and a cell wall-clock histogram *while running*; with
/// `PUNO_PROGRESS` set it additionally prints a throttled stderr heartbeat
/// whose ETA comes from the same LPT cost estimates that order the job
/// queue; with `PUNO_WAREHOUSE` set the rows are appended to the cross-run
/// warehouse. All of it is host-side only — cell outcomes are bit-identical
/// with every sink on or off.
pub fn try_sweep_with_rows<F>(
    workloads: &[WorkloadId],
    mechanisms: &[Mechanism],
    opts: &SweepOptions,
    runner: F,
) -> (Vec<CellOutcome>, Vec<WarehouseRow>)
where
    F: Fn(Mechanism, &WorkloadParams, u64, bool) -> Result<RunMetrics, RunError> + Sync,
{
    obs::init_from_env();
    let registry = obs::global();
    let cells: Vec<(CellKey, WorkloadParams)> = workloads
        .iter()
        .flat_map(|&w| {
            let params = w.params().scaled(opts.scale);
            mechanisms.iter().map(move |&m| {
                (
                    CellKey {
                        workload: w,
                        mechanism: m,
                        seed: opts.seed,
                    },
                    params.clone(),
                )
            })
        })
        .collect();

    let resumed: Vec<CellOutcome> = opts
        .checkpoint
        .as_deref()
        .map(load_checkpoint)
        .unwrap_or_default();

    // Slot per cell; resumed successes are filled in up front, the rest run.
    let mut slots: Vec<Option<CellOutcome>> = cells
        .iter()
        .map(|(key, _)| {
            resumed
                .iter()
                .find(|o| o.is_ok() && o.key() == *key)
                .cloned()
        })
        .collect();
    let mut jobs: Vec<usize> = (0..cells.len()).filter(|&i| slots[i].is_none()).collect();

    // Cost-aware scheduling: order the queue longest-estimated-first (LPT)
    // so the expensive cells start immediately and a straggler cannot end
    // up alone at the tail of the sweep with every other worker idle.
    // Estimates come from prior cell wall-clocks persisted next to the
    // result cache, falling back to a parameter-derived heuristic for
    // never-seen cells; ties (and the no-information case) preserve the
    // original deterministic cell order. Output order is unaffected.
    let cost_model = opts
        .result_cache
        .as_deref()
        .map(ResultCache::load_costs)
        .unwrap_or_default();
    let estimates: Vec<f64> = cells
        .iter()
        .map(|(key, params)| cost_model.estimate(key.workload.name(), key.mechanism.name(), params))
        .collect();
    jobs.sort_by(|&a, &b| {
        estimates[b]
            .partial_cmp(&estimates[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let checkpoint_file: Option<Mutex<std::fs::File>> = opts.checkpoint.as_deref().map(|path| {
        Mutex::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("cannot open sweep checkpoint {path:?}: {e}")),
        )
    });

    let done: Mutex<Vec<(usize, CellOutcome, bool)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let started = std::sync::atomic::AtomicUsize::new(0);
    let threads = effective_workers(jobs.len());

    // Registered up front so a scrape early in the sweep already sees every
    // family; `None` (the default) keeps every publish site to one branch.
    let sweep_obs = registry.map(|reg| SweepObs::new(reg, cells.len(), jobs.len()));
    let heartbeat = obs::env_progress().map(|interval| Heartbeat {
        interval,
        alive: Mutex::new(threads),
        cv: Condvar::new(),
    });
    let job_weight_total: f64 = jobs.iter().map(|&i| estimates[i]).sum();
    let resumed_count = cells.len() - jobs.len();
    let sweep_start = std::time::Instant::now();

    std::thread::scope(|s| {
        let (jobs, cells, done, next, started) = (&jobs, &cells, &done, &next, &started);
        let (runner, checkpoint_file, retry) = (&runner, &checkpoint_file, &opts.retry);
        let (sweep_obs, heartbeat, estimates) =
            (sweep_obs.as_ref(), heartbeat.as_ref(), &estimates);
        for w in 0..threads {
            s.spawn(move || {
                obs::set_worker(&format!("s{w}"));
                let busy = sweep_obs.map(|o| o.worker_busy(w));
                loop {
                    let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if j >= jobs.len() {
                        break;
                    }
                    let i = jobs[j];
                    let (key, ref params) = cells[i];
                    started.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if let Some(o) = sweep_obs {
                        o.cells_started.inc();
                    }
                    if let Some(b) = &busy {
                        b.set(1.0);
                    }
                    let t0 = std::time::Instant::now();
                    let outcome =
                        run_cell(runner, key, params, retry, sweep_obs.map(|o| &o.retries));
                    let cache_hit = obs::take_cache_hit();
                    if let Some(o) = sweep_obs {
                        o.observe_outcome(&outcome, cache_hit, t0.elapsed().as_secs_f64());
                    }
                    if let Some(b) = &busy {
                        b.set(0.0);
                    }
                    if let Some(file) = &checkpoint_file {
                        let line = serde_json::to_string(&outcome)
                            .expect("sweep cell outcome must serialize");
                        let mut f = file.lock().unwrap_or_else(|e| e.into_inner());
                        let _ = writeln!(f, "{line}");
                    }
                    done.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((i, outcome, cache_hit));
                }
                if let Some(hb) = heartbeat {
                    hb.worker_done();
                }
            });
        }
        if let Some(hb) = heartbeat {
            s.spawn(move || {
                hb.run(
                    sweep_start,
                    resumed_count,
                    cells.len(),
                    job_weight_total,
                    started,
                    done,
                    estimates,
                );
            });
        }
    });

    // Feed observed wall-clocks back into the persisted cost model (only
    // cells that actually ran this sweep; resumed cells are skipped).
    let mut cost_records: Vec<CostRecord> = Vec::new();
    let mut cache_hits = vec![false; cells.len()];
    for (i, outcome, cache_hit) in done.into_inner().unwrap_or_else(|e| e.into_inner()) {
        cache_hits[i] = cache_hit;
        if let CellOutcome::Ok { key, metrics } = &outcome {
            if metrics.host.wall_secs > 0.0 {
                cost_records.push(CostRecord {
                    workload: key.workload.name().to_string(),
                    mechanism: key.mechanism.name().to_string(),
                    tx_per_node: cells[i].1.tx_per_node,
                    wall_secs: metrics.host.wall_secs,
                });
            }
        }
        slots[i] = Some(outcome);
    }
    if let Some(cache) = &opts.result_cache {
        cache.append_costs(&cost_records);
    }

    let outcomes: Vec<CellOutcome> = slots
        .into_iter()
        .map(|s| {
            let mut outcome = s.expect("every sweep cell resolved");
            // Record the sweep's effective worker count — and the intra-run
            // thread count it was budgeted against — in every cell's
            // host-side perf block (non-deterministic observability only —
            // excluded from golden comparisons like the rest of HostPerf).
            if let CellOutcome::Ok { metrics, .. } = &mut outcome {
                metrics.host.sweep_workers = threads as u64;
                metrics.host.run_workers = crate::run::env_run_threads() as u64;
            }
            outcome
        })
        .collect();

    // Flatten every cell into a warehouse row (deterministic order, one
    // run_id for the whole sweep) and record them when the sink is on.
    let recorded_unix = warehouse::unix_now();
    let run_id = warehouse::run_id_from_env(recorded_unix);
    let rows: Vec<WarehouseRow> = outcomes
        .iter()
        .zip(cells.iter())
        .enumerate()
        .map(|(i, (outcome, (key, params)))| {
            let digest = cell_digest(&(opts.config)(key.mechanism), params, key.seed);
            match outcome {
                CellOutcome::Ok { metrics, .. } => WarehouseRow::from_metrics(
                    &run_id,
                    recorded_unix,
                    digest,
                    "ok",
                    cache_hits[i],
                    metrics,
                ),
                CellOutcome::Err { .. } | CellOutcome::Quarantined { .. } => {
                    WarehouseRow::placeholder(
                        &run_id,
                        recorded_unix,
                        digest,
                        key.workload.name(),
                        key.mechanism.name(),
                        key.seed,
                        if outcome.is_quarantined() {
                            "quarantined"
                        } else {
                            "err"
                        },
                    )
                }
            }
        })
        .collect();
    if let Some(dir) = warehouse::env_warehouse() {
        let appended = warehouse::Warehouse::open(&dir).and_then(|wh| wh.append(&rows));
        match appended {
            Ok(()) => {
                if let Some(o) = &sweep_obs {
                    o.warehouse_rows.add(rows.len() as u64);
                }
            }
            Err(e) => eprintln!(
                "warning: PUNO_WAREHOUSE={} unusable ({e}); rows not recorded",
                dir.display()
            ),
        }
    }

    // Surface the result cache's maintenance history (corrupt/stale skips
    // at open, last compaction) through the registry — previously these
    // totals were only visible on stderr at open time.
    if let (Some(reg), Some(cache)) = (registry, opts.result_cache.as_deref()) {
        publish_cache_stats(reg, cache);
    }

    (outcomes, rows)
}

/// The sweep driver's registered metric families (see [`crate::obs`]).
struct SweepObs {
    registry: &'static obs::MetricsRegistry,
    cells_started: obs::Counter,
    done_ok: obs::Counter,
    done_err: obs::Counter,
    done_quarantined: obs::Counter,
    cache_hits: obs::Counter,
    retries: obs::Counter,
    warehouse_rows: obs::Counter,
    prefix_forks: obs::Counter,
    express_packets: obs::Counter,
    quiesced_cycles: obs::Counter,
    cells_total: obs::Gauge,
    cells_done: obs::Gauge,
    cell_wall: obs::Histogram,
}

impl SweepObs {
    fn new(registry: &'static obs::MetricsRegistry, total: usize, jobs: usize) -> Self {
        let outcome_counter = |outcome: &str| {
            registry.counter(
                "puno_sweep_cells_completed_total",
                "Sweep cells finished, by outcome.",
                &[("outcome", outcome)],
            )
        };
        let o = Self {
            registry,
            cells_started: registry.counter(
                "puno_sweep_cells_started_total",
                "Sweep cells handed to a worker (attempt 1).",
                &[],
            ),
            done_ok: outcome_counter("ok"),
            done_err: outcome_counter("err"),
            done_quarantined: outcome_counter("quarantined"),
            cache_hits: registry.counter(
                "puno_sweep_cache_hits_total",
                "Sweep cells replayed from the result cache without simulating.",
                &[],
            ),
            retries: registry.counter(
                "puno_sweep_cell_retries_total",
                "Escalating (traced, snapshot-armed) cell retry attempts.",
                &[],
            ),
            warehouse_rows: registry.counter(
                "puno_warehouse_rows_total",
                "Rows appended to the PUNO_WAREHOUSE result warehouse.",
                &[],
            ),
            prefix_forks: registry.counter(
                "puno_prefix_forks_total",
                "Cells materialized by forking a shared mechanism-neutral prefix.",
                &[],
            ),
            express_packets: registry.counter(
                "puno_express_packets_total",
                "NoC packets delivered over the contention-free express path.",
                &[],
            ),
            quiesced_cycles: registry.counter(
                "puno_express_quiesced_cycles_total",
                "Simulated cycles skipped by express-flight quiescence.",
                &[],
            ),
            cells_total: registry.gauge(
                "puno_sweep_cells",
                "Cells in the current sweep grid (resumed cells included).",
                &[],
            ),
            cells_done: registry.gauge(
                "puno_sweep_cells_done",
                "Cells resolved so far (resumed cells included).",
                &[],
            ),
            cell_wall: registry.histogram(
                "puno_sweep_cell_wall_seconds",
                "Wall-clock per resolved sweep cell (cache hits included).",
                &[],
                &[0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0],
            ),
        };
        o.cells_total.set(total as f64);
        o.cells_done.set((total - jobs) as f64);
        o
    }

    fn worker_busy(&self, w: usize) -> obs::Gauge {
        let label = format!("s{w}");
        self.registry.gauge(
            "puno_sweep_worker_busy",
            "1 while this sweep worker is running a cell, else 0.",
            &[("worker", label.as_str())],
        )
    }

    fn observe_outcome(&self, outcome: &CellOutcome, cache_hit: bool, wall_secs: f64) {
        match outcome {
            CellOutcome::Ok { metrics, .. } => {
                self.done_ok.inc();
                self.prefix_forks.add(metrics.host.prefix_forks);
                self.express_packets.add(metrics.host.express_packets);
                self.quiesced_cycles.add(metrics.host.quiesced_cycles);
            }
            CellOutcome::Err { .. } => self.done_err.inc(),
            CellOutcome::Quarantined { .. } => self.done_quarantined.inc(),
        }
        if cache_hit {
            self.cache_hits.inc();
        }
        self.cells_done.add(1.0);
        self.cell_wall.observe(wall_secs);
    }
}

/// Publish the result cache's hit/skip/compaction totals as gauges (set,
/// not added — the cache is process-wide and its stats are cumulative, so
/// repeated sweeps republish the current totals idempotently).
fn publish_cache_stats(registry: &obs::MetricsRegistry, cache: &ResultCache) {
    let set = |name: &str, help: &str, v: f64| registry.gauge(name, help, &[]).set(v);
    let s = cache.stats();
    set(
        "puno_cache_entries",
        "Live records in the result cache.",
        s.entries as f64,
    );
    set(
        "puno_cache_hits",
        "Result-cache lookups served from memory.",
        s.hits as f64,
    );
    set(
        "puno_cache_misses",
        "Result-cache lookups that missed.",
        s.misses as f64,
    );
    set(
        "puno_cache_stores",
        "Fresh results appended to the cache.",
        s.stores as f64,
    );
    set(
        "puno_cache_corrupt_skipped",
        "Corrupt (torn or checksum-failed) records skipped at cache open.",
        s.corrupt_skipped as f64,
    );
    set(
        "puno_cache_stale_skipped",
        "Stale-engine-version records skipped at cache open.",
        s.stale_skipped as f64,
    );
    if let Some(c) = cache.last_compact() {
        set(
            "puno_cache_compact_kept",
            "Records kept by the most recent cache compaction.",
            c.kept as f64,
        );
        set(
            "puno_cache_compact_dropped_corrupt",
            "Corrupt lines dropped by the most recent cache compaction.",
            c.dropped_corrupt as f64,
        );
        set(
            "puno_cache_compact_dropped_stale",
            "Stale records dropped by the most recent cache compaction.",
            c.dropped_stale as f64,
        );
        set(
            "puno_cache_compact_dropped_duplicate",
            "Superseded duplicates dropped by the most recent cache compaction.",
            c.dropped_duplicate as f64,
        );
    }
}

/// The sweep's stderr progress sink: a dedicated thread beating every
/// `interval` until the last worker signals, with an ETA extrapolated from
/// the LPT cost estimates (work-weighted, so a long straggler cell keeps
/// the ETA honest where a plain cells/second rate would not).
struct Heartbeat {
    interval: std::time::Duration,
    /// Workers still running; the last one out notifies the condvar.
    alive: Mutex<usize>,
    cv: Condvar,
}

impl Heartbeat {
    fn worker_done(&self) {
        let mut alive = self.alive.lock().unwrap_or_else(|e| e.into_inner());
        *alive = alive.saturating_sub(1);
        if *alive == 0 {
            self.cv.notify_all();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        start: std::time::Instant,
        resumed: usize,
        total: usize,
        job_weight_total: f64,
        started: &std::sync::atomic::AtomicUsize,
        done: &Mutex<Vec<(usize, CellOutcome, bool)>>,
        estimates: &[f64],
    ) {
        loop {
            let finished = {
                let alive = self.alive.lock().unwrap_or_else(|e| e.into_inner());
                if *alive == 0 {
                    true
                } else {
                    let (alive, _) = self
                        .cv
                        .wait_timeout(alive, self.interval)
                        .unwrap_or_else(|e| e.into_inner());
                    *alive == 0
                }
            };
            let (finished_jobs, done_weight) = {
                let d = done.lock().unwrap_or_else(|e| e.into_inner());
                (
                    d.len(),
                    d.iter().map(|(i, _, _)| estimates[*i]).sum::<f64>(),
                )
            };
            let running = started
                .load(std::sync::atomic::Ordering::Relaxed)
                .saturating_sub(finished_jobs);
            let elapsed = start.elapsed().as_secs_f64();
            let eta = (done_weight > 0.0 && elapsed > 0.0)
                .then(|| (job_weight_total - done_weight).max(0.0) * elapsed / done_weight);
            eprintln!(
                "{}",
                obs::render_heartbeat(resumed + finished_jobs, total, running, elapsed, eta)
            );
            if finished {
                return;
            }
        }
    }
}

/// Effective sweep worker count — the single place it is decided.
///
/// Starts from `available_parallelism` *divided by the intra-run thread
/// count* (`PUNO_RUN_THREADS`): each sweep worker may itself fan a cell
/// out across `run_threads` pool workers, so the sweep budget is clamped
/// so `sweep_threads x run_threads` never oversubscribes the host (a 4x4
/// configuration on a 4-core box runs one cell at a time instead of
/// thrashing 16 threads). The result is optionally capped by the
/// `PUNO_SWEEP_THREADS` env override (so CI and bench runs use a pinned,
/// reproducible count; per-cell results are deterministic at any thread
/// count), then clamped to the number of runnable jobs so a small or
/// mostly-resumed sweep does not spawn idle threads. Unparsable or zero
/// overrides fall back to the budgeted count.
pub fn effective_workers(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let budget = (hw / crate::run::env_run_threads()).max(1);
    let capped = match std::env::var("PUNO_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => budget.min(n),
        _ => budget,
    };
    capped.min(jobs.max(1))
}

/// Run one cell with panic containment under the escalating retry policy.
/// A cell that exhausts a multi-attempt budget comes back
/// [`CellOutcome::Quarantined`]; with no retry budget a failure stays a
/// plain [`CellOutcome::Err`].
fn run_cell<F>(
    runner: &F,
    key: CellKey,
    params: &WorkloadParams,
    policy: &RetryPolicy,
    obs_retries: Option<&obs::Counter>,
) -> CellOutcome
where
    F: Fn(Mechanism, &WorkloadParams, u64, bool) -> Result<RunMetrics, RunError> + Sync,
{
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let traced = attempts > 1;
        let result = catch_unwind(AssertUnwindSafe(|| {
            runner(key.mechanism, params, key.seed, traced)
        }));
        let error = match result {
            Ok(Ok(metrics)) => return CellOutcome::Ok { key, metrics },
            Ok(Err(error)) => error,
            Err(payload) => RunError::WorkerPanic {
                payload: panic_payload_string(payload),
            },
        };
        if attempts >= policy.max_attempts {
            return if policy.max_attempts > 1 {
                CellOutcome::Quarantined {
                    key,
                    error,
                    attempts,
                }
            } else {
                CellOutcome::Err {
                    key,
                    error,
                    attempts,
                }
            };
        }
        if let Some(counter) = obs_retries {
            counter.inc();
        }
        let delay = policy.backoff(attempts + 1, key.seed);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
}

fn panic_payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// Parse a JSONL checkpoint, skipping unparsable (e.g. torn) lines.
fn load_checkpoint(path: &Path) -> Vec<CellOutcome> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<CellOutcome>(l).ok())
        .collect()
}

/// Run `workloads x mechanisms` (single seed) in parallel, panicking if any
/// cell fails — the strict interface the report/figure generators build on.
pub fn sweep(
    workloads: &[WorkloadId],
    mechanisms: &[Mechanism],
    seed: u64,
    scale: f64,
) -> Vec<SweepResult> {
    let opts = SweepOptions::new(seed, scale);
    try_sweep(workloads, mechanisms, &opts)
        .into_iter()
        .map(|outcome| match outcome {
            CellOutcome::Ok { key, metrics } => SweepResult {
                workload: key.workload,
                mechanism: key.mechanism,
                metrics,
            },
            CellOutcome::Err { key, error, .. } | CellOutcome::Quarantined { key, error, .. } => {
                panic!(
                    "sweep cell {:?}/{:?} @ seed {} failed: {error}",
                    key.workload, key.mechanism, key.seed
                )
            }
        })
        .collect()
}

/// Run the sweep for several seeds (one full sweep per seed; results stay
/// keyed and deterministic).
pub fn sweep_seeds(
    workloads: &[WorkloadId],
    mechanisms: &[Mechanism],
    seeds: &[u64],
    scale: f64,
) -> Vec<Vec<SweepResult>> {
    seeds
        .iter()
        .map(|&s| sweep(workloads, mechanisms, s, scale))
        .collect()
}

/// Find one cell in a sweep result set.
pub fn find(
    results: &[SweepResult],
    workload: WorkloadId,
    mechanism: Mechanism,
) -> Option<&RunMetrics> {
    results
        .iter()
        .find(|r| r.workload == workload && r.mechanism == mechanism)
        .map(|r| &r.metrics)
}

/// [`find`], panicking with the missing key when the cell is absent — for
/// report/figure generators that have already validated the sweep grid.
pub fn find_expect(
    results: &[SweepResult],
    workload: WorkloadId,
    mechanism: Mechanism,
) -> &RunMetrics {
    find(results, workload, mechanism)
        .unwrap_or_else(|| panic!("missing cell {workload:?}/{mechanism:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_workload;

    #[test]
    fn sweep_returns_all_cells_in_order() {
        let workloads = [WorkloadId::Ssca2, WorkloadId::Kmeans];
        let mechanisms = [Mechanism::Baseline, Mechanism::Puno];
        let results = sweep(&workloads, &mechanisms, 1, 0.05);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].workload, WorkloadId::Ssca2);
        assert_eq!(results[0].mechanism, Mechanism::Baseline);
        assert_eq!(results[3].workload, WorkloadId::Kmeans);
        assert_eq!(results[3].mechanism, Mechanism::Puno);
        let m = find_expect(&results, WorkloadId::Kmeans, Mechanism::Puno);
        assert!(m.committed > 0);
    }

    #[test]
    fn parallel_sweep_matches_serial_run() {
        let results = sweep(&[WorkloadId::Ssca2], &[Mechanism::Baseline], 7, 0.05);
        let serial = run_workload(
            Mechanism::Baseline,
            &WorkloadId::Ssca2.params().scaled(0.05),
            7,
        );
        assert_eq!(results[0].metrics.cycles, serial.cycles);
        assert_eq!(results[0].metrics.htm.aborts.get(), serial.htm.aborts.get());
    }

    #[test]
    fn find_returns_none_for_missing_cell() {
        let results = sweep(&[WorkloadId::Ssca2], &[Mechanism::Baseline], 1, 0.05);
        assert!(find(&results, WorkloadId::Ssca2, Mechanism::Puno).is_none());
        assert!(find(&results, WorkloadId::Ssca2, Mechanism::Baseline).is_some());
    }

    /// A runner that panics on exactly one cell: the others must still
    /// complete and the failure must surface as a structured outcome.
    #[test]
    fn one_panicking_cell_does_not_sink_the_sweep() {
        let workloads = [WorkloadId::Ssca2, WorkloadId::Kmeans];
        let mechanisms = [Mechanism::Baseline];
        let opts = SweepOptions::new(3, 0.05);
        let outcomes = try_sweep_with(&workloads, &mechanisms, &opts, |m, params, seed, _| {
            if params.name.contains("kmeans") {
                panic!("injected cell failure");
            }
            Ok(crate::run::run_workload(m, params, seed))
        });
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].is_ok(), "healthy cell must complete");
        let err = outcomes[1].error().expect("kmeans cell must fail");
        assert_eq!(err.kind(), "worker_panic");
        assert!(err.to_string().contains("injected cell failure"));
    }

    /// Retries re-run the cell; a first-attempt-only failure recovers.
    #[test]
    fn retry_recovers_a_transient_failure() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts = AtomicU32::new(0);
        let mut opts = SweepOptions::new(3, 0.05);
        opts.retry = RetryPolicy::new(2);
        let outcomes = try_sweep_with(
            &[WorkloadId::Ssca2],
            &[Mechanism::Baseline],
            &opts,
            |m, params, seed, traced| {
                if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    assert!(!traced, "first attempt runs untraced");
                    panic!("transient");
                }
                assert!(traced, "retry must run traced");
                Ok(crate::run::run_workload(m, params, seed))
            },
        );
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
        assert!(outcomes[0].is_ok());
    }

    /// A cell forced into a genuine livelock (hostile cycle budget) must
    /// surface as a structured `RunError` whose retry captured a message
    /// trace, while the sibling cell completes.
    #[test]
    fn forced_livelock_cell_reports_structured_error_with_trace() {
        let workloads = [WorkloadId::Ssca2, WorkloadId::Kmeans];
        let mechanisms = [Mechanism::Baseline];
        let mut opts = SweepOptions::new(5, 0.05);
        opts.retry = RetryPolicy::new(2);
        let outcomes = try_sweep_with(&workloads, &mechanisms, &opts, |m, params, seed, traced| {
            let mut config = SystemConfig::paper(m);
            if params.name.contains("kmeans") {
                // Hostile budget: the watchdog window cannot see a commit.
                config.watchdog_window = 50;
            }
            let mut sys = System::new(config, params, seed);
            if traced {
                sys.enable_trace(64);
            }
            sys.try_run()
        });
        assert!(outcomes[0].is_ok(), "healthy cell must complete");
        let err = outcomes[1].error().expect("hostile cell must fail");
        assert_eq!(err.kind(), "livelock");
        assert!(
            !err.trace().is_empty(),
            "the traced retry must capture the message trace"
        );
        assert!(
            outcomes[1].is_quarantined(),
            "an exhausted retry budget must quarantine the cell"
        );
        assert_eq!(outcomes[1].attempts(), Some(2));
    }

    /// Interrupted sweep: first pass checkpoints one success and one
    /// failure; the resumed pass re-runs only the failed cell.
    #[test]
    fn checkpoint_resume_skips_completed_cells() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let dir = std::env::temp_dir().join(format!(
            "puno-sweep-ckpt-{}-{}",
            std::process::id(),
            "resume"
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        let workloads = [WorkloadId::Ssca2, WorkloadId::Kmeans];
        let mechanisms = [Mechanism::Baseline];
        let mut opts = SweepOptions::new(3, 0.05);
        opts.checkpoint = Some(path.clone());

        let first = try_sweep_with(&workloads, &mechanisms, &opts, |m, params, seed, _| {
            if params.name.contains("kmeans") {
                panic!("fails on the first pass");
            }
            Ok(crate::run::run_workload(m, params, seed))
        });
        assert!(first[0].is_ok());
        assert!(!first[1].is_ok());

        // Second pass: the healthy cell must NOT re-run (it would trip the
        // counter), the failed one runs and now succeeds.
        let reruns = AtomicU32::new(0);
        let second = try_sweep_with(&workloads, &mechanisms, &opts, |m, params, seed, _| {
            reruns.fetch_add(1, Ordering::SeqCst);
            assert!(
                params.name.contains("kmeans"),
                "resume re-ran an already-successful cell"
            );
            Ok(crate::run::run_workload(m, params, seed))
        });
        assert_eq!(reruns.load(Ordering::SeqCst), 1);
        assert!(second[0].is_ok() && second[1].is_ok());
        assert_eq!(
            second[0].metrics().unwrap().workload,
            WorkloadId::Ssca2.name()
        );

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
