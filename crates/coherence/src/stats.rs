//! Directory-side statistics, including the Figure 12 blocking metric.

use puno_sim::{Counter, RunningStats};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DirStats {
    pub gets_received: Counter,
    pub getx_received: Counter,
    pub tx_getx_received: Counter,
    pub putx_received: Counter,
    pub mem_fetches: Counter,
    /// Multicast invalidation fan-out (number of Inv messages sent).
    pub invalidations_sent: Counter,
    /// Transactional GETX episodes serviced by PUNO unicast.
    pub unicasts_sent: Counter,
    /// Misprediction feedback events received through UNBLOCK.
    pub mispredict_feedback: Counter,
    /// Cycles entries spent in a blocking transient state, all causes.
    pub blocking_cycles_all: RunningStats,
    /// Cycles entries spent blocked while servicing *transactional GETX* —
    /// the quantity averaged in the paper's Figure 12.
    pub blocking_cycles_tx_getx: RunningStats,
    /// Requests that had to queue behind a busy entry.
    pub queued_requests: Counter,
}

impl DirStats {
    pub fn record_blocking(&mut self, cycles: u64, tx_getx: bool) {
        self.blocking_cycles_all.record(cycles);
        if tx_getx {
            self.blocking_cycles_tx_getx.record(cycles);
        }
    }

    pub fn merge(&mut self, other: &DirStats) {
        self.gets_received.add(other.gets_received.get());
        self.getx_received.add(other.getx_received.get());
        self.tx_getx_received.add(other.tx_getx_received.get());
        self.putx_received.add(other.putx_received.get());
        self.mem_fetches.add(other.mem_fetches.get());
        self.invalidations_sent.add(other.invalidations_sent.get());
        self.unicasts_sent.add(other.unicasts_sent.get());
        self.mispredict_feedback
            .add(other.mispredict_feedback.get());
        self.blocking_cycles_all.merge(&other.blocking_cycles_all);
        self.blocking_cycles_tx_getx
            .merge(&other.blocking_cycles_tx_getx);
        self.queued_requests.add(other.queued_requests.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_split_by_cause() {
        let mut s = DirStats::default();
        s.record_blocking(100, true);
        s.record_blocking(50, false);
        assert_eq!(s.blocking_cycles_all.count(), 2);
        assert_eq!(s.blocking_cycles_all.sum(), 150);
        assert_eq!(s.blocking_cycles_tx_getx.count(), 1);
        assert_eq!(s.blocking_cycles_tx_getx.sum(), 100);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DirStats::default();
        let mut b = DirStats::default();
        a.gets_received.inc();
        b.gets_received.add(2);
        b.record_blocking(10, true);
        a.merge(&b);
        assert_eq!(a.gets_received.get(), 3);
        assert_eq!(a.blocking_cycles_tx_getx.sum(), 10);
    }
}
