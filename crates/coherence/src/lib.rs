//! # puno-coherence
//!
//! The MESI directory protocol substrate the paper's HTM piggybacks on
//! (Section II-A), including the three PUNO message extensions of Figure 7:
//!
//! * **GETX/Inv + U-bit** — marks a forwarded write request as a *unicast*
//!   so the receiver knows to answer conservatively on misprediction;
//! * **NACK + notification field + MP-bit** — carries the nacker's estimated
//!   remaining run time, and flags mispredicted unicasts;
//! * **UNBLOCK + MP-bit + MP-node** — relays misprediction feedback from the
//!   requester to the home directory.
//!
//! The directory is *blocking* (SGI-Origin / GEMS style): while a request for
//! a line is being serviced, the entry sits in a transient busy state and
//! subsequent requests for the same line queue at the home node. The time
//! entries spend blocked on transactional GETX requests is the paper's
//! Figure 12 metric and is accounted here.
//!
//! Layering: this crate owns message formats, the L1 cache structure, sharer
//! tracking, and the full home-directory state machine. The node-side
//! controller that ties L1 + HTM + MSHR together lives in `puno-harness`;
//! conflict decisions are delegated through small traits so the HTM and PUNO
//! crates can be developed and tested independently.

pub mod directory;
pub mod l1;
pub mod msg;
pub mod predictor;
pub mod sharers;
pub mod stats;

pub use directory::{DirAction, DirConfig, DirectoryBank};
pub use l1::{L1Cache, L1Config, LineState, LookupOutcome};
pub use msg::{CoherenceMsg, TxInfo};
pub use predictor::{NullPredictor, PredictedTarget, UnicastPredictor};
pub use sharers::SharerSet;
pub use stats::DirStats;

/// Static home-node mapping: every line has a home L2 bank/directory slice
/// determined by its address (Table II: "static cache bank directory").
#[inline]
pub fn home_node(addr: puno_sim::LineAddr, nodes: u16) -> puno_sim::NodeId {
    puno_sim::NodeId((addr.0 % nodes as u64) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_sim::LineAddr;

    #[test]
    fn home_mapping_is_static_and_total() {
        for a in 0..64 {
            let h = home_node(LineAddr(a), 16);
            assert!(h.0 < 16);
            assert_eq!(h, home_node(LineAddr(a), 16));
        }
        assert_eq!(home_node(LineAddr(17), 16).0, 1);
    }
}
