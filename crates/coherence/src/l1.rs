//! Private L1 data cache model (Table II: 32 KB, 4-way, write-back, 1-cycle).
//!
//! Line-granular, set-associative, true-LRU. Transactional write-set lines
//! are *pinned*: eager version management writes speculative data in place,
//! so the line must stay in the cache until commit or abort. If a fill cannot
//! find an unpinned victim the access raises a capacity conflict and the
//! surrounding transaction aborts — the standard bounded-HTM capacity abort.
//!
//! Read-set lines are never pinned: shared lines evict *silently* (no PUTS in
//! this protocol), so the home directory keeps the node in the sharer list
//! and conflicting writers still forward invalidations to it. That stale-
//! sharer behaviour is what lets eager conflict detection keep working after
//! a read-set line falls out of the L1 (the same "sticky" effect LogTM-SE
//! engineers explicitly).

use puno_sim::LineAddr;
use serde::{Deserialize, Serialize};

/// Stable MESI states a line can hold in the L1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineState {
    Shared,
    Exclusive,
    Modified,
}

impl LineState {
    /// Can a store proceed without a coherence request?
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }
}

/// L1 geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct L1Config {
    pub sets: u32,
    pub ways: u32,
}

impl Default for L1Config {
    fn default() -> Self {
        // 32 KB / 64 B lines / 4 ways = 128 sets.
        Self { sets: 128, ways: 4 }
    }
}

#[derive(Clone, Debug)]
struct Way {
    addr: LineAddr,
    state: LineState,
    pinned: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// Result of a local access check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Present with sufficient permission.
    Hit(LineState),
    /// Present but needs an upgrade (S and the access is a store).
    UpgradeNeeded,
    /// Not present.
    Miss,
}

/// What a fill displaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Eviction {
    None,
    /// Shared line dropped silently; the directory keeps the node in the
    /// sharer list (the "sticky" behaviour conflict detection relies on).
    Silent(LineAddr),
    /// Clean exclusive line: the directory must be told the owner is gone
    /// (PUTS), else it would keep forwarding requests here.
    CleanOwned(LineAddr),
    /// Dirty line that must be written back (PUTX).
    Dirty(LineAddr),
}

/// Error: the target set has no unpinned victim — transactional overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityConflict;

#[derive(Clone)]
pub struct L1Cache {
    config: L1Config,
    /// Flat preallocated tag array, `sets × ways` slots: set `s` owns
    /// `ways[s*W .. (s+1)*W]`. One contiguous allocation sized at
    /// construction — a fill or invalidation never allocates, and a set scan
    /// is a short linear walk over adjacent slots.
    ways: Vec<Option<Way>>,
    tick: u64,
}

impl L1Cache {
    pub fn new(config: L1Config) -> Self {
        assert!(config.sets.is_power_of_two() && config.ways >= 1);
        Self {
            config,
            ways: vec![None; (config.sets * config.ways) as usize],
            tick: 0,
        }
    }

    /// Empty every set and rewind the LRU clock, keeping the tag-array
    /// allocation. Equivalent to `L1Cache::new(self.config)`.
    pub fn reset(&mut self) {
        self.ways.fill(None);
        self.tick = 0;
    }

    /// The cache's geometry (lets recyclers decide reset vs rebuild).
    pub fn config(&self) -> L1Config {
        self.config
    }

    #[inline]
    fn set_of(&self, addr: LineAddr) -> u32 {
        (addr.0 % self.config.sets as u64) as u32
    }

    /// Slot range of the set holding `addr`.
    #[inline]
    fn set_range(&self, addr: LineAddr) -> std::ops::Range<usize> {
        let start = self.set_of(addr) as usize * self.config.ways as usize;
        start..start + self.config.ways as usize
    }

    fn way_mut(&mut self, addr: LineAddr) -> Option<&mut Way> {
        let range = self.set_range(addr);
        self.ways[range]
            .iter_mut()
            .filter_map(|s| s.as_mut())
            .find(|w| w.addr == addr)
    }

    fn way(&self, addr: LineAddr) -> Option<&Way> {
        let range = self.set_range(addr);
        self.ways[range]
            .iter()
            .filter_map(|s| s.as_ref())
            .find(|w| w.addr == addr)
    }

    /// Current state of a resident line.
    pub fn state(&self, addr: LineAddr) -> Option<LineState> {
        self.way(addr).map(|w| w.state)
    }

    /// Check an access without modifying LRU.
    pub fn probe(&self, addr: LineAddr, is_store: bool) -> LookupOutcome {
        match self.state(addr) {
            None => LookupOutcome::Miss,
            Some(s) if is_store && !s.writable() => LookupOutcome::UpgradeNeeded,
            Some(s) => LookupOutcome::Hit(s),
        }
    }

    /// Access for real: updates LRU on hit.
    pub fn access(&mut self, addr: LineAddr, is_store: bool) -> LookupOutcome {
        self.tick += 1;
        let tick = self.tick;
        match self.way_mut(addr) {
            None => LookupOutcome::Miss,
            Some(w) => {
                w.lru = tick;
                if is_store && !w.state.writable() {
                    LookupOutcome::UpgradeNeeded
                } else {
                    LookupOutcome::Hit(w.state)
                }
            }
        }
    }

    /// Install a line, force-evicting a pinned victim if the set is full of
    /// pinned lines (transactional overflow — the caller must issue a
    /// *sticky* writeback so conflict detection survives, LogTM-style).
    pub fn fill_forced(&mut self, addr: LineAddr, state: LineState) -> Eviction {
        match self.fill(addr, state) {
            Ok(ev) => ev,
            Err(CapacityConflict) => {
                let range = self.set_range(addr);
                // Evict the LRU pinned way (LRU ticks are unique, so the
                // min is deterministic).
                let victim = self.ways[range]
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|w| (i, w.lru)))
                    .min_by_key(|&(_, lru)| lru)
                    .map(|(i, _)| i)
                    .expect("full set must have ways");
                let slot = self.set_range(addr).start + victim;
                let w = self.ways[slot].take().expect("victim slot occupied");
                self.tick += 1;
                self.ways[slot] = Some(Way {
                    addr,
                    state,
                    pinned: false,
                    lru: self.tick,
                });
                match w.state {
                    LineState::Modified => Eviction::Dirty(w.addr),
                    LineState::Exclusive => Eviction::CleanOwned(w.addr),
                    LineState::Shared => Eviction::Silent(w.addr),
                }
            }
        }
    }

    /// Install a line, evicting if needed. The caller handles `Dirty`
    /// evictions by issuing a PUTX writeback.
    pub fn fill(&mut self, addr: LineAddr, state: LineState) -> Result<Eviction, CapacityConflict> {
        if let Some(w) = self.way_mut(addr) {
            // Refill of a resident line is a state change.
            w.state = state;
            return Ok(Eviction::None);
        }
        let range = self.set_range(addr);
        // Free slot, else LRU among unpinned ways (unique ticks make the
        // min deterministic whatever the slot order).
        let (slot, evicted) = match self.ways[range.clone()].iter().position(|s| s.is_none()) {
            Some(free) => (range.start + free, Eviction::None),
            None => {
                let victim = self.ways[range.clone()]
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|w| (i, w)))
                    .filter(|(_, w)| !w.pinned)
                    .min_by_key(|&(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .ok_or(CapacityConflict)?;
                let slot = range.start + victim;
                let w = self.ways[slot].take().expect("victim slot occupied");
                let ev = match w.state {
                    LineState::Modified => Eviction::Dirty(w.addr),
                    LineState::Exclusive => Eviction::CleanOwned(w.addr),
                    LineState::Shared => Eviction::Silent(w.addr),
                };
                (slot, ev)
            }
        };
        self.tick += 1;
        self.ways[slot] = Some(Way {
            addr,
            state,
            pinned: false,
            lru: self.tick,
        });
        Ok(evicted)
    }

    /// Upgrade/downgrade a resident line's state.
    pub fn set_state(&mut self, addr: LineAddr, state: LineState) {
        if let Some(w) = self.way_mut(addr) {
            w.state = state;
        }
    }

    /// Drop a line (invalidation or eviction completion). No-op if absent.
    pub fn invalidate(&mut self, addr: LineAddr) {
        let range = self.set_range(addr);
        for slot in &mut self.ways[range] {
            if slot.as_ref().is_some_and(|w| w.addr == addr) {
                *slot = None;
                return;
            }
        }
    }

    /// Pin a transactional write-set line against eviction.
    pub fn pin(&mut self, addr: LineAddr) {
        if let Some(w) = self.way_mut(addr) {
            w.pinned = true;
        }
    }

    /// Unpin every pinned line (commit or abort finished).
    pub fn unpin_all(&mut self) {
        for w in self.ways.iter_mut().flatten() {
            w.pinned = false;
        }
    }

    pub fn is_pinned(&self, addr: LineAddr) -> bool {
        self.way(addr).is_some_and(|w| w.pinned)
    }

    /// Number of resident lines (for tests/diagnostics).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L1Cache {
        L1Cache::new(L1Config { sets: 2, ways: 2 })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(LineAddr(4), false), LookupOutcome::Miss);
        c.fill(LineAddr(4), LineState::Shared).unwrap();
        assert_eq!(
            c.access(LineAddr(4), false),
            LookupOutcome::Hit(LineState::Shared)
        );
    }

    #[test]
    fn store_to_shared_needs_upgrade() {
        let mut c = tiny();
        c.fill(LineAddr(4), LineState::Shared).unwrap();
        assert_eq!(c.access(LineAddr(4), true), LookupOutcome::UpgradeNeeded);
        c.set_state(LineAddr(4), LineState::Modified);
        assert_eq!(
            c.access(LineAddr(4), true),
            LookupOutcome::Hit(LineState::Modified)
        );
    }

    #[test]
    fn exclusive_is_writable_silently() {
        let mut c = tiny();
        c.fill(LineAddr(6), LineState::Exclusive).unwrap();
        assert_eq!(
            c.access(LineAddr(6), true),
            LookupOutcome::Hit(LineState::Exclusive)
        );
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c = tiny();
        // Addresses 0, 2, 4 all map to set 0 (addr % 2 == 0).
        c.fill(LineAddr(0), LineState::Shared).unwrap();
        c.fill(LineAddr(2), LineState::Shared).unwrap();
        c.access(LineAddr(0), false); // 0 now MRU; 2 is LRU.
        let ev = c.fill(LineAddr(4), LineState::Shared).unwrap();
        assert_eq!(ev, Eviction::Silent(LineAddr(2)));
        assert!(c.state(LineAddr(0)).is_some());
        assert!(c.state(LineAddr(2)).is_none());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(LineAddr(0), LineState::Modified).unwrap();
        c.fill(LineAddr(2), LineState::Shared).unwrap();
        c.access(LineAddr(2), false);
        // Evicting LineAddr(0) (LRU, Modified) must demand a writeback.
        let ev = c.fill(LineAddr(4), LineState::Shared).unwrap();
        assert_eq!(ev, Eviction::Dirty(LineAddr(0)));
    }

    #[test]
    fn pinned_lines_never_evict() {
        let mut c = tiny();
        c.fill(LineAddr(0), LineState::Modified).unwrap();
        c.pin(LineAddr(0));
        c.fill(LineAddr(2), LineState::Modified).unwrap();
        c.pin(LineAddr(2));
        // Set 0 is full of pinned lines: overflow.
        assert_eq!(
            c.fill(LineAddr(4), LineState::Shared),
            Err(CapacityConflict)
        );
        c.unpin_all();
        assert!(c.fill(LineAddr(4), LineState::Shared).is_ok());
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(LineAddr(3), LineState::Shared).unwrap();
        assert_eq!(c.occupancy(), 1);
        c.invalidate(LineAddr(3));
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.access(LineAddr(3), false), LookupOutcome::Miss);
        // Invalidating an absent line is fine (stale-sharer invalidations).
        c.invalidate(LineAddr(3));
    }

    #[test]
    fn refill_resident_line_changes_state() {
        let mut c = tiny();
        c.fill(LineAddr(1), LineState::Shared).unwrap();
        assert_eq!(c.fill(LineAddr(1), LineState::Modified), Ok(Eviction::None));
        assert_eq!(c.state(LineAddr(1)), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = tiny();
        c.fill(LineAddr(0), LineState::Shared).unwrap();
        c.fill(LineAddr(2), LineState::Shared).unwrap();
        // Probe 0 (should NOT refresh it), then fill: 0 is still LRU.
        assert_eq!(
            c.probe(LineAddr(0), false),
            LookupOutcome::Hit(LineState::Shared)
        );
        let ev = c.fill(LineAddr(4), LineState::Shared).unwrap();
        assert_eq!(ev, Eviction::Silent(LineAddr(0)));
    }

    #[test]
    fn default_geometry_matches_table_ii() {
        let c = L1Config::default();
        // 128 sets * 4 ways * 64 B = 32 KB.
        assert_eq!(c.sets * c.ways * 64, 32 * 1024);
    }
}
