//! Home-node directory bank: a blocking MESI directory in the style of the
//! SGI Origin / GEMS `MESI_CMP_directory` protocol the paper builds on.
//!
//! Each memory line has a static home bank (`home_node`). The bank tracks,
//! per line: the stable state (uncached / shared / owned), the sharer
//! bit-vector or owner, and — while a request is in flight — a transient
//! *busy* record. Requests arriving for a busy line wait in a FIFO at the
//! home and are serviced in order when the current episode's UNBLOCK
//! arrives. The cycles an entry spends busy servicing a transactional GETX
//! are accumulated for the paper's Figure 12.
//!
//! PUNO hooks in at exactly one decision point: when a transactional GETX is
//! about to be forwarded to the current holders, the bank consults a
//! [`UnicastPredictor`]. If the predictor names a target, the bank sends one
//! `Inv`/`FwdGetx` with the U-bit set instead of the exhaustive multicast,
//! and the episode concludes through the NACK/UNBLOCK path without
//! disturbing the other sharers (Section III-A, Figure 4(b)).

use crate::msg::{CoherenceMsg, TxInfo};
use crate::predictor::UnicastPredictor;
use crate::sharers::SharerSet;
use crate::stats::DirStats;
use puno_sim::{Cycle, Cycles, LineAddr, LineMap, NodeId};
use std::collections::VecDeque;

/// Directory/L2 timing knobs (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirConfig {
    /// L2 bank access latency for data responses.
    pub l2_latency: Cycles,
    /// Directory/tag access for control responses and forwards.
    pub dir_latency: Cycles,
    /// Off-chip memory latency for lines not yet resident in L2.
    pub mem_latency: Cycles,
}

impl Default for DirConfig {
    fn default() -> Self {
        Self {
            l2_latency: 20,
            dir_latency: 1,
            mem_latency: 200,
        }
    }
}

/// Stable directory states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stable {
    /// No cached copies. `in_l2` distinguishes lines already fetched from
    /// memory (L2 hit) from first-touch lines (memory fetch).
    Uncached { in_l2: bool },
    /// One or more read-only copies; L2 data is current.
    Shared,
    /// A single owner holds the (possibly dirty) line in E or M.
    Owned,
}

/// What the entry is busy doing, which determines the transition applied
/// when the requester's UNBLOCK arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BusyKind {
    /// Waiting for memory, then grant data. `is_getx` selects the final
    /// transition (shared vs owned).
    MemFetch { is_getx: bool },
    /// Granted data/permission from L2 on a GETS (exclusive when no other
    /// sharers existed).
    GrantS { exclusive: bool },
    /// Granted data + invalidation fan-out on a GETX in Shared state.
    InvMulticast { targets: SharerSet },
    /// PUNO: single predicted-NACK probe; always concludes unsuccessfully.
    InvUnicast { target: NodeId },
    /// Forwarded a GETS to the owner.
    FwdGets { prev_owner: NodeId },
    /// Forwarded a GETX to the owner (unicast flag only affects the
    /// receiver's conservative-NACK obligation, not the transition).
    FwdGetx { prev_owner: NodeId },
}

#[derive(Clone, Debug)]
struct Busy {
    requester: NodeId,
    kind: BusyKind,
    since: Cycle,
    tx_getx: bool,
}

#[derive(Clone, Debug)]
struct Entry {
    state: Stable,
    sharers: SharerSet,
    owner: Option<NodeId>,
    busy: Option<Busy>,
    waiting: VecDeque<CoherenceMsg>,
}

impl Entry {
    fn new() -> Self {
        Self {
            state: Stable::Uncached { in_l2: false },
            sharers: SharerSet::EMPTY,
            owner: None,
            busy: None,
            waiting: VecDeque::new(),
        }
    }

    /// The nodes currently holding a copy (sharers or the single owner).
    fn holders(&self) -> SharerSet {
        match self.state {
            Stable::Uncached { .. } => SharerSet::EMPTY,
            Stable::Shared => self.sharers,
            Stable::Owned => self
                .owner
                .map(SharerSet::single)
                .unwrap_or(SharerSet::EMPTY),
        }
    }
}

/// An action the directory asks the surrounding system to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirAction {
    /// Send `msg` to `dst`, `delay` cycles from now (models L2/dir access
    /// and, under PUNO, the P-Buffer lookup + unicast decision).
    Send {
        dst: NodeId,
        msg: CoherenceMsg,
        delay: Cycles,
    },
    /// Start a memory fetch; call [`DirectoryBank::mem_ready`] after
    /// `delay` cycles.
    FetchMem { addr: LineAddr, delay: Cycles },
}

/// One home directory bank.
#[derive(Clone)]
pub struct DirectoryBank {
    home: NodeId,
    config: DirConfig,
    entries: LineMap<LineAddr, Entry>,
    stats: DirStats,
}

impl DirectoryBank {
    pub fn new(home: NodeId, config: DirConfig) -> Self {
        Self {
            home,
            config,
            // Modest pre-size: banks are long-lived and grow amortized; a
            // large up-front table would make bank construction itself hot
            // (entries are wide — the microbench constructs banks per-iter).
            entries: LineMap::with_capacity(64),
            stats: DirStats::default(),
        }
    }

    pub fn stats(&self) -> &DirStats {
        &self.stats
    }

    /// Drop every directory entry and zero the stats, keeping the entry
    /// table's allocation. Equivalent to `DirectoryBank::new(home, config)`.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = DirStats::default();
    }

    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Debug/test visibility: current holders of a line.
    pub fn holders_of(&self, addr: LineAddr) -> SharerSet {
        self.entries
            .get(addr)
            .map(|e| e.holders())
            .unwrap_or(SharerSet::EMPTY)
    }

    /// Debug/test visibility: current owner of a line.
    pub fn owner_of(&self, addr: LineAddr) -> Option<NodeId> {
        let e = self.entries.get(addr)?;
        (e.state == Stable::Owned).then_some(e.owner).flatten()
    }

    /// Debug/test visibility: is the entry busy?
    pub fn is_busy(&self, addr: LineAddr) -> bool {
        self.entries.get(addr).is_some_and(|e| e.busy.is_some())
    }

    /// Coarse line state for the typed trace's `DirState` transition event:
    /// the stable state plus whether a service episode is in flight.
    pub fn trace_state(&self, addr: LineAddr) -> (puno_sim::DirLineState, bool) {
        match self.entries.get(addr) {
            None => (puno_sim::DirLineState::Uncached, false),
            Some(e) => {
                let state = match e.state {
                    Stable::Uncached { .. } => puno_sim::DirLineState::Uncached,
                    Stable::Shared => puno_sim::DirLineState::Shared,
                    Stable::Owned => puno_sim::DirLineState::Owned,
                };
                (state, e.busy.is_some())
            }
        }
    }

    /// Process a message addressed to this home bank.
    ///
    /// Allocation-per-call wrapper over [`DirectoryBank::handle_into`]; hot
    /// loops should hold a reusable scratch buffer and call that directly.
    pub fn handle<P: UnicastPredictor>(
        &mut self,
        now: Cycle,
        msg: CoherenceMsg,
        predictor: &mut P,
    ) -> Vec<DirAction> {
        let mut actions = Vec::new();
        self.handle_into(now, msg, predictor, &mut actions);
        actions
    }

    /// Process a message addressed to this home bank, appending the
    /// resulting actions to `actions` (not cleared: the caller owns the
    /// buffer lifecycle) in the same deterministic order [`Self::handle`]
    /// returns them.
    pub fn handle_into<P: UnicastPredictor>(
        &mut self,
        now: Cycle,
        msg: CoherenceMsg,
        predictor: &mut P,
        actions: &mut Vec<DirAction>,
    ) {
        self.dispatch(now, msg, predictor, actions);
    }

    /// Memory fetch for `addr` finished: grant data to the waiting requester.
    ///
    /// Allocation-per-call wrapper over [`DirectoryBank::mem_ready_into`].
    pub fn mem_ready<P: UnicastPredictor>(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        predictor: &mut P,
    ) -> Vec<DirAction> {
        let mut actions = Vec::new();
        self.mem_ready_into(now, addr, predictor, &mut actions);
        actions
    }

    /// Memory fetch completion, emitting into a caller-provided buffer.
    pub fn mem_ready_into<P: UnicastPredictor>(
        &mut self,
        _now: Cycle,
        addr: LineAddr,
        _predictor: &mut P,
        actions: &mut Vec<DirAction>,
    ) {
        let entry = self
            .entries
            .get_mut(addr)
            .expect("mem_ready for unknown line");
        let busy = entry.busy.as_mut().expect("mem_ready for non-busy line");
        let BusyKind::MemFetch { is_getx } = busy.kind else {
            panic!("mem_ready while not fetching");
        };
        entry.state = Stable::Uncached { in_l2: true };
        // Either way the requester becomes the exclusive holder: a GETS to
        // an uncached line grants E, a GETX grants M.
        busy.kind = if is_getx {
            BusyKind::InvMulticast {
                targets: SharerSet::EMPTY,
            }
        } else {
            BusyKind::GrantS { exclusive: true }
        };
        let requester = busy.requester;
        actions.push(DirAction::Send {
            dst: requester,
            msg: CoherenceMsg::Data {
                addr,
                from: self.home,
                acks_expected: 0,
                exclusive: true,
                owner_kept: false,
            },
            delay: 0,
        });
    }

    fn dispatch<P: UnicastPredictor>(
        &mut self,
        now: Cycle,
        msg: CoherenceMsg,
        predictor: &mut P,
        actions: &mut Vec<DirAction>,
    ) {
        // P-Buffer learns the priority of every transactional requester.
        if let CoherenceMsg::Gets {
            requester,
            tx: Some(info),
            ..
        }
        | CoherenceMsg::Getx {
            requester,
            tx: Some(info),
            ..
        } = &msg
        {
            predictor.observe_request(now, *requester, info);
        }

        match msg {
            CoherenceMsg::Gets { .. }
            | CoherenceMsg::Getx { .. }
            | CoherenceMsg::Putx { .. }
            | CoherenceMsg::Puts { .. } => {
                let addr = msg.addr();
                let entry = self.entries.get_or_insert_with(addr, Entry::new);
                if entry.busy.is_some() {
                    entry.waiting.push_back(msg);
                    self.stats.queued_requests.inc();
                } else {
                    self.service(now, msg, predictor, actions);
                }
            }
            CoherenceMsg::Unblock {
                addr,
                requester,
                success,
                nackers,
                mp_node,
                tx,
            } => {
                // Unblocks refresh the P-Buffer too (Figure 7: every
                // transactional coherence message carries {node, priority}).
                if let Some(info) = &tx {
                    predictor.observe_request(now, requester, info);
                }
                self.on_unblock(
                    now, addr, requester, success, nackers, mp_node, predictor, actions,
                );
            }
            CoherenceMsg::WbData { addr, .. } => {
                // Sharing writeback from a downgrading owner: refreshes the
                // L2 copy; no state transition (the UNBLOCK carries it).
                if let Some(entry) = self.entries.get_mut(addr) {
                    if let Stable::Uncached { in_l2 } = &mut entry.state {
                        *in_l2 = true;
                    }
                }
            }
            other => panic!("directory received unexpected message: {other:?}"),
        }
    }

    /// Service a request against a non-busy entry.
    fn service<P: UnicastPredictor>(
        &mut self,
        now: Cycle,
        msg: CoherenceMsg,
        predictor: &mut P,
        actions: &mut Vec<DirAction>,
    ) {
        match msg {
            CoherenceMsg::Gets {
                addr,
                requester,
                tx,
            } => {
                self.stats.gets_received.inc();
                self.service_gets(now, addr, requester, tx, actions);
            }
            CoherenceMsg::Getx {
                addr,
                requester,
                tx,
            } => {
                self.stats.getx_received.inc();
                if tx.is_some() {
                    self.stats.tx_getx_received.inc();
                }
                self.service_getx(now, addr, requester, tx, predictor, actions);
            }
            CoherenceMsg::Putx {
                addr,
                owner,
                sticky,
            }
            | CoherenceMsg::Puts {
                addr,
                owner,
                sticky,
            } => {
                self.stats.putx_received.inc();
                self.service_putx(addr, owner, sticky, actions);
            }
            other => panic!("service() on non-request: {other:?}"),
        }
    }

    fn service_gets(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        requester: NodeId,
        tx: Option<TxInfo>,
        actions: &mut Vec<DirAction>,
    ) {
        let home = self.home;
        let config = self.config;
        let entry = self.entries.get_mut(addr).unwrap();
        match entry.state {
            Stable::Uncached { in_l2: false } => {
                entry.busy = Some(Busy {
                    requester,
                    kind: BusyKind::MemFetch { is_getx: false },
                    since: now,
                    tx_getx: false,
                });
                self.stats.mem_fetches.inc();
                actions.push(DirAction::FetchMem {
                    addr,
                    delay: config.mem_latency,
                });
            }
            Stable::Uncached { in_l2: true } => {
                entry.busy = Some(Busy {
                    requester,
                    kind: BusyKind::GrantS { exclusive: true },
                    since: now,
                    tx_getx: false,
                });
                actions.push(DirAction::Send {
                    dst: requester,
                    msg: CoherenceMsg::Data {
                        addr,
                        from: home,
                        acks_expected: 0,
                        exclusive: true,
                        owner_kept: false,
                    },
                    delay: config.l2_latency,
                });
            }
            Stable::Shared => {
                entry.busy = Some(Busy {
                    requester,
                    kind: BusyKind::GrantS { exclusive: false },
                    since: now,
                    tx_getx: false,
                });
                actions.push(DirAction::Send {
                    dst: requester,
                    msg: CoherenceMsg::Data {
                        addr,
                        from: home,
                        acks_expected: 0,
                        exclusive: false,
                        owner_kept: false,
                    },
                    delay: config.l2_latency,
                });
            }
            Stable::Owned => {
                let owner = entry.owner.expect("owned entry without owner");
                entry.busy = Some(Busy {
                    requester,
                    kind: BusyKind::FwdGets { prev_owner: owner },
                    since: now,
                    tx_getx: false,
                });
                actions.push(DirAction::Send {
                    dst: owner,
                    msg: CoherenceMsg::FwdGets {
                        addr,
                        requester,
                        tx,
                    },
                    delay: config.dir_latency,
                });
            }
        }
    }

    fn service_getx<P: UnicastPredictor>(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        requester: NodeId,
        tx: Option<TxInfo>,
        predictor: &mut P,
        actions: &mut Vec<DirAction>,
    ) {
        let home = self.home;
        let config = self.config;
        let is_tx = tx.is_some();
        // Compute the holder set before borrowing the entry mutably for the
        // busy update, because the predictor also needs it.
        let (state, holders, owner) = {
            let entry = self.entries.get_mut(addr).unwrap();
            (entry.state, entry.holders(), entry.owner)
        };
        match state {
            Stable::Uncached { in_l2: false } => {
                let entry = self.entries.get_mut(addr).unwrap();
                entry.busy = Some(Busy {
                    requester,
                    kind: BusyKind::MemFetch { is_getx: true },
                    since: now,
                    tx_getx: is_tx,
                });
                self.stats.mem_fetches.inc();
                actions.push(DirAction::FetchMem {
                    addr,
                    delay: config.mem_latency,
                });
            }
            Stable::Uncached { in_l2: true } => {
                let entry = self.entries.get_mut(addr).unwrap();
                entry.busy = Some(Busy {
                    requester,
                    kind: BusyKind::InvMulticast {
                        targets: SharerSet::EMPTY,
                    },
                    since: now,
                    tx_getx: is_tx,
                });
                actions.push(DirAction::Send {
                    dst: requester,
                    msg: CoherenceMsg::Data {
                        addr,
                        from: home,
                        acks_expected: 0,
                        exclusive: true,
                        owner_kept: false,
                    },
                    delay: config.l2_latency,
                });
            }
            Stable::Shared => {
                let mut targets = holders;
                targets.remove(requester);
                if targets.is_empty() {
                    // Requester is the only sharer: pure upgrade.
                    let entry = self.entries.get_mut(addr).unwrap();
                    entry.busy = Some(Busy {
                        requester,
                        kind: BusyKind::InvMulticast { targets },
                        since: now,
                        tx_getx: is_tx,
                    });
                    let msg = if holders.contains(requester) {
                        CoherenceMsg::UpgradeAck {
                            addr,
                            from: home,
                            acks_expected: 0,
                        }
                    } else {
                        CoherenceMsg::Data {
                            addr,
                            from: home,
                            acks_expected: 0,
                            exclusive: true,
                            owner_kept: false,
                        }
                    };
                    let delay = if matches!(msg, CoherenceMsg::Data { .. }) {
                        config.l2_latency
                    } else {
                        config.dir_latency
                    };
                    actions.push(DirAction::Send {
                        dst: requester,
                        msg,
                        delay,
                    });
                    return;
                }
                // PUNO decision point: predicted-NACK unicast?
                let predicted = tx.as_ref().and_then(|info| {
                    predictor.predict_unicast(now, addr, requester, info, targets, false)
                });
                if let Some(target) = predicted {
                    debug_assert!(targets.contains(target.node));
                    let entry = self.entries.get_mut(addr).unwrap();
                    entry.busy = Some(Busy {
                        requester,
                        kind: BusyKind::InvUnicast {
                            target: target.node,
                        },
                        since: now,
                        tx_getx: is_tx,
                    });
                    self.stats.unicasts_sent.inc();
                    actions.push(DirAction::Send {
                        dst: target.node,
                        msg: CoherenceMsg::Inv {
                            addr,
                            requester,
                            tx,
                            unicast: true,
                        },
                        delay: config.dir_latency + predictor.decision_latency(),
                    });
                } else {
                    let entry = self.entries.get_mut(addr).unwrap();
                    entry.busy = Some(Busy {
                        requester,
                        kind: BusyKind::InvMulticast { targets },
                        since: now,
                        tx_getx: is_tx,
                    });
                    let fan_out = targets.len();
                    self.stats.invalidations_sent.add(fan_out as u64);
                    let fwd_delay = config.dir_latency + predictor.decision_latency();
                    for sharer in targets.iter() {
                        actions.push(DirAction::Send {
                            dst: sharer,
                            msg: CoherenceMsg::Inv {
                                addr,
                                requester,
                                tx,
                                unicast: false,
                            },
                            delay: fwd_delay,
                        });
                    }
                    // Data or upgrade permission, carrying the ack count.
                    let msg = if holders.contains(requester) {
                        CoherenceMsg::UpgradeAck {
                            addr,
                            from: home,
                            acks_expected: fan_out,
                        }
                    } else {
                        CoherenceMsg::Data {
                            addr,
                            from: home,
                            acks_expected: fan_out,
                            exclusive: true,
                            owner_kept: false,
                        }
                    };
                    let delay = if matches!(msg, CoherenceMsg::Data { .. }) {
                        config.l2_latency
                    } else {
                        config.dir_latency
                    };
                    actions.push(DirAction::Send {
                        dst: requester,
                        msg,
                        delay,
                    });
                }
            }
            Stable::Owned => {
                let prev_owner = owner.expect("owned entry without owner");
                // The owner-state forward is a single message either way;
                // PUNO may still mark it with the U-bit so a predicted-NACK
                // conflict resolves with a notification instead of an abort.
                let predicted = tx.as_ref().and_then(|info| {
                    predictor.predict_unicast(
                        now,
                        addr,
                        requester,
                        info,
                        SharerSet::single(prev_owner),
                        true,
                    )
                });
                let unicast = predicted.is_some();
                if unicast {
                    self.stats.unicasts_sent.inc();
                }
                let entry = self.entries.get_mut(addr).unwrap();
                entry.busy = Some(Busy {
                    requester,
                    kind: BusyKind::FwdGetx { prev_owner },
                    since: now,
                    tx_getx: is_tx,
                });
                actions.push(DirAction::Send {
                    dst: prev_owner,
                    msg: CoherenceMsg::FwdGetx {
                        addr,
                        requester,
                        tx,
                        unicast,
                    },
                    delay: config.dir_latency + predictor.decision_latency(),
                });
            }
        }
    }

    fn service_putx(
        &mut self,
        addr: LineAddr,
        owner: NodeId,
        sticky: crate::msg::StickyKind,
        actions: &mut Vec<DirAction>,
    ) {
        let delay = self.config.dir_latency;
        let entry = self.entries.get_mut(addr).unwrap();
        if entry.state == Stable::Owned && entry.owner == Some(owner) {
            match sticky {
                // LogTM-style sticky-M: data is written back (L2 current)
                // but the node stays the logical owner, so conflict checks
                // keep being forwarded to its write set.
                crate::msg::StickyKind::Writer => {}
                // Sticky sharer: the evictor stays in the sharer list so
                // writers' invalidations still reach its read set; data
                // serves from L2.
                crate::msg::StickyKind::Reader => {
                    entry.state = Stable::Shared;
                    entry.sharers = SharerSet::single(owner);
                    entry.owner = None;
                }
                crate::msg::StickyKind::None => {
                    entry.state = Stable::Uncached { in_l2: true };
                    entry.owner = None;
                    entry.sharers = SharerSet::EMPTY;
                }
            }
        }
        // Stale PUTX (ownership already moved on): just ack so the evicting
        // node can free its writeback buffer.
        actions.push(DirAction::Send {
            dst: owner,
            msg: CoherenceMsg::WbAck { addr },
            delay,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn on_unblock<P: UnicastPredictor>(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        requester: NodeId,
        success: bool,
        nackers: SharerSet,
        mp_node: Option<NodeId>,
        predictor: &mut P,
        actions: &mut Vec<DirAction>,
    ) {
        let (holders, tx_getx, blocked_for) = {
            let entry = self
                .entries
                .get_mut(addr)
                .expect("unblock for unknown line");
            let busy = entry.busy.take().expect("unblock for non-busy line");
            assert_eq!(
                busy.requester, requester,
                "unblock from a node that is not the current requester"
            );
            let blocked_for = now - busy.since;

            match busy.kind {
                BusyKind::MemFetch { .. } => unreachable!("unblock during memory fetch"),
                BusyKind::GrantS { exclusive } => {
                    debug_assert!(success, "data grants cannot fail");
                    if exclusive {
                        entry.state = Stable::Owned;
                        entry.owner = Some(requester);
                        entry.sharers = SharerSet::EMPTY;
                    } else {
                        entry.state = Stable::Shared;
                        entry.sharers.insert(requester);
                    }
                }
                BusyKind::InvMulticast { targets } => {
                    if success {
                        entry.state = Stable::Owned;
                        entry.owner = Some(requester);
                        entry.sharers = SharerSet::EMPTY;
                    } else {
                        // Sharers that acked have invalidated; nackers keep
                        // their copies. The requester keeps its S copy iff it
                        // had one (upgrade attempt).
                        let kept_requester = entry.sharers.intersect(SharerSet::single(requester));
                        let remaining = nackers.intersect(targets).union(kept_requester);
                        if remaining.is_empty() {
                            entry.state = Stable::Uncached { in_l2: true };
                            entry.sharers = SharerSet::EMPTY;
                        } else {
                            entry.state = Stable::Shared;
                            entry.sharers = remaining;
                        }
                    }
                }
                BusyKind::InvUnicast { .. } => {
                    debug_assert!(!success, "unicast probes always conclude nacked");
                    // No sharer state changes: nobody was invalidated.
                }
                BusyKind::FwdGets { prev_owner } => {
                    if success {
                        // `nackers` doubles as the owner-kept relay: the
                        // requester inserts the previous owner when the Data
                        // it received said the owner downgraded (kept).
                        let owner_kept = nackers.contains(prev_owner);
                        entry.state = Stable::Shared;
                        entry.sharers = SharerSet::single(requester);
                        entry.owner = None;
                        if owner_kept {
                            entry.sharers.insert(prev_owner);
                        }
                    }
                    // On failure (owner nacked): unchanged, owner keeps M.
                }
                BusyKind::FwdGetx { .. } => {
                    if success {
                        entry.state = Stable::Owned;
                        entry.owner = Some(requester);
                        entry.sharers = SharerSet::EMPTY;
                    }
                }
            }
            (entry.holders(), busy.tx_getx, blocked_for)
        };

        self.stats.record_blocking(blocked_for, tx_getx);

        if let Some(node) = mp_node {
            self.stats.mispredict_feedback.inc();
            predictor.on_mispredict_feedback(now, addr, node);
        }
        // Off the critical path: refresh the UD pointer for this entry.
        predictor.after_service(now, addr, holders);

        // Drain queued requests until one blocks the entry again.
        loop {
            let entry = self.entries.get_mut(addr).unwrap();
            if entry.busy.is_some() {
                break;
            }
            let Some(next) = entry.waiting.pop_front() else {
                break;
            };
            self.service(now, next, predictor, actions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::StickyKind;
    use crate::predictor::{NullPredictor, PredictedTarget};
    use puno_sim::{StaticTxId, Timestamp, TxId};

    const HOME: NodeId = NodeId(0);

    fn bank() -> DirectoryBank {
        DirectoryBank::new(HOME, DirConfig::default())
    }

    fn info(ts: u64) -> TxInfo {
        TxInfo {
            tx: TxId(ts),
            timestamp: Timestamp(ts),
            static_tx: StaticTxId(0),
            avg_len_hint: 100,
        }
    }

    fn gets(addr: u64, req: u16) -> CoherenceMsg {
        CoherenceMsg::Gets {
            addr: LineAddr(addr),
            requester: NodeId(req),
            tx: Some(info(req as u64 + 10)),
        }
    }

    fn getx(addr: u64, req: u16, ts: u64) -> CoherenceMsg {
        CoherenceMsg::Getx {
            addr: LineAddr(addr),
            requester: NodeId(req),
            tx: Some(info(ts)),
        }
    }

    fn unblock(addr: u64, req: u16, success: bool, nackers: SharerSet) -> CoherenceMsg {
        CoherenceMsg::Unblock {
            addr: LineAddr(addr),
            requester: NodeId(req),
            success,
            nackers,
            mp_node: None,
            tx: None,
        }
    }

    /// Bring a line into Shared state with the given sharers.
    fn make_shared(bank: &mut DirectoryBank, addr: u64, sharers: &[u16]) {
        let mut p = NullPredictor;
        // First GETS: memory fetch, E grant; unblock; then the node is the
        // owner. Subsequent GETS go through FwdGets. To seed a plain shared
        // set conveniently we drive the protocol messages in order.
        for (i, &s) in sharers.iter().enumerate() {
            let acts = bank.handle(0, gets(addr, s), &mut p);
            if i == 0 {
                // Memory fetch path.
                assert!(matches!(acts[0], DirAction::FetchMem { .. }));
                bank.mem_ready(200, LineAddr(addr), &mut p);
                bank.handle(210, unblock(addr, s, true, SharerSet::EMPTY), &mut p);
            } else if i == 1 {
                // Forwarded to the E owner; owner keeps a copy.
                assert!(matches!(
                    acts[0],
                    DirAction::Send {
                        msg: CoherenceMsg::FwdGets { .. },
                        ..
                    }
                ));
                // Requester relays owner_kept by inserting prev owner into
                // the nackers mask.
                bank.handle(
                    220,
                    unblock(addr, s, true, SharerSet::single(NodeId(sharers[0]))),
                    &mut p,
                );
            } else {
                bank.handle(230, unblock(addr, s, true, SharerSet::EMPTY), &mut p);
            }
        }
    }

    #[test]
    fn first_touch_fetches_memory_and_grants_exclusive() {
        let mut bank = bank();
        let mut p = NullPredictor;
        let acts = bank.handle(0, gets(7, 3), &mut p);
        assert_eq!(
            acts,
            vec![DirAction::FetchMem {
                addr: LineAddr(7),
                delay: 200
            }]
        );
        assert!(bank.is_busy(LineAddr(7)));
        let acts = bank.mem_ready(200, LineAddr(7), &mut p);
        match &acts[0] {
            DirAction::Send {
                dst,
                msg:
                    CoherenceMsg::Data {
                        exclusive,
                        acks_expected,
                        ..
                    },
                ..
            } => {
                assert_eq!(*dst, NodeId(3));
                assert!(*exclusive);
                assert_eq!(*acks_expected, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        bank.handle(220, unblock(7, 3, true, SharerSet::EMPTY), &mut p);
        assert_eq!(bank.owner_of(LineAddr(7)), Some(NodeId(3)));
        assert!(!bank.is_busy(LineAddr(7)));
    }

    #[test]
    fn shared_getx_multicasts_invalidations() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 5, &[1, 2, 3]);
        assert_eq!(bank.holders_of(LineAddr(5)).len(), 3);

        let acts = bank.handle(300, getx(5, 4, 1), &mut p);
        let invs: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                DirAction::Send {
                    dst,
                    msg: CoherenceMsg::Inv { unicast, .. },
                    ..
                } => Some((*dst, *unicast)),
                _ => None,
            })
            .collect();
        assert_eq!(
            invs,
            vec![(NodeId(1), false), (NodeId(2), false), (NodeId(3), false)]
        );
        // Data to requester carries acks_expected = 3.
        let data = acts
            .iter()
            .find_map(|a| match a {
                DirAction::Send {
                    msg: CoherenceMsg::Data { acks_expected, .. },
                    dst,
                    ..
                } => Some((*dst, *acks_expected)),
                _ => None,
            })
            .unwrap();
        assert_eq!(data, (NodeId(4), 3));

        // All sharers abort/ack; requester succeeds.
        bank.handle(350, unblock(5, 4, true, SharerSet::EMPTY), &mut p);
        assert_eq!(bank.owner_of(LineAddr(5)), Some(NodeId(4)));
    }

    #[test]
    fn failed_getx_keeps_nackers_in_sharer_list() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 5, &[1, 2, 3]);
        bank.handle(300, getx(5, 4, 100), &mut p);
        // Sharer 1 nacked; 2 and 3 acked (aborted and invalidated).
        bank.handle(
            350,
            unblock(5, 4, false, SharerSet::single(NodeId(1))),
            &mut p,
        );
        let holders = bank.holders_of(LineAddr(5));
        assert!(holders.contains(NodeId(1)));
        assert!(!holders.contains(NodeId(2)));
        assert!(!holders.contains(NodeId(3)));
        assert_eq!(bank.owner_of(LineAddr(5)), None);
    }

    #[test]
    fn upgrade_from_sole_sharer_needs_no_invalidation() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 9, &[2]);
        // Node 2's own copy is E-owned after a single GETS... force Shared
        // by adding and failing-out another sharer is complex; instead use
        // two sharers then have one acked away.
        make_shared(&mut bank, 11, &[2, 5]);
        let acts = bank.handle(400, getx(11, 2, 1), &mut p);
        // Only one Inv (to node 5); requester gets UpgradeAck, not Data.
        let n_inv = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    DirAction::Send {
                        msg: CoherenceMsg::Inv { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(n_inv, 1);
        assert!(acts.iter().any(|a| matches!(
            a,
            DirAction::Send {
                msg: CoherenceMsg::UpgradeAck { acks_expected: 1, .. },
                dst,
                ..
            } if *dst == NodeId(2)
        )));
        bank.handle(450, unblock(11, 2, true, SharerSet::EMPTY), &mut p);
        assert_eq!(bank.owner_of(LineAddr(11)), Some(NodeId(2)));
    }

    #[test]
    fn requests_queue_behind_busy_entry() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 6, &[1, 2]);
        let _ = bank.handle(300, getx(6, 3, 50), &mut p);
        // Entry busy: a competing GETS must queue, not be serviced.
        let acts = bank.handle(310, gets(6, 4), &mut p);
        assert!(acts.is_empty());
        assert_eq!(bank.stats().queued_requests.get(), 1);
        // Unblock releases the queue: the queued GETS is serviced.
        let acts = bank.handle(400, unblock(6, 3, true, SharerSet::EMPTY), &mut p);
        assert!(acts.iter().any(|a| matches!(
            a,
            DirAction::Send {
                msg: CoherenceMsg::FwdGets { .. },
                ..
            }
        )));
    }

    #[test]
    fn blocking_cycles_accounted_per_tx_getx() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 6, &[1, 2]);
        bank.handle(300, getx(6, 3, 50), &mut p);
        bank.handle(400, unblock(6, 3, true, SharerSet::EMPTY), &mut p);
        assert_eq!(bank.stats().blocking_cycles_tx_getx.count(), 1);
        assert_eq!(bank.stats().blocking_cycles_tx_getx.sum(), 100);
    }

    /// Predictor that always unicasts to a fixed node.
    struct FixedPredictor(NodeId);
    impl UnicastPredictor for FixedPredictor {
        fn observe_request(&mut self, _: Cycle, _: NodeId, _: &TxInfo) {}
        fn predict_unicast(
            &mut self,
            _: Cycle,
            _: LineAddr,
            _: NodeId,
            _: &TxInfo,
            holders: SharerSet,
            _: bool,
        ) -> Option<PredictedTarget> {
            holders
                .contains(self.0)
                .then_some(PredictedTarget { node: self.0 })
        }
        fn on_mispredict_feedback(&mut self, _: Cycle, _: LineAddr, _: NodeId) {}
        fn after_service(&mut self, _: Cycle, _: LineAddr, _: SharerSet) {}
        fn decision_latency(&self) -> Cycle {
            2
        }
    }

    #[test]
    fn unicast_probe_reaches_only_the_predicted_sharer() {
        let mut bank = bank();
        let p = NullPredictor;
        make_shared(&mut bank, 8, &[1, 2, 3]);
        let mut fp = FixedPredictor(NodeId(2));
        let acts = bank.handle(500, getx(8, 4, 999), &mut fp);
        // Exactly one send: the U-bit Inv to node 2, with +2 cycle decision
        // latency on top of the 1-cycle dir access.
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            DirAction::Send {
                dst,
                msg: CoherenceMsg::Inv { unicast, .. },
                delay,
            } => {
                assert_eq!(*dst, NodeId(2));
                assert!(*unicast);
                assert_eq!(*delay, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(bank.stats().unicasts_sent.get(), 1);
        // The episode concludes nacked; sharer list must be intact.
        bank.handle(
            550,
            unblock(8, 4, false, SharerSet::single(NodeId(2))),
            &mut fp,
        );
        assert_eq!(bank.holders_of(LineAddr(8)).len(), 3);
        let _ = p;
    }

    #[test]
    fn owned_getx_forwards_to_owner() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 3, &[5]); // node 5 is E owner
        let acts = bank.handle(300, getx(3, 6, 42), &mut p);
        assert!(matches!(
            &acts[0],
            DirAction::Send {
                dst,
                msg: CoherenceMsg::FwdGetx { unicast: false, .. },
                ..
            } if *dst == NodeId(5)
        ));
        bank.handle(350, unblock(3, 6, true, SharerSet::EMPTY), &mut p);
        assert_eq!(bank.owner_of(LineAddr(3)), Some(NodeId(6)));
    }

    #[test]
    fn putx_from_owner_returns_line_to_l2() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 3, &[5]); // node 5 is E owner
        let acts = bank.handle(
            400,
            CoherenceMsg::Putx {
                addr: LineAddr(3),
                owner: NodeId(5),
                sticky: StickyKind::None,
            },
            &mut p,
        );
        assert!(matches!(
            acts[0],
            DirAction::Send {
                msg: CoherenceMsg::WbAck { .. },
                ..
            }
        ));
        assert_eq!(bank.owner_of(LineAddr(3)), None);
        // Next GETS hits in L2, no memory fetch.
        let acts = bank.handle(410, gets(3, 7), &mut p);
        assert!(matches!(
            acts[0],
            DirAction::Send {
                msg: CoherenceMsg::Data {
                    exclusive: true,
                    ..
                },
                delay: 20,
                ..
            }
        ));
    }

    #[test]
    fn stale_putx_is_acked_and_ignored() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 3, &[5]);
        // Ownership moves to node 6.
        bank.handle(300, getx(3, 6, 1), &mut p);
        bank.handle(350, unblock(3, 6, true, SharerSet::EMPTY), &mut p);
        // Node 5's in-flight PUTX arrives late.
        let acts = bank.handle(
            360,
            CoherenceMsg::Putx {
                addr: LineAddr(3),
                owner: NodeId(5),
                sticky: StickyKind::None,
            },
            &mut p,
        );
        assert!(matches!(
            acts[0],
            DirAction::Send {
                msg: CoherenceMsg::WbAck { .. },
                dst,
                ..
            } if dst == NodeId(5)
        ));
        assert_eq!(bank.owner_of(LineAddr(3)), Some(NodeId(6)));
    }

    #[test]
    fn fwd_gets_success_tracks_owner_kept() {
        let mut bank = bank();
        let mut p = NullPredictor;
        make_shared(&mut bank, 4, &[8]); // node 8 E owner
        bank.handle(300, gets(4, 9), &mut p);
        // Owner aborted/invalidated: nackers mask does NOT contain node 8.
        bank.handle(350, unblock(4, 9, true, SharerSet::EMPTY), &mut p);
        let holders = bank.holders_of(LineAddr(4));
        assert!(holders.contains(NodeId(9)));
        assert!(!holders.contains(NodeId(8)));
    }
}
