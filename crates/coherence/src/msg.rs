//! Coherence message formats, including the PUNO extensions of Figure 7.

use puno_noc::{VirtualNetwork, CONTROL_FLITS, DATA_FLITS};
use puno_sim::{Cycles, NodeId, StaticTxId, Timestamp, TxId};
use serde::{Deserialize, Serialize};

use crate::sharers::SharerSet;

/// Overflow stickiness of an eviction writeback (LogTM-style): how the
/// home must keep routing conflict checks after a transactional line is
/// forced out of the L1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StickyKind {
    /// Ordinary eviction: the directory releases the node.
    None,
    /// The line is in the evictor's transactional *read set*: the home
    /// keeps the node in the sharer list so writers' invalidations still
    /// reach it.
    Reader,
    /// The line is in the evictor's transactional *write set*: the home
    /// keeps the node as owner so every request is still forwarded to it
    /// (the node answers from its write set; data lives in L2/memory).
    Writer,
}

/// Transactional context attached to coherence requests issued from inside a
/// transaction. Requests carry the host node and priority of the requesting
/// transaction (paper Section III-B: the P-Buffer "is updated constantly with
/// the {host node, priority} pair retrieved from the incoming coherence
/// requests").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxInfo {
    pub tx: TxId,
    /// Priority of the transaction: smaller = older = wins conflicts.
    pub timestamp: Timestamp,
    /// Which static transaction this instance executes (indexes the TxLB).
    pub static_tx: StaticTxId,
    /// The node's running estimate of its average transaction length, in
    /// cycles. The directory's adaptive rollover counter derives its timeout
    /// period from this hint (Section III-B: "the timeout period ... is
    /// determined dynamically based on the average transaction length").
    pub avg_len_hint: Cycles,
}

/// All protocol messages. Field layout mirrors the paper's Figure 7: the
/// PUNO additions are the `unicast` flag (U-bit) on forwarded write requests,
/// the `notification`/`mispredict` fields on NACK, and the
/// `mispredict`/`mp_node` fields on UNBLOCK.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoherenceMsg {
    // ---- Request virtual network (node -> home directory) ----
    /// Request shared access.
    Gets {
        addr: puno_sim::LineAddr,
        requester: NodeId,
        tx: Option<TxInfo>,
    },
    /// Request exclusive access (a "transactional write request" when `tx`
    /// is set — the message class at the heart of false aborting).
    Getx {
        addr: puno_sim::LineAddr,
        requester: NodeId,
        tx: Option<TxInfo>,
    },
    /// Dirty writeback from an evicting owner (carries data).
    Putx {
        addr: puno_sim::LineAddr,
        owner: NodeId,
        sticky: StickyKind,
    },
    /// Clean-exclusive eviction notice (no data): an E-state owner is
    /// dropping its copy, so the directory must stop forwarding to it
    /// (unless sticky).
    Puts {
        addr: puno_sim::LineAddr,
        owner: NodeId,
        sticky: StickyKind,
    },

    // ---- Forward virtual network (home directory -> sharers/owner) ----
    /// Forwarded GETS to the current owner.
    FwdGets {
        addr: puno_sim::LineAddr,
        requester: NodeId,
        tx: Option<TxInfo>,
    },
    /// Forwarded GETX to the current owner. `unicast` is the U-bit.
    FwdGetx {
        addr: puno_sim::LineAddr,
        requester: NodeId,
        tx: Option<TxInfo>,
        unicast: bool,
    },
    /// Invalidation to a sharer on behalf of an exclusive requester.
    /// `unicast` is the U-bit (set when PUNO unicasts to the predicted
    /// highest-priority sharer instead of multicasting).
    Inv {
        addr: puno_sim::LineAddr,
        requester: NodeId,
        tx: Option<TxInfo>,
        unicast: bool,
    },

    // ---- Response virtual network ----
    /// Data to the requester. `acks_expected` tells the requester how many
    /// invalidation responses (Ack or Nack) to collect before concluding.
    /// `exclusive` grants E on a GETS with no other sharers.
    Data {
        addr: puno_sim::LineAddr,
        from: NodeId,
        acks_expected: u32,
        exclusive: bool,
        /// For owner -> requester transfers on a GETS: whether the previous
        /// owner kept a shared copy (downgrade) or invalidated (it aborted).
        /// Relayed to the home in UNBLOCK so the sharer list stays exact.
        owner_kept: bool,
    },
    /// Permission-only response for upgrades (requester already holds the
    /// line in S); control-sized.
    UpgradeAck {
        addr: puno_sim::LineAddr,
        from: NodeId,
        acks_expected: u32,
    },
    /// Invalidation acknowledgement from a sharer to the requester.
    /// `aborted` reports that complying required aborting a transaction
    /// (feeds the false-abort oracle).
    Ack {
        addr: puno_sim::LineAddr,
        from: NodeId,
        aborted: bool,
    },
    /// Negative acknowledgement: the sharer/owner refuses to give up the
    /// line. PUNO extensions: `notification` = nacker's estimated remaining
    /// running time in cycles; `mispredict` = MP-bit.
    Nack {
        addr: puno_sim::LineAddr,
        from: NodeId,
        notification: Option<Cycles>,
        mispredict: bool,
        /// Echo of the U-bit: tells the requester this NACK concludes a
        /// unicast service episode (no data or further acks will follow).
        unicast: bool,
    },
    /// Requester concludes a directory service episode. `success` = whether
    /// the request took effect; `nackers` lets the home reconcile its sharer
    /// list after a failed (nacked) GETX; `mp_node` is PUNO's misprediction
    /// feedback (MP-bit + MP-node of Figure 7).
    Unblock {
        addr: puno_sim::LineAddr,
        requester: NodeId,
        success: bool,
        nackers: SharerSet,
        mp_node: Option<NodeId>,
        /// Like requests, the unblock carries the requesting transaction's
        /// {host node, priority} pair so the home's P-Buffer stays fresh.
        tx: Option<TxInfo>,
    },
    /// Writeback acknowledgement to an evicting owner.
    WbAck { addr: puno_sim::LineAddr },
    /// EXTENSION (paper §VI future work): a nacker that finished (committed
    /// or aborted) pokes the requesters it previously nacked-with-
    /// notification, so an oversleeping backoff ends the moment the line is
    /// actually free. Control-sized; node-to-node.
    WakeupHint {
        addr: puno_sim::LineAddr,
        from: NodeId,
    },
    /// Data sent from a downgrading owner back to the home (sharing
    /// writeback), so the L2 copy is current before new sharers join.
    WbData {
        addr: puno_sim::LineAddr,
        from: NodeId,
    },
}

impl CoherenceMsg {
    pub fn addr(&self) -> puno_sim::LineAddr {
        match *self {
            CoherenceMsg::Gets { addr, .. }
            | CoherenceMsg::Getx { addr, .. }
            | CoherenceMsg::Putx { addr, .. }
            | CoherenceMsg::Puts { addr, .. }
            | CoherenceMsg::FwdGets { addr, .. }
            | CoherenceMsg::FwdGetx { addr, .. }
            | CoherenceMsg::Inv { addr, .. }
            | CoherenceMsg::Data { addr, .. }
            | CoherenceMsg::UpgradeAck { addr, .. }
            | CoherenceMsg::Ack { addr, .. }
            | CoherenceMsg::Nack { addr, .. }
            | CoherenceMsg::Unblock { addr, .. }
            | CoherenceMsg::WbAck { addr }
            | CoherenceMsg::WakeupHint { addr, .. }
            | CoherenceMsg::WbData { addr, .. } => addr,
        }
    }

    /// Virtual network assignment: requests, forwards and responses ride
    /// separate networks so the blocking protocol cannot deadlock in the
    /// fabric.
    pub fn vnet(&self) -> VirtualNetwork {
        match self {
            CoherenceMsg::Gets { .. }
            | CoherenceMsg::Getx { .. }
            | CoherenceMsg::Putx { .. }
            | CoherenceMsg::Puts { .. } => VirtualNetwork::Request,
            CoherenceMsg::FwdGets { .. }
            | CoherenceMsg::FwdGetx { .. }
            | CoherenceMsg::Inv { .. } => VirtualNetwork::Forward,
            _ => VirtualNetwork::Response,
        }
    }

    /// Message size in flits. Only messages carrying a full cache line are
    /// data-sized; everything else — including every PUNO-extended message —
    /// fits in one control flit ("the extended messages can fit into the
    /// existing flits, requiring no extra flits on the network").
    pub fn flits(&self) -> u32 {
        match self {
            CoherenceMsg::Data { .. } | CoherenceMsg::Putx { .. } | CoherenceMsg::WbData { .. } => {
                DATA_FLITS
            }
            _ => CONTROL_FLITS,
        }
    }

    /// True for transactional GETX — the request class whose multicast causes
    /// false aborting (Figure 2 denominator).
    pub fn is_tx_getx(&self) -> bool {
        matches!(self, CoherenceMsg::Getx { tx: Some(_), .. })
    }

    /// The payload-free kind mirror used by the typed trace events in
    /// `puno_sim::trace` (the sim kernel cannot depend on this crate).
    pub fn trace_kind(&self) -> puno_sim::CohMsgKind {
        use puno_sim::CohMsgKind as K;
        match self {
            CoherenceMsg::Gets { .. } => K::Gets,
            CoherenceMsg::Getx { .. } => K::Getx,
            CoherenceMsg::Putx { .. } => K::Putx,
            CoherenceMsg::Puts { .. } => K::Puts,
            CoherenceMsg::FwdGets { .. } => K::FwdGets,
            CoherenceMsg::FwdGetx { .. } => K::FwdGetx,
            CoherenceMsg::Inv { .. } => K::Inv,
            CoherenceMsg::Data { .. } => K::Data,
            CoherenceMsg::UpgradeAck { .. } => K::UpgradeAck,
            CoherenceMsg::Ack { .. } => K::Ack,
            CoherenceMsg::Nack { .. } => K::Nack,
            CoherenceMsg::Unblock { .. } => K::Unblock,
            CoherenceMsg::WbAck { .. } => K::WbAck,
            CoherenceMsg::WakeupHint { .. } => K::WakeupHint,
            CoherenceMsg::WbData { .. } => K::WbData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_sim::LineAddr;

    fn txinfo(ts: u64) -> TxInfo {
        TxInfo {
            tx: TxId(1),
            timestamp: Timestamp(ts),
            static_tx: StaticTxId(0),
            avg_len_hint: 100,
        }
    }

    #[test]
    fn vnet_assignment_separates_classes() {
        let gets = CoherenceMsg::Gets {
            addr: LineAddr(1),
            requester: NodeId(0),
            tx: None,
        };
        let inv = CoherenceMsg::Inv {
            addr: LineAddr(1),
            requester: NodeId(0),
            tx: Some(txinfo(5)),
            unicast: true,
        };
        let ack = CoherenceMsg::Ack {
            addr: LineAddr(1),
            from: NodeId(2),
            aborted: false,
        };
        assert_eq!(gets.vnet(), VirtualNetwork::Request);
        assert_eq!(inv.vnet(), VirtualNetwork::Forward);
        assert_eq!(ack.vnet(), VirtualNetwork::Response);
    }

    #[test]
    fn only_data_messages_are_data_sized() {
        let nack = CoherenceMsg::Nack {
            addr: LineAddr(1),
            from: NodeId(2),
            notification: Some(400),
            mispredict: true,
            unicast: true,
        };
        assert_eq!(nack.flits(), CONTROL_FLITS);
        let data = CoherenceMsg::Data {
            addr: LineAddr(1),
            from: NodeId(2),
            acks_expected: 3,
            exclusive: false,
            owner_kept: false,
        };
        assert_eq!(data.flits(), DATA_FLITS);
    }

    #[test]
    fn tx_getx_detection() {
        let tx_getx = CoherenceMsg::Getx {
            addr: LineAddr(1),
            requester: NodeId(0),
            tx: Some(txinfo(9)),
        };
        let plain_getx = CoherenceMsg::Getx {
            addr: LineAddr(1),
            requester: NodeId(0),
            tx: None,
        };
        assert!(tx_getx.is_tx_getx());
        assert!(!plain_getx.is_tx_getx());
    }

    #[test]
    fn addr_accessor_covers_all_variants() {
        let msgs = [
            CoherenceMsg::WbAck { addr: LineAddr(9) },
            CoherenceMsg::Unblock {
                addr: LineAddr(9),
                requester: NodeId(1),
                success: true,
                nackers: SharerSet::default(),
                mp_node: None,
                tx: None,
            },
        ];
        for m in &msgs {
            assert_eq!(m.addr(), LineAddr(9));
        }
    }
}
