//! The hook through which PUNO's unicast-destination predictor plugs into
//! the home directory.
//!
//! The coherence crate stays ignorant of P-Buffers, validity counters and UD
//! pointers; it only asks "should this transactional GETX be unicast, and to
//! whom?". The `puno-core` crate provides the real implementation; the
//! `NullPredictor` here gives the baseline (always multicast) behaviour.

use crate::msg::TxInfo;
use crate::sharers::SharerSet;
use puno_sim::{Cycle, LineAddr, NodeId};

/// Outcome of a unicast prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictedTarget {
    /// The sharer predicted to NACK the request (the UD pointer target).
    pub node: NodeId,
}

/// Directory-side prediction interface (paper Section III-B/III-C).
pub trait UnicastPredictor {
    /// Every incoming transactional request refreshes the {host node,
    /// priority} pair for its source (P-Buffer update).
    fn observe_request(&mut self, now: Cycle, node: NodeId, info: &TxInfo);

    /// Called when a transactional GETX is about to be forwarded. `holders`
    /// is the set of nodes that would receive the multicast (sharers minus
    /// the requester, or the single owner); `exclusive_owner` distinguishes
    /// the owned-state forward (single target regardless) from the
    /// shared-state multicast. Return `Some` to unicast.
    fn predict_unicast(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        requester: NodeId,
        req: &TxInfo,
        holders: SharerSet,
        exclusive_owner: bool,
    ) -> Option<PredictedTarget>;

    /// Misprediction feedback relayed through UNBLOCK (MP-bit + MP-node):
    /// invalidate the stale priority that caused the bad prediction.
    fn on_mispredict_feedback(&mut self, now: Cycle, addr: LineAddr, node: NodeId);

    /// Called after each directory service episode completes, with the final
    /// holder set, so the entry's UD pointer can be recomputed off the
    /// critical path.
    fn after_service(&mut self, now: Cycle, addr: LineAddr, holders: SharerSet);

    /// Extra forwarding latency the prediction adds on the critical path.
    /// PUNO: 1 cycle P-Buffer access + 1 cycle unicast decision. Baseline: 0.
    fn decision_latency(&self) -> Cycle {
        0
    }
}

/// Baseline behaviour: never unicast; requests are always multicast
/// exhaustively to all holders.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullPredictor;

impl UnicastPredictor for NullPredictor {
    fn observe_request(&mut self, _now: Cycle, _node: NodeId, _info: &TxInfo) {}

    fn predict_unicast(
        &mut self,
        _now: Cycle,
        _addr: LineAddr,
        _requester: NodeId,
        _req: &TxInfo,
        _holders: SharerSet,
        _exclusive_owner: bool,
    ) -> Option<PredictedTarget> {
        None
    }

    fn on_mispredict_feedback(&mut self, _now: Cycle, _addr: LineAddr, _node: NodeId) {}

    fn after_service(&mut self, _now: Cycle, _addr: LineAddr, _holders: SharerSet) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use puno_sim::{StaticTxId, Timestamp, TxId};

    #[test]
    fn null_predictor_never_unicasts() {
        let mut p = NullPredictor;
        let info = TxInfo {
            tx: TxId(1),
            timestamp: Timestamp(5),
            static_tx: StaticTxId(0),
            avg_len_hint: 100,
        };
        p.observe_request(0, NodeId(1), &info);
        let holders: SharerSet = [NodeId(1), NodeId(2)].into_iter().collect();
        assert_eq!(
            p.predict_unicast(10, LineAddr(4), NodeId(0), &info, holders, false),
            None
        );
        assert_eq!(p.decision_latency(), 0);
    }
}
