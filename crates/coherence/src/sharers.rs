//! Sharer-list bitmask, sized for up to 64 nodes.

use puno_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Set of nodes sharing a line, stored as a bitmask (a real directory entry
/// stores exactly this full-map vector for a 16-node CMP).
#[derive(Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharerSet(pub u64);

impl SharerSet {
    pub const EMPTY: SharerSet = SharerSet(0);

    pub fn single(node: NodeId) -> Self {
        let mut s = Self::EMPTY;
        s.insert(node);
        s
    }

    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        debug_assert!(node.0 < 64);
        self.0 |= 1 << node.0;
    }

    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        self.0 &= !(1 << node.0);
    }

    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.0 & (1 << node.0) != 0
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Iterate members in ascending node order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let bits = self.0;
        (0..64u16).filter(move |i| bits & (1 << i) != 0).map(NodeId)
    }

    pub fn union(self, other: SharerSet) -> SharerSet {
        SharerSet(self.0 | other.0)
    }

    pub fn intersect(self, other: SharerSet) -> SharerSet {
        SharerSet(self.0 & other.0)
    }

    pub fn difference(self, other: SharerSet) -> SharerSet {
        SharerSet(self.0 & !other.0)
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = Self::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::default();
        assert!(s.is_empty());
        s.insert(NodeId(3));
        s.insert(NodeId(15));
        assert!(s.contains(NodeId(3)));
        assert!(!s.contains(NodeId(4)));
        assert_eq!(s.len(), 2);
        s.remove(NodeId(3));
        assert!(!s.contains(NodeId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted() {
        let s: SharerSet = [NodeId(9), NodeId(1), NodeId(4)].into_iter().collect();
        let v: Vec<NodeId> = s.iter().collect();
        assert_eq!(v, vec![NodeId(1), NodeId(4), NodeId(9)]);
    }

    #[test]
    fn set_algebra() {
        let a: SharerSet = [NodeId(1), NodeId(2)].into_iter().collect();
        let b: SharerSet = [NodeId(2), NodeId(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersect(b).iter().collect::<Vec<_>>(), vec![NodeId(2)]);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![NodeId(1)]);
    }

    #[test]
    fn idempotent_insert() {
        let mut s = SharerSet::default();
        s.insert(NodeId(5));
        s.insert(NodeId(5));
        assert_eq!(s.len(), 1);
    }
}
