//! Directory protocol scenario tests: multi-step message choreographies
//! exercising queuing, upgrades, writebacks and the PUNO probe paths, plus
//! a randomized test that random legal request sequences never corrupt the
//! sharer bookkeeping (fixed-seed `SimRng`; the registryless build cannot
//! use proptest).

use puno_coherence::directory::{DirAction, DirConfig, DirectoryBank};
use puno_coherence::msg::{CoherenceMsg, StickyKind, TxInfo};
use puno_coherence::predictor::NullPredictor;
use puno_coherence::sharers::SharerSet;
use puno_sim::{LineAddr, NodeId, SimRng, StaticTxId, Timestamp, TxId};

fn info(ts: u64) -> TxInfo {
    TxInfo {
        tx: TxId(ts),
        timestamp: Timestamp(ts),
        static_tx: StaticTxId(0),
        avg_len_hint: 100,
    }
}

fn gets(addr: u64, req: u16) -> CoherenceMsg {
    CoherenceMsg::Gets {
        addr: LineAddr(addr),
        requester: NodeId(req),
        tx: Some(info(req as u64 + 1)),
    }
}

fn unblock(addr: u64, req: u16, success: bool, nackers: SharerSet) -> CoherenceMsg {
    CoherenceMsg::Unblock {
        addr: LineAddr(addr),
        requester: NodeId(req),
        success,
        nackers,
        mp_node: None,
        tx: None,
    }
}

/// Drive a line from first touch to an N-node shared state.
fn seed_shared(bank: &mut DirectoryBank, addr: u64, nodes: &[u16]) {
    let mut p = NullPredictor;
    for (i, &n) in nodes.iter().enumerate() {
        let acts = bank.handle(i as u64 * 100, gets(addr, n), &mut p);
        if i == 0 {
            assert!(matches!(acts[0], DirAction::FetchMem { .. }));
            bank.mem_ready(50, LineAddr(addr), &mut p);
            bank.handle(60, unblock(addr, n, true, SharerSet::EMPTY), &mut p);
        } else if i == 1 {
            // Forwarded to the exclusive owner; relay owner-kept.
            bank.handle(
                i as u64 * 100 + 60,
                unblock(addr, n, true, SharerSet::single(NodeId(nodes[0]))),
                &mut p,
            );
        } else {
            bank.handle(
                i as u64 * 100 + 60,
                unblock(addr, n, true, SharerSet::EMPTY),
                &mut p,
            );
        }
    }
    assert_eq!(bank.holders_of(LineAddr(addr)).len() as usize, nodes.len());
}

#[test]
fn five_readers_then_writer_takes_ownership() {
    let mut bank = DirectoryBank::new(NodeId(0), DirConfig::default());
    let mut p = NullPredictor;
    seed_shared(&mut bank, 16, &[1, 2, 3, 4, 5]);
    let acts = bank.handle(
        1000,
        CoherenceMsg::Getx {
            addr: LineAddr(16),
            requester: NodeId(6),
            tx: Some(info(1)),
        },
        &mut p,
    );
    let invs = acts
        .iter()
        .filter(|a| {
            matches!(
                a,
                DirAction::Send {
                    msg: CoherenceMsg::Inv { .. },
                    ..
                }
            )
        })
        .count();
    assert_eq!(invs, 5, "exhaustive multicast to all five sharers");
    bank.handle(1100, unblock(16, 6, true, SharerSet::EMPTY), &mut p);
    assert_eq!(bank.owner_of(LineAddr(16)), Some(NodeId(6)));
    assert_eq!(bank.holders_of(LineAddr(16)).len(), 1);
}

#[test]
fn queued_requests_service_in_fifo_order() {
    let mut bank = DirectoryBank::new(NodeId(0), DirConfig::default());
    let mut p = NullPredictor;
    seed_shared(&mut bank, 8, &[1, 2]);
    // Episode 1 starts (busy).
    bank.handle(
        500,
        CoherenceMsg::Getx {
            addr: LineAddr(8),
            requester: NodeId(3),
            tx: Some(info(10)),
        },
        &mut p,
    );
    // Two competing requests queue.
    assert!(bank.handle(510, gets(8, 4), &mut p).is_empty());
    assert!(bank
        .handle(
            520,
            CoherenceMsg::Getx {
                addr: LineAddr(8),
                requester: NodeId(5),
                tx: Some(info(20)),
            },
            &mut p,
        )
        .is_empty());
    // Unblock of episode 1 immediately services node 4's GETS (FIFO).
    let acts = bank.handle(600, unblock(8, 3, true, SharerSet::EMPTY), &mut p);
    let fwd_gets_to_new_owner = acts.iter().any(|a| {
        matches!(a, DirAction::Send { dst, msg: CoherenceMsg::FwdGets { requester, .. }, .. }
            if *dst == NodeId(3) && *requester == NodeId(4))
    });
    assert!(fwd_gets_to_new_owner, "queued GETS must go first: {acts:?}");
    // Node 5's GETX is still waiting.
    assert!(bank.is_busy(LineAddr(8)));
}

#[test]
fn upgrade_race_requester_invalidated_while_queued() {
    let mut bank = DirectoryBank::new(NodeId(0), DirConfig::default());
    let mut p = NullPredictor;
    seed_shared(&mut bank, 4, &[1, 2]);
    // Node 2 asks to upgrade, but node 3's GETX is serviced first.
    bank.handle(
        300,
        CoherenceMsg::Getx {
            addr: LineAddr(4),
            requester: NodeId(3),
            tx: Some(info(1)),
        },
        &mut p,
    );
    // Node 2's upgrade GETX queues behind it.
    bank.handle(
        310,
        CoherenceMsg::Getx {
            addr: LineAddr(4),
            requester: NodeId(2),
            tx: Some(info(2)),
        },
        &mut p,
    );
    // Node 3 wins; sharers (1 and 2) invalidated.
    let acts = bank.handle(400, unblock(4, 3, true, SharerSet::EMPTY), &mut p);
    // Node 2's queued request is serviced now — but node 2 is no longer a
    // sharer, so it must receive Data (not UpgradeAck) forwarded from the
    // new owner (node 3).
    assert!(
        acts.iter().any(|a| matches!(
            a,
            DirAction::Send { dst, msg: CoherenceMsg::FwdGetx { requester, .. }, .. }
                if *dst == NodeId(3) && *requester == NodeId(2)
        )),
        "{acts:?}"
    );
}

#[test]
fn writeback_then_reload_uses_l2() {
    let mut bank = DirectoryBank::new(NodeId(0), DirConfig::default());
    let mut p = NullPredictor;
    seed_shared(&mut bank, 2, &[7]);
    // Owner 7 evicts dirty.
    bank.handle(
        100,
        CoherenceMsg::Putx {
            addr: LineAddr(2),
            owner: NodeId(7),
            sticky: StickyKind::None,
        },
        &mut p,
    );
    assert_eq!(bank.owner_of(LineAddr(2)), None);
    // Reload by node 8: L2 hit (no FetchMem) with exclusive grant.
    let acts = bank.handle(200, gets(2, 8), &mut p);
    assert!(acts
        .iter()
        .all(|a| !matches!(a, DirAction::FetchMem { .. })));
    assert!(acts.iter().any(|a| matches!(
        a,
        DirAction::Send {
            msg: CoherenceMsg::Data {
                exclusive: true,
                ..
            },
            ..
        }
    )));
}

#[test]
fn puts_clean_eviction_clears_owner() {
    let mut bank = DirectoryBank::new(NodeId(0), DirConfig::default());
    let mut p = NullPredictor;
    seed_shared(&mut bank, 2, &[7]);
    let acts = bank.handle(
        100,
        CoherenceMsg::Puts {
            addr: LineAddr(2),
            owner: NodeId(7),
            sticky: StickyKind::None,
        },
        &mut p,
    );
    assert!(matches!(
        acts[0],
        DirAction::Send {
            msg: CoherenceMsg::WbAck { .. },
            ..
        }
    ));
    assert_eq!(bank.owner_of(LineAddr(2)), None);
}

#[test]
fn failed_unicast_probe_preserves_all_sharers() {
    use puno_coherence::predictor::{PredictedTarget, UnicastPredictor};
    struct Fixed(NodeId);
    impl UnicastPredictor for Fixed {
        fn observe_request(&mut self, _: u64, _: NodeId, _: &TxInfo) {}
        fn predict_unicast(
            &mut self,
            _: u64,
            _: LineAddr,
            _: NodeId,
            _: &TxInfo,
            h: SharerSet,
            _: bool,
        ) -> Option<PredictedTarget> {
            h.contains(self.0)
                .then_some(PredictedTarget { node: self.0 })
        }
        fn on_mispredict_feedback(&mut self, _: u64, _: LineAddr, _: NodeId) {}
        fn after_service(&mut self, _: u64, _: LineAddr, _: SharerSet) {}
    }

    let mut bank = DirectoryBank::new(NodeId(0), DirConfig::default());
    seed_shared(&mut bank, 32, &[1, 2, 3, 4]);
    let mut fixed = Fixed(NodeId(2));
    let acts = bank.handle(
        900,
        CoherenceMsg::Getx {
            addr: LineAddr(32),
            requester: NodeId(9),
            tx: Some(info(999)),
        },
        &mut fixed,
    );
    assert_eq!(acts.len(), 1, "one probe, no data, no multicast: {acts:?}");
    bank.handle(
        950,
        CoherenceMsg::Unblock {
            addr: LineAddr(32),
            requester: NodeId(9),
            success: false,
            nackers: SharerSet::single(NodeId(2)),
            mp_node: None,
            tx: None,
        },
        &mut fixed,
    );
    assert_eq!(
        bank.holders_of(LineAddr(32)).len(),
        4,
        "nobody was invalidated"
    );
}

/// Random sequences of (request, immediate successful unblock) keep the
/// directory's bookkeeping sane: at most one owner, owner and sharer state
/// never coexist, and the bank never panics.
#[test]
fn random_episodes_keep_invariants() {
    let mut rng = SimRng::new(0x5eed_0008);
    for case in 0..48 {
        let n_ops = 1 + rng.gen_range(59) as usize;
        let ops: Vec<(u8, u16, u64)> = (0..n_ops)
            .map(|_| {
                (
                    rng.gen_range(3) as u8,
                    rng.gen_range(8) as u16,
                    rng.gen_range(4),
                )
            })
            .collect();
        let mut bank = DirectoryBank::new(NodeId(0), DirConfig::default());
        let mut p = NullPredictor;
        let mut now = 0u64;
        for (kind, node, line) in ops {
            now += 10;
            let addr = LineAddr(line);
            let req = NodeId(node);
            match kind {
                0 => {
                    let acts = bank.handle(now, gets(line, node), &mut p);
                    if acts.iter().any(|a| matches!(a, DirAction::FetchMem { .. })) {
                        bank.mem_ready(now + 1, addr, &mut p);
                    }
                    if bank.is_busy(addr) {
                        // Conclude successfully; relay prev owner as kept
                        // when the service was an owner forward.
                        let owner = bank.owner_of(addr);
                        let mask = owner
                            .filter(|o| *o != req)
                            .map(SharerSet::single)
                            .unwrap_or(SharerSet::EMPTY);
                        bank.handle(now + 2, unblock(line, node, true, mask), &mut p);
                    }
                }
                1 => {
                    let msg = CoherenceMsg::Getx {
                        addr,
                        requester: req,
                        tx: Some(info(now)),
                    };
                    let acts = bank.handle(now, msg, &mut p);
                    if acts.iter().any(|a| matches!(a, DirAction::FetchMem { .. })) {
                        bank.mem_ready(now + 1, addr, &mut p);
                    }
                    if bank.is_busy(addr) {
                        bank.handle(now + 2, unblock(line, node, true, SharerSet::EMPTY), &mut p);
                    }
                }
                _ => {
                    // Eviction notice; only meaningful from the owner, but
                    // stale PUTX must be tolerated.
                    bank.handle(
                        now,
                        CoherenceMsg::Putx {
                            addr,
                            owner: req,
                            sticky: StickyKind::None,
                        },
                        &mut p,
                    );
                }
            }
            // Invariants.
            let holders = bank.holders_of(addr);
            if let Some(owner) = bank.owner_of(addr) {
                assert_eq!(holders, SharerSet::single(owner), "case {case}");
            }
            assert!(
                !bank.is_busy(addr),
                "case {case}: episodes are closed each step"
            );
        }
    }
}
