//! Property tests: `LineMap`/`LineSet` against their std references across
//! randomized insert/remove/contains/clear/iterate schedules.
//!
//! The hot-state containers replace `HashMap`/`BTreeSet` on the protocol
//! fast path; any divergence from the reference semantics (lost keys after
//! backward-shift deletion, stale members surviving a generation clear,
//! wrong sorted order) is a correctness bug that would silently corrupt
//! conflict detection. Schedules are driven by the seeded `SimRng`, so a
//! failure reproduces exactly.

use puno_sim::{LineAddr, LineMap, LineSet, SimRng};
use std::collections::{BTreeSet, HashMap};

/// Small key universe so inserts, removes and probes collide constantly —
/// collisions and probe-chain compaction are the interesting paths.
const KEY_SPACE: u64 = 256;
const OPS_PER_SCHEDULE: usize = 4_000;
const SCHEDULES: u64 = 20;

#[test]
fn linemap_matches_hashmap_reference() {
    for seed in 0..SCHEDULES {
        let mut rng = SimRng::new(0xA11CE + seed);
        let mut map: LineMap<LineAddr, u64> = LineMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();

        for op in 0..OPS_PER_SCHEDULE {
            let key = rng.gen_range(KEY_SPACE);
            let addr = LineAddr(key);
            match rng.gen_range(100) {
                // Insert (also exercises replacement).
                0..=44 => {
                    let value = rng.next_u64();
                    assert_eq!(
                        map.insert(addr, value),
                        reference.insert(key, value),
                        "seed {seed} op {op}: insert({key}) prior value diverged"
                    );
                }
                // Remove with backward-shift compaction.
                45..=69 => {
                    assert_eq!(
                        map.remove(addr),
                        reference.remove(&key),
                        "seed {seed} op {op}: remove({key}) diverged"
                    );
                }
                // Upsert.
                70..=84 => {
                    let bump = rng.gen_range(16);
                    *map.get_or_insert_with(addr, || 0) += bump;
                    *reference.entry(key).or_insert(0) += bump;
                }
                // Point lookups.
                85..=97 => {
                    assert_eq!(
                        map.get(addr),
                        reference.get(&key),
                        "seed {seed} op {op}: get({key}) diverged"
                    );
                    assert_eq!(map.contains_key(addr), reference.contains_key(&key));
                }
                // Occasional full clear.
                _ => {
                    map.clear();
                    reference.clear();
                }
            }
            assert_eq!(map.len(), reference.len(), "seed {seed} op {op}: len");
        }

        // Full-state equivalence at end of schedule, including the sorted
        // iteration order contract.
        let mut want: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        want.sort_unstable();
        let got: Vec<(u64, u64)> = map
            .sorted_keys()
            .into_iter()
            .map(|a| (a.0, *map.get(a).unwrap()))
            .collect();
        assert_eq!(got, want, "seed {seed}: final state diverged");

        // Unordered iteration covers exactly the same pairs.
        let mut unordered: Vec<(u64, u64)> = map.iter().map(|(k, &v)| (k.0, v)).collect();
        unordered.sort_unstable();
        assert_eq!(unordered, want, "seed {seed}: iter() coverage diverged");
    }
}

#[test]
fn lineset_matches_btreeset_reference() {
    for seed in 0..SCHEDULES {
        let mut rng = SimRng::new(0xBEE5 + seed);
        let mut set: LineSet<LineAddr> = LineSet::new();
        let mut reference: BTreeSet<u64> = BTreeSet::new();

        for op in 0..OPS_PER_SCHEDULE {
            let key = rng.gen_range(KEY_SPACE);
            let addr = LineAddr(key);
            match rng.gen_range(100) {
                0..=49 => {
                    assert_eq!(
                        set.insert(addr),
                        reference.insert(key),
                        "seed {seed} op {op}: insert({key}) novelty diverged"
                    );
                }
                50..=74 => {
                    assert_eq!(
                        set.remove(addr),
                        reference.remove(&key),
                        "seed {seed} op {op}: remove({key}) diverged"
                    );
                }
                75..=94 => {
                    assert_eq!(
                        set.contains(addr),
                        reference.contains(&key),
                        "seed {seed} op {op}: contains({key}) diverged"
                    );
                }
                // The clear path is the whole point of LineSet: hit it often
                // so generation stamps cycle with stale slots in the table.
                _ => {
                    set.clear();
                    reference.clear();
                }
            }
            assert_eq!(set.len(), reference.len(), "seed {seed} op {op}: len");
        }

        // Sorted iteration must equal BTreeSet's ascending order exactly.
        let want: Vec<u64> = reference.iter().copied().collect();
        let got: Vec<u64> = set.sorted().into_iter().map(|a| a.0).collect();
        assert_eq!(got, want, "seed {seed}: sorted order diverged");

        let mut unordered: Vec<u64> = set.iter().map(|a| a.0).collect();
        unordered.sort_unstable();
        assert_eq!(unordered, want, "seed {seed}: iter() coverage diverged");
    }
}

/// Pre-sized maps under heavy churn must never lose entries to the
/// interaction of growth and backward-shift deletion.
#[test]
fn linemap_churn_with_presizing() {
    let mut rng = SimRng::new(99);
    let mut map: LineMap<u64, u64> = LineMap::with_capacity(64);
    let mut reference: HashMap<u64, u64> = HashMap::new();
    for _ in 0..20_000 {
        let key = rng.gen_range(64);
        if rng.gen_bool(0.6) {
            let v = rng.next_u64();
            map.insert(key, v);
            reference.insert(key, v);
        } else {
            assert_eq!(map.remove(key), reference.remove(&key));
        }
    }
    let mut got: Vec<(u64, u64)> = map.iter().map(|(k, &v)| (k, v)).collect();
    got.sort_unstable();
    let mut want: Vec<(u64, u64)> = reference.into_iter().collect();
    want.sort_unstable();
    assert_eq!(got, want);
}
