//! Property tests for the calendar-queue fast path: under seeded random
//! workloads the split bucket/heap [`EventQueue`] must pop the *exact*
//! `(cycle, seq)` sequence a pure binary-heap reference queue produces —
//! across mixed near/far schedules, same-cycle FIFO ties, interleaved
//! schedule/pop traffic, batch pops, and the past-schedule clamp.

use puno_sim::{EventQueue, SimRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-calendar implementation, kept as the ordering oracle: one binary
/// min-heap over `(cycle, seq)` with a clamping scheduler.
struct ReferenceQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, E)>>,
    next_seq: u64,
    now: u64,
}

impl<E: Ord> ReferenceQueue<E> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    fn schedule_at(&mut self, at: u64, payload: E) {
        let cycle = at.max(self.now);
        self.heap.push(Reverse((cycle, self.next_seq, payload)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((cycle, _, payload)) = self.heap.pop()?;
        self.now = cycle;
        Some((cycle, payload))
    }
}

/// Drive both queues through an identical randomized schedule/pop script and
/// assert identical pop sequences. `delay_for` shapes the schedule mix.
fn check_against_reference(seed: u64, ops: usize, mut delay_for: impl FnMut(&mut SimRng) -> u64) {
    let mut rng = SimRng::new(seed);
    let mut q: EventQueue<u64> = EventQueue::with_capacity(16);
    let mut r: ReferenceQueue<u64> = ReferenceQueue::new();
    let mut payload = 0u64;
    for _ in 0..ops {
        // Biased toward scheduling so the queues stay populated.
        if rng.gen_range(3) < 2 || q.is_empty() {
            let burst = 1 + rng.gen_range(4);
            let at = q.now() + delay_for(&mut rng);
            for _ in 0..burst {
                // Same-cycle bursts exercise FIFO tie-breaking.
                q.schedule_at(at, payload);
                r.schedule_at(at, payload);
                payload += 1;
            }
        } else {
            assert_eq!(q.pop(), r.pop(), "pop diverged (seed {seed})");
        }
        assert_eq!(q.len(), r.heap.len(), "len diverged (seed {seed})");
    }
    // Drain: every remaining event must match.
    loop {
        let (a, b) = (q.pop(), r.pop());
        assert_eq!(a, b, "drain diverged (seed {seed})");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn near_future_schedules_match_reference() {
    // The dominant simulator pattern: now+1 and small deltas, all inside
    // the bucket window.
    for seed in 0..8 {
        check_against_reference(seed, 2_000, |rng| 1 + rng.gen_range(8));
    }
}

#[test]
fn mixed_near_far_schedules_match_reference() {
    // Heap and buckets both populated; far events later cross into the
    // bucket window as `now` advances and must interleave by seq.
    for seed in 100..108 {
        check_against_reference(seed, 2_000, |rng| {
            if rng.gen_bool(0.3) {
                64 + rng.gen_range(500) // far: heap path
            } else {
                rng.gen_range(64) // near: bucket path (incl. same-cycle 0)
            }
        });
    }
}

#[test]
fn window_boundary_schedules_match_reference() {
    // Deltas clustered around the bucket/heap boundary (now + 64).
    for seed in 200..204 {
        check_against_reference(seed, 2_000, |rng| 60 + rng.gen_range(9));
    }
}

#[test]
fn past_schedule_clamp_matches_reference() {
    // Randomly scheduling *behind* `now`: both queues clamp to `now`, and
    // clamped events must still pop in insertion order among same-cycle
    // peers. Uses the non-asserting entry point (the release-mode clamp).
    for seed in 300..306 {
        let mut rng = SimRng::new(seed);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut r: ReferenceQueue<u64> = ReferenceQueue::new();
        let mut payload = 0u64;
        for _ in 0..1_500 {
            if rng.gen_range(3) < 2 || q.is_empty() {
                // `at` may be far behind `now` — exercise the clamp.
                let at = q.now().saturating_sub(rng.gen_range(50)) + rng.gen_range(80);
                q.schedule_at_clamped(at, payload);
                r.schedule_at(at, payload);
                payload += 1;
            } else {
                assert_eq!(q.pop(), r.pop(), "clamp pop diverged (seed {seed})");
            }
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            assert_eq!(a, b, "clamp drain diverged (seed {seed})");
            if a.is_none() {
                break;
            }
        }
    }
}

#[test]
fn batch_pop_matches_reference_pop_sequence() {
    // pop_cycle_into must yield exactly the same flattened (cycle, payload)
    // stream as one-at-a-time popping on the reference queue.
    for seed in 400..404 {
        let mut rng = SimRng::new(seed);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut r: ReferenceQueue<u64> = ReferenceQueue::new();
        for i in 0..3_000u64 {
            let at = rng.gen_range(300);
            q.schedule_at_clamped(at, i);
            r.schedule_at(at, i);
        }
        let mut batch = Vec::new();
        while let Some(cycle) = q.pop_cycle_into(&mut batch) {
            for &payload in &batch {
                assert_eq!(
                    r.pop(),
                    Some((cycle, payload)),
                    "batch diverged (seed {seed})"
                );
            }
        }
        assert_eq!(r.pop(), None);
    }
}
