//! Statistics containers used throughout the simulator.
//!
//! Counters and histograms accumulate in `u64` so cross-run comparisons in
//! tests are exact; means and ratios are only materialized as `f64` at report
//! time.

use serde::{Deserialize, Serialize};

/// A named monotonically increasing counter.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A dense histogram over small integer buckets with an overflow tail.
///
/// Figure 3 of the paper is exactly this: the distribution of the number of
/// transactions aborted unnecessarily per false-aborting request, with a long
/// trailing tail.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Histogram with direct buckets for values `0..capacity`; larger values
    /// land in the overflow tail (still contributing to `sum`/`mean`).
    pub fn new(capacity: usize) -> Self {
        Self {
            buckets: vec![0; capacity],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    pub fn record(&mut self, value: u64) {
        if (value as usize) < self.buckets.len() {
            self.buckets[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += value;
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Count recorded for exactly `value` (None if it falls in overflow).
    pub fn bucket(&self, value: usize) -> Option<u64> {
        self.buckets.get(value).copied()
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of samples at exactly `value`.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bucket(value).unwrap_or(0) as f64 / self.total as f64
    }

    /// Iterate `(value, count)` for non-empty direct buckets.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Merge another histogram with identical capacity into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Running mean / min / max over `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl RunningStats {
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn merge(&mut self, other: &RunningStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average with a power-of-two weight, matching
/// the paper's TxLB update rule (formula (1): `new = (prev + sample) / 2`).
///
/// Integer arithmetic keeps the hardware analogy honest — the TxLB is an SRAM
/// of integer cycle counts, not a floating-point unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ewma {
    value: u64,
    initialized: bool,
}

impl Ewma {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in a sample: first sample initializes, later samples average
    /// `(prev + sample) / 2` exactly as formula (1) of the paper.
    pub fn update(&mut self, sample: u64) {
        if self.initialized {
            self.value = (self.value + sample) / 2;
        } else {
            self.value = sample;
            self.initialized = true;
        }
    }

    pub fn get(&self) -> Option<u64> {
        self.initialized.then_some(self.value)
    }

    pub fn get_or(&self, default: u64) -> u64 {
        self.get().unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_records_and_fractions() {
        let mut h = Histogram::new(8);
        for v in [0, 1, 1, 2, 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket(1), Some(2));
        assert_eq!(h.overflow(), 1);
        assert!((h.fraction(1) - 0.4).abs() < 1e-12);
        assert!((h.mean() - 24.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(4);
        let mut b = Histogram::new(4);
        a.record(1);
        b.record(1);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.bucket(1), Some(2));
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_iter_nonzero() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(3);
        h.record(3);
        let items: Vec<_> = h.iter_nonzero().collect();
        assert_eq!(items, vec![(0, 1), (3, 2)]);
    }

    #[test]
    fn running_stats_tracks_extrema() {
        let mut s = RunningStats::new();
        assert_eq!(s.min(), None);
        for v in [5, 1, 9] {
            s.record(v);
        }
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert!((s.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_matches_paper_formula_one() {
        // StaticTxLen_new = (StaticTxLen_prev + DynTxLen) / 2
        let mut e = Ewma::new();
        assert_eq!(e.get(), None);
        e.update(100);
        assert_eq!(e.get(), Some(100));
        e.update(200);
        assert_eq!(e.get(), Some(150));
        e.update(50);
        assert_eq!(e.get(), Some(100));
    }

    #[test]
    fn ewma_weights_recent_instances_more() {
        let mut e = Ewma::new();
        for _ in 0..10 {
            e.update(1000);
        }
        // A burst of short instances pulls the estimate down quickly.
        e.update(0);
        e.update(0);
        assert!(e.get().unwrap() <= 250);
    }
}
