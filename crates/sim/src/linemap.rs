//! Cache-conscious hot-state containers for the protocol fast path.
//!
//! The simulator's per-cycle cost is dominated by the state touched on every
//! transactional access and coherence message: directory entries, L1 tags,
//! read/write sets, RMW tables, the backing memory image. The std containers
//! those started life as (`HashMap` with SipHash, `BTreeMap`/`BTreeSet`)
//! are pointer-chasing and allocation-heavy exactly where the paper's
//! conflict-detection mechanism concentrates work. This module provides the
//! replacements:
//!
//! * [`LineMap<K, V>`] — an open-addressing hash map with multiplicative
//!   (Fibonacci) hashing, power-of-two capacity, linear probing, and
//!   tombstone-free backward-shift deletion. One flat slot array, no
//!   per-entry allocation, `with_capacity` pre-sizing.
//! * [`LineSet<K>`] — an open-addressing set with the same probing scheme
//!   plus a *generation stamp* per slot, so `clear` is O(1) (bump the
//!   generation) instead of O(capacity). Built for per-transaction-attempt
//!   state that is cleared on every abort→retry.
//!
//! **Determinism rule**: neither container has a deterministic *storage*
//! order (it depends on insertion history), so any iteration that feeds
//! metrics or message emission must go through the sorted paths
//! ([`LineMap::sorted_keys`], [`LineSet::sorted`]) or be order-insensitive
//! (e.g. a min-reduction over unique stamps). The unordered `iter` methods
//! exist for order-insensitive scans only.

use crate::ids::LineAddr;

/// Keys usable in [`LineMap`]/[`LineSet`]: anything with an *injective*
/// round-trippable packing into `u64`.
pub trait LineKey: Copy + Eq {
    fn to_key(self) -> u64;
    fn from_key(key: u64) -> Self;
}

impl LineKey for u64 {
    #[inline]
    fn to_key(self) -> u64 {
        self
    }
    #[inline]
    fn from_key(key: u64) -> Self {
        key
    }
}

impl LineKey for LineAddr {
    #[inline]
    fn to_key(self) -> u64 {
        self.0
    }
    #[inline]
    fn from_key(key: u64) -> Self {
        LineAddr(key)
    }
}

/// Fibonacci multiplicative hash with an extra xor-fold: line addresses are
/// low-entropy (small, often sequential), so the high bits must carry the
/// mixing down into the table index.
#[inline]
fn mix(key: u64) -> u64 {
    let x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^ (x >> 32)
}

const MIN_CAPACITY: usize = 8;

/// Grow when len * 4 >= capacity * 3 (75% load).
#[inline]
fn should_grow(len: usize, capacity: usize) -> bool {
    (len + 1) * 4 > capacity * 3
}

#[inline]
fn capacity_for(entries: usize) -> usize {
    (entries * 4 / 3 + 1).next_power_of_two().max(MIN_CAPACITY)
}

/// Open-addressing hash map keyed by a [`LineKey`].
///
/// Linear probing over a power-of-two slot array; deletion uses
/// backward-shift compaction so there are no tombstones and probe chains
/// never degrade. Unordered iteration is storage-order — use
/// [`Self::sorted_keys`] when order must be deterministic.
#[derive(Clone, Debug)]
pub struct LineMap<K: LineKey, V> {
    /// `None` = empty; `Some((packed_key, value))` = occupied.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    mask: usize,
    _key: std::marker::PhantomData<K>,
}

impl<K: LineKey, V> Default for LineMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: LineKey, V> LineMap<K, V> {
    pub fn new() -> Self {
        Self::with_pow2(MIN_CAPACITY)
    }

    /// Pre-size for `entries` insertions without rehashing.
    pub fn with_capacity(entries: usize) -> Self {
        Self::with_pow2(capacity_for(entries))
    }

    fn with_pow2(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            len: 0,
            mask: capacity - 1,
            _key: std::marker::PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot count (diagnostics / load-factor checks).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// `Ok(index)` of the occupied slot holding `key`, or `Err(index)` of
    /// the empty slot where it would be inserted.
    #[inline]
    fn find(&self, key: u64) -> Result<usize, usize> {
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            match &self.slots[i] {
                None => return Err(i),
                Some((k, _)) if *k == key => return Ok(i),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    #[inline]
    pub fn contains_key(&self, key: K) -> bool {
        self.find(key.to_key()).is_ok()
    }

    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        match self.find(key.to_key()) {
            Ok(i) => self.slots[i].as_ref().map(|(_, v)| v),
            Err(_) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        match self.find(key.to_key()) {
            Ok(i) => self.slots[i].as_mut().map(|(_, v)| v),
            Err(_) => None,
        }
    }

    /// Insert, returning the previous value if the key was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let k = key.to_key();
        match self.find(k) {
            Ok(i) => Some(std::mem::replace(
                self.slots[i].as_mut().map(|(_, v)| v).unwrap(),
                value,
            )),
            Err(i) => {
                if should_grow(self.len, self.slots.len()) {
                    self.grow();
                    let Err(j) = self.find(k) else {
                        unreachable!("key appeared during grow")
                    };
                    self.slots[j] = Some((k, value));
                } else {
                    self.slots[i] = Some((k, value));
                }
                self.len += 1;
                None
            }
        }
    }

    /// Entry-style upsert: the value for `key`, inserting `default()` first
    /// if absent.
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let k = key.to_key();
        let i = match self.find(k) {
            Ok(i) => i,
            Err(i) => {
                let i = if should_grow(self.len, self.slots.len()) {
                    self.grow();
                    let Err(j) = self.find(k) else {
                        unreachable!("key appeared during grow")
                    };
                    j
                } else {
                    i
                };
                self.slots[i] = Some((k, default()));
                self.len += 1;
                i
            }
        };
        self.slots[i].as_mut().map(|(_, v)| v).unwrap()
    }

    /// Remove a key, compacting the probe chain behind it (backward-shift
    /// deletion — no tombstones are ever left in the table).
    pub fn remove(&mut self, key: K) -> Option<V> {
        let Ok(mut hole) = self.find(key.to_key()) else {
            return None;
        };
        let (_, value) = self.slots[hole].take().unwrap();
        self.len -= 1;
        let mut i = (hole + 1) & self.mask;
        while let Some((k, _)) = &self.slots[i] {
            let ideal = (mix(*k) as usize) & self.mask;
            // The entry at `i` may move into the hole iff the hole lies
            // within its probe chain (between its ideal slot and `i`).
            let chain_len = i.wrapping_sub(ideal) & self.mask;
            let hole_dist = i.wrapping_sub(hole) & self.mask;
            if chain_len >= hole_dist {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
            i = (i + 1) & self.mask;
        }
        Some(value)
    }

    /// Drop every entry. O(capacity); not for per-attempt hot paths — that
    /// is what [`LineSet`]'s generation clear is for.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    /// Unordered (storage-order) iteration. **Not deterministic across
    /// insertion histories** — never feed this into metrics or message
    /// emission; use [`Self::sorted_keys`] or an order-insensitive fold.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (K::from_key(*k), v)))
    }

    /// Keys in ascending packed order — the deterministic drain path.
    pub fn sorted_keys(&self) -> Vec<K> {
        let mut keys: Vec<u64> = self
            .slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, _)| *k))
            .collect();
        keys.sort_unstable();
        keys.into_iter().map(K::from_key).collect()
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
        self.mask = new_cap - 1;
        for (k, v) in old.into_iter().flatten() {
            let Err(i) = self.find(k) else {
                unreachable!("duplicate key during grow")
            };
            self.slots[i] = Some((k, v));
        }
    }
}

/// Open-addressing set with O(1) generation clear.
///
/// Each slot carries a generation stamp; a slot is live only when its stamp
/// matches the set's current generation, so `clear` just bumps the
/// generation and every slot reads as empty. Built for state that is wiped
/// on every transaction attempt (read/write-set spill, per-attempt scratch)
/// where a `BTreeSet::clear` deallocates and a table-wide wipe is wasted
/// work.
#[derive(Clone, Debug)]
pub struct LineSet<K: LineKey> {
    keys: Vec<u64>,
    gens: Vec<u32>,
    gen: u32,
    len: usize,
    mask: usize,
    _key: std::marker::PhantomData<K>,
}

impl<K: LineKey> Default for LineSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: LineKey> LineSet<K> {
    pub fn new() -> Self {
        Self::with_pow2(MIN_CAPACITY)
    }

    pub fn with_capacity(entries: usize) -> Self {
        Self::with_pow2(capacity_for(entries))
    }

    fn with_pow2(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        Self {
            keys: vec![0; capacity],
            gens: vec![0; capacity],
            gen: 1,
            len: 0,
            mask: capacity - 1,
            _key: std::marker::PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn live(&self, i: usize) -> bool {
        self.gens[i] == self.gen
    }

    #[inline]
    fn find(&self, key: u64) -> Result<usize, usize> {
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            if !self.live(i) {
                return Err(i);
            }
            if self.keys[i] == key {
                return Ok(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    pub fn contains(&self, key: K) -> bool {
        self.find(key.to_key()).is_ok()
    }

    /// Insert; returns true when the key was newly added.
    pub fn insert(&mut self, key: K) -> bool {
        let k = key.to_key();
        match self.find(k) {
            Ok(_) => false,
            Err(i) => {
                let i = if should_grow(self.len, self.keys.len()) {
                    self.grow();
                    let Err(j) = self.find(k) else {
                        unreachable!("key appeared during grow")
                    };
                    j
                } else {
                    i
                };
                self.keys[i] = k;
                self.gens[i] = self.gen;
                self.len += 1;
                true
            }
        }
    }

    /// Remove with backward-shift compaction; returns true when present.
    pub fn remove(&mut self, key: K) -> bool {
        let Ok(mut hole) = self.find(key.to_key()) else {
            return false;
        };
        self.gens[hole] = self.gen.wrapping_sub(1);
        self.len -= 1;
        let mut i = (hole + 1) & self.mask;
        while self.live(i) {
            let ideal = (mix(self.keys[i]) as usize) & self.mask;
            let chain_len = i.wrapping_sub(ideal) & self.mask;
            let hole_dist = i.wrapping_sub(hole) & self.mask;
            if chain_len >= hole_dist {
                self.keys[hole] = self.keys[i];
                self.gens[hole] = self.gen;
                self.gens[i] = self.gen.wrapping_sub(1);
                hole = i;
            }
            i = (i + 1) & self.mask;
        }
        true
    }

    /// O(1) clear: bump the generation so every slot reads as empty. On the
    /// (astronomically rare) u32 wrap the stamp array is rewritten so stale
    /// slots can never alias the new generation.
    pub fn clear(&mut self) {
        self.len = 0;
        if self.gen == u32::MAX {
            self.gens.iter_mut().for_each(|g| *g = 0);
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// Unordered (storage-order) iteration — see the module determinism
    /// rule; use [`Self::sorted`] when order matters.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        (0..self.keys.len())
            .filter(move |&i| self.live(i))
            .map(move |i| K::from_key(self.keys[i]))
    }

    /// Members in ascending packed order — the deterministic drain path.
    pub fn sorted(&self) -> Vec<K> {
        let mut keys: Vec<u64> = (0..self.keys.len())
            .filter_map(|i| self.live(i).then_some(self.keys[i]))
            .collect();
        keys.sort_unstable();
        keys.into_iter().map(K::from_key).collect()
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_gens = std::mem::replace(&mut self.gens, vec![0; new_cap]);
        let old_gen = self.gen;
        self.mask = new_cap - 1;
        self.gen = 1;
        for (k, g) in old_keys.into_iter().zip(old_gens) {
            if g == old_gen {
                let Err(i) = self.find(k) else {
                    unreachable!("duplicate key during grow")
                };
                self.keys[i] = k;
                self.gens[i] = self.gen;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove_roundtrip() {
        let mut m: LineMap<LineAddr, u64> = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(LineAddr(5), 50), None);
        assert_eq!(m.insert(LineAddr(5), 55), Some(50));
        assert_eq!(m.get(LineAddr(5)), Some(&55));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(LineAddr(5)), Some(55));
        assert_eq!(m.remove(LineAddr(5)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn map_grows_past_initial_capacity() {
        let mut m: LineMap<u64, u64> = LineMap::new();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(i), Some(&(i * 2)), "lost key {i}");
        }
        assert!(m.capacity().is_power_of_two());
    }

    #[test]
    fn map_with_capacity_avoids_rehash() {
        let m: LineMap<u64, u8> = LineMap::with_capacity(100);
        let cap = m.capacity();
        let mut m = m;
        for i in 0..100 {
            m.insert(i, 0);
        }
        assert_eq!(m.capacity(), cap, "pre-sized map must not rehash");
    }

    #[test]
    fn map_backward_shift_keeps_probe_chains_intact() {
        // Force a dense cluster: many keys hashing near each other, then
        // remove from the middle and verify every survivor is still found.
        let mut m: LineMap<u64, u64> = LineMap::new();
        let keys: Vec<u64> = (0..64).map(|i| i * 8).collect();
        for &k in &keys {
            m.insert(k, k);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(k), Some(k));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&k), "chain broken for {k}");
            }
        }
    }

    #[test]
    fn map_get_or_insert_with() {
        let mut m: LineMap<LineAddr, u32> = LineMap::new();
        *m.get_or_insert_with(LineAddr(3), || 0) += 1;
        *m.get_or_insert_with(LineAddr(3), || 0) += 1;
        assert_eq!(m.get(LineAddr(3)), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_sorted_keys_is_ascending() {
        let mut m: LineMap<LineAddr, ()> = LineMap::new();
        for a in [9u64, 2, 140, 7, 3] {
            m.insert(LineAddr(a), ());
        }
        let keys: Vec<u64> = m.sorted_keys().into_iter().map(|a| a.0).collect();
        assert_eq!(keys, vec![2, 3, 7, 9, 140]);
    }

    #[test]
    fn set_insert_contains_remove() {
        let mut s: LineSet<LineAddr> = LineSet::new();
        assert!(s.insert(LineAddr(1)));
        assert!(!s.insert(LineAddr(1)));
        assert!(s.contains(LineAddr(1)));
        assert!(s.remove(LineAddr(1)));
        assert!(!s.remove(LineAddr(1)));
        assert!(!s.contains(LineAddr(1)));
    }

    #[test]
    fn set_generation_clear_is_complete() {
        let mut s: LineSet<u64> = LineSet::new();
        for i in 0..100 {
            s.insert(i);
        }
        let cap = s.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), cap, "clear must not shrink");
        for i in 0..100 {
            assert!(!s.contains(i), "stale member {i} survived clear");
        }
        // Reuse after clear works and does not resurrect stale slots.
        s.insert(7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.sorted(), vec![7]);
    }

    #[test]
    fn set_survives_many_clear_cycles() {
        let mut s: LineSet<u64> = LineSet::new();
        for round in 0..1000u64 {
            for i in 0..8 {
                s.insert(round * 17 + i);
            }
            assert_eq!(s.len(), 8);
            s.clear();
        }
        assert!(s.is_empty());
    }

    #[test]
    fn set_grow_preserves_only_live_members() {
        let mut s: LineSet<u64> = LineSet::new();
        for i in 0..4 {
            s.insert(i);
        }
        s.clear();
        for i in 100..200 {
            s.insert(i); // forces growth with stale slots present
        }
        assert_eq!(s.len(), 100);
        for i in 0..4 {
            assert!(!s.contains(i), "stale member resurrected by grow");
        }
        for i in 100..200 {
            assert!(s.contains(i));
        }
    }

    #[test]
    fn set_sorted_is_ascending() {
        let mut s: LineSet<LineAddr> = LineSet::new();
        for a in [9u64, 2, 140, 7] {
            s.insert(LineAddr(a));
        }
        let v: Vec<u64> = s.sorted().into_iter().map(|a| a.0).collect();
        assert_eq!(v, vec![2, 7, 9, 140]);
    }
}
