//! Deterministic event queue.
//!
//! A binary min-heap keyed by `(cycle, seq)` where `seq` is a monotonically
//! increasing insertion counter. Two events scheduled for the same cycle are
//! therefore delivered in the order they were scheduled, independent of the
//! payload type and of heap internals — the property that makes whole-system
//! runs bit-reproducible.

use crate::clock::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    cycle: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get the earliest event first.
        (other.cycle, other.seq).cmp(&(self.cycle, self.seq))
    }
}

/// Priority queue of simulation events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulated time: the cycle of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedule `payload` at absolute cycle `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to `now` so the simulation still makes forward progress, and
    /// debug builds assert.
    pub fn schedule_at(&mut self, at: Cycle, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let cycle = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            cycle,
            seq,
            payload,
        });
    }

    /// Schedule `payload` `delay` cycles from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: Cycle, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing the clock to its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.cycle >= self.now);
        self.now = entry.cycle;
        Some((entry.cycle, entry.payload))
    }

    /// Cycle of the earliest pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.cycle)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(1, 1u32);
        q.schedule_at(5, 5);
        assert_eq!(q.pop(), Some((1, 1)));
        q.schedule_at(3, 3);
        q.schedule_at(2, 2);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 5)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
