//! Deterministic event queue.
//!
//! The logical structure is a priority queue keyed by `(cycle, seq)` where
//! `seq` is a monotonically increasing insertion counter. Two events
//! scheduled for the same cycle are therefore delivered in the order they
//! were scheduled, independent of the payload type and of queue internals —
//! the property that makes whole-system runs bit-reproducible.
//!
//! Physically the queue is split in two, calendar-queue style, because the
//! simulator overwhelmingly schedules into the near future (`now+1` network
//! steps, small wake-up delays) and those schedules don't need heap
//! plumbing:
//!
//! - **Front buckets**: a ring of [`BUCKETS`] FIFO buckets covering cycles
//!   `[now, now + BUCKETS)`. Bucket `c % BUCKETS` holds events for exactly
//!   one cycle at a time (all queued cycles are `>= now`, and the window is
//!   exactly one period wide), so push and pop are O(1); a `u64` occupancy
//!   bitmask finds the earliest non-empty bucket without scanning.
//! - **Far heap**: a binary min-heap for events `>= now + BUCKETS` away.
//!   Entries are *not* migrated as `now` advances; instead every pop
//!   compares the earliest bucket entry with the heap front under the exact
//!   `(cycle, seq)` order, so an old far-future schedule and a fresh
//!   near-future one interleave precisely as a single heap would.

use crate::clock::Cycle;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Width of the near-future calendar window, in cycles. Must stay at 64 so
/// the occupancy bitmask fits one machine word.
const BUCKETS: u64 = 64;

#[derive(Clone)]
struct Entry<E> {
    cycle: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get the earliest event first.
        (other.cycle, other.seq).cmp(&(self.cycle, self.seq))
    }
}

/// Where the front event lives, so `pop` knows which store to drain.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FrontSource {
    Bucket,
    Heap,
    Token,
}

/// Priority queue of simulation events with deterministic tie-breaking.
#[derive(Clone)]
pub struct EventQueue<E> {
    /// Far-future events (cycle >= insertion-time `now + BUCKETS`).
    heap: BinaryHeap<Entry<E>>,
    /// Near-future ring: bucket `c % BUCKETS` holds `(seq, payload)` pairs
    /// for one cycle `c` in `[now, now + BUCKETS)`, in seq (FIFO) order.
    buckets: Vec<VecDeque<(u64, E)>>,
    /// Bit `b` set iff `buckets[b]` is non-empty.
    bucket_mask: u64,
    /// Total events across all buckets.
    bucket_len: usize,
    /// Singleton retimable event (see [`EventQueue::schedule_token`]):
    /// `(cycle, seq, payload)`. Competes with the stores above under the
    /// same `(cycle, seq)` order; popped at most once per arming.
    token: Option<(Cycle, u64, E)>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size the queue for a system of roughly `capacity` concurrently
    /// scheduled events (e.g. the node count): the far heap and each front
    /// bucket reserve enough to avoid rehashing growth in the hot loop.
    pub fn with_capacity(capacity: usize) -> Self {
        let per_bucket = capacity.div_ceil(4);
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            buckets: (0..BUCKETS as usize)
                .map(|_| VecDeque::with_capacity(per_bucket))
                .collect(),
            bucket_mask: 0,
            bucket_len: 0,
            token: None,
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulated time: the cycle of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Reset to the freshly constructed state (clock 0, seq 0, no pending
    /// events) while keeping the heap and per-bucket allocations, so a
    /// recycled queue behaves bit-identically to a new one without paying
    /// construction cost.
    pub fn reset(&mut self) {
        self.heap.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.bucket_mask = 0;
        self.bucket_len = 0;
        self.token = None;
        self.next_seq = 0;
        self.now = 0;
    }

    /// Schedule `payload` at absolute cycle `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to `now` so the simulation still makes forward progress, and
    /// debug builds assert.
    #[inline]
    pub fn schedule_at(&mut self, at: Cycle, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.schedule_at_clamped(at, payload);
    }

    /// [`EventQueue::schedule_at`] without the debug assertion: a past `at`
    /// is silently clamped to `now`. The documented release-mode behaviour,
    /// callable directly where clamping is intended (and testable in debug
    /// builds).
    pub fn schedule_at_clamped(&mut self, at: Cycle, payload: E) {
        let cycle = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if cycle - self.now < BUCKETS {
            let idx = (cycle % BUCKETS) as usize;
            self.buckets[idx].push_back((seq, payload));
            self.bucket_mask |= 1 << idx;
            self.bucket_len += 1;
        } else {
            self.heap.push(Entry {
                cycle,
                seq,
                payload,
            });
        }
    }

    /// Schedule `payload` `delay` cycles from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: Cycle, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Arm the queue's singleton *token* event at cycle `at`.
    ///
    /// The token is an ordinary event for ordering purposes — it takes a
    /// fresh seq number now and pops in exact `(cycle, seq)` order against
    /// everything else — but it lives in a dedicated slot so it can later be
    /// *retimed* ([`EventQueue::retime_token`]) without popping. The run
    /// loop uses it for the per-cycle network step: quiescent stretches are
    /// skipped by moving the token forward instead of popping a no-op per
    /// cycle. At most one token may be armed at a time.
    #[inline]
    pub fn schedule_token(&mut self, at: Cycle, payload: E) {
        debug_assert!(self.token.is_none(), "token already armed");
        debug_assert!(
            at >= self.now,
            "token scheduled in the past: {at} < {}",
            self.now
        );
        let cycle = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.token = Some((cycle, seq, payload));
    }

    /// Move the armed token to cycle `at`, keeping its payload but taking a
    /// fresh seq number — exactly as if it had been popped (as a no-op) and
    /// rescheduled at `at`. Panics in debug builds if no token is armed or
    /// `at` is in the past.
    #[inline]
    pub fn retime_token(&mut self, at: Cycle) {
        debug_assert!(
            at >= self.now,
            "token retimed into the past: {at} < {}",
            self.now
        );
        let slot = self.token.as_mut().expect("retime_token with no token");
        slot.0 = at.max(self.now);
        slot.1 = self.next_seq;
        self.next_seq += 1;
    }

    /// Cycle of the armed token, if any.
    #[inline]
    pub fn token_cycle(&self) -> Option<Cycle> {
        self.token.as_ref().map(|(c, _, _)| *c)
    }

    /// Cycle of the earliest pending *non-token* event, if any — what the
    /// queue front would be if the token were not armed. Used to pick the
    /// token's fast-forward target during network quiescence.
    #[inline]
    pub fn peek_cycle_ignoring_token(&self) -> Option<Cycle> {
        let bucket = self.front_bucket_cycle();
        let heap = self.heap.peek().map(|e| e.cycle);
        match (bucket, heap) {
            (Some(b), Some(h)) => Some(b.min(h)),
            (b, h) => b.or(h),
        }
    }

    /// Earliest bucket cycle `>= now`, if any bucket is occupied.
    #[inline]
    fn front_bucket_cycle(&self) -> Option<Cycle> {
        if self.bucket_mask == 0 {
            return None;
        }
        // Rotate the mask so bit 0 corresponds to `now`'s bucket; the first
        // set bit is then the distance to the earliest occupied cycle.
        let rot = self.bucket_mask.rotate_right((self.now % BUCKETS) as u32);
        Some(self.now + rot.trailing_zeros() as u64)
    }

    /// `(cycle, seq, source)` of the earliest pending event, if any.
    #[inline]
    fn front_key(&self) -> Option<(Cycle, u64, FrontSource)> {
        let bucket = self.front_bucket_cycle().map(|c| {
            let (seq, _) = self.buckets[(c % BUCKETS) as usize]
                .front()
                .expect("occupied bucket has a front");
            (c, *seq)
        });
        let heap = self.heap.peek().map(|e| (e.cycle, e.seq));
        let mut best = match (bucket, heap) {
            (Some((bc, bs)), Some((hc, hs))) => {
                if (bc, bs) < (hc, hs) {
                    Some((bc, bs, FrontSource::Bucket))
                } else {
                    Some((hc, hs, FrontSource::Heap))
                }
            }
            (Some((bc, bs)), None) => Some((bc, bs, FrontSource::Bucket)),
            (None, Some((hc, hs))) => Some((hc, hs, FrontSource::Heap)),
            (None, None) => None,
        };
        if let Some((tc, ts, _)) = &self.token {
            if best.is_none_or(|(c, s, _)| (*tc, *ts) < (c, s)) {
                best = Some((*tc, *ts, FrontSource::Token));
            }
        }
        best
    }

    /// Remove and return the front event from `source` (clock already
    /// advanced to its cycle by the caller).
    #[inline]
    fn take_front(&mut self, cycle: Cycle, source: FrontSource) -> E {
        match source {
            FrontSource::Bucket => {
                let idx = (cycle % BUCKETS) as usize;
                let (_, payload) = self.buckets[idx].pop_front().expect("front bucket entry");
                if self.buckets[idx].is_empty() {
                    self.bucket_mask &= !(1 << idx);
                }
                self.bucket_len -= 1;
                payload
            }
            FrontSource::Heap => self.heap.pop().expect("front heap entry").payload,
            FrontSource::Token => self.token.take().expect("front token entry").2,
        }
    }

    /// Pop the earliest event, advancing the clock to its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let (cycle, _, source) = self.front_key()?;
        debug_assert!(cycle >= self.now);
        self.now = cycle;
        let payload = self.take_front(cycle, source);
        Some((cycle, payload))
    }

    /// Pop *every* event scheduled for the earliest pending cycle into
    /// `out` (cleared first), in exact `(cycle, seq)` order, and advance the
    /// clock to that cycle. Returns the cycle, or `None` if the queue is
    /// empty. One call replaces a run of single [`EventQueue::pop`]s that a
    /// same-cycle batch would need — events scheduled *while the batch is
    /// being processed* land at later seq numbers and are picked up by the
    /// next call, exactly as they would be by one-at-a-time popping.
    pub fn pop_cycle_into(&mut self, out: &mut Vec<E>) -> Option<Cycle> {
        out.clear();
        let (cycle, _, _) = self.front_key()?;
        self.now = cycle;
        while let Some((c, _, source)) = self.front_key() {
            if c != cycle {
                break;
            }
            let payload = self.take_front(cycle, source);
            out.push(payload);
        }
        Some(cycle)
    }

    /// Cycle of the earliest pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.front_key().map(|(c, _, _)| c)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bucket_len == 0 && self.heap.is_empty() && self.token.is_none()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.bucket_len + self.heap.len() + usize::from(self.token.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(1, 1u32);
        q.schedule_at(5, 5);
        assert_eq!(q.pop(), Some((1, 1)));
        q.schedule_at(3, 3);
        q.schedule_at(2, 2);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 5)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_events_cross_into_the_bucket_window() {
        // Scheduled far (heap), popped after `now` has advanced to within
        // the bucket window — must interleave correctly with fresh
        // same-cycle bucket schedules by seq order.
        let mut q = EventQueue::new();
        q.schedule_at(1000, "far"); // heap (seq 0)
        q.schedule_at(1, "near");
        assert_eq!(q.pop(), Some((1, "near")));
        for c in 2..=999 {
            q.schedule_at(c, "tick");
            q.pop();
        }
        assert_eq!(q.now(), 999);
        q.schedule_at(1000, "bucketed"); // same cycle, later seq
        assert_eq!(q.pop(), Some((1000, "far")));
        assert_eq!(q.pop(), Some((1000, "bucketed")));
    }

    #[test]
    fn exact_bucket_window_boundary_goes_to_heap_and_still_pops_in_order() {
        let mut q = EventQueue::new();
        q.schedule_at(63, "in-window");
        q.schedule_at(64, "boundary"); // exactly now + BUCKETS -> heap
        q.schedule_at(65, "beyond");
        assert_eq!(q.pop(), Some((63, "in-window")));
        assert_eq!(q.pop(), Some((64, "boundary")));
        assert_eq!(q.pop(), Some((65, "beyond")));
    }

    #[test]
    fn pop_cycle_into_batches_exactly_one_cycle() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1u32);
        q.schedule_at(5, 2);
        q.schedule_at(200, 9); // far heap entry, different cycle
        q.schedule_at(5, 3);
        let mut out = vec![99]; // stale content must be cleared
        assert_eq!(q.pop_cycle_into(&mut out), Some(5));
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop_cycle_into(&mut out), Some(200));
        assert_eq!(out, vec![9]);
        assert_eq!(q.pop_cycle_into(&mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn pop_cycle_into_merges_heap_and_bucket_entries_by_seq() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "heap-first"); // seq 0, far -> heap
                                          // Advance to 50 so cycle 100 is now inside the bucket window.
        q.schedule_at(50, "mid");
        q.pop();
        q.schedule_at(100, "bucket-second"); // seq 2 -> bucket
        let mut out = Vec::new();
        assert_eq!(q.pop_cycle_into(&mut out), Some(100));
        assert_eq!(out, vec!["heap-first", "bucket-second"]);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "a");
        q.pop();
        q.schedule_at_clamped(3, "late"); // would assert via schedule_at
        assert_eq!(q.pop(), Some((10, "late")));
        assert_eq!(q.now(), 10);
    }

    #[test]
    fn reset_restores_fresh_behaviour() {
        let mut used = EventQueue::new();
        used.schedule_at(5, 1u64);
        used.schedule_at(500, 2); // far heap entry
        used.pop();
        used.reset();
        assert!(used.is_empty());
        assert_eq!(used.now(), 0);

        let mut fresh = EventQueue::new();
        for q in [&mut used, &mut fresh] {
            q.schedule_at(3, 10u64);
            q.schedule_at(3, 11);
            q.schedule_at(400, 12);
        }
        loop {
            let (x, y) = (used.pop(), fresh.pop());
            assert_eq!(x, y, "recycled queue must match fresh");
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn token_pops_in_cycle_seq_order_against_bucket_and_heap() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "bucket-before"); // seq 0
        q.schedule_token(5, "token"); // seq 1
        q.schedule_at(5, "bucket-after"); // seq 2
        q.schedule_at(500, "heap"); // seq 3, far -> heap
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((5, "bucket-before")));
        assert_eq!(q.pop(), Some((5, "token")));
        assert_eq!(q.token_cycle(), None, "popped token disarms the slot");
        assert_eq!(q.pop(), Some((5, "bucket-after")));
        assert_eq!(q.pop(), Some((500, "heap")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn token_alone_pops_and_can_be_rearmed() {
        let mut q = EventQueue::new();
        q.schedule_token(3, 30u32);
        assert!(!q.is_empty());
        assert_eq!(q.peek_cycle(), Some(3));
        assert_eq!(q.pop(), Some((3, 30)));
        assert!(q.is_empty());
        q.schedule_token(4, 40);
        assert_eq!(q.pop(), Some((4, 40)));
    }

    #[test]
    fn retimed_token_orders_like_a_fresh_schedule() {
        // Retiming must behave exactly as pop-and-reschedule: fresh seq, so
        // the token lands *after* events already queued for the new cycle
        // and *before* anything scheduled later.
        let mut q = EventQueue::new();
        q.schedule_token(1, "token");
        q.schedule_at(9, "early"); // seq 1, before the retime
        q.retime_token(9); // seq 2
        q.schedule_at(9, "late"); // seq 3
        assert_eq!(q.pop(), Some((9, "early")));
        assert_eq!(q.pop(), Some((9, "token")));
        assert_eq!(q.pop(), Some((9, "late")));
    }

    #[test]
    fn pop_cycle_into_includes_the_token() {
        let mut q = EventQueue::new();
        q.schedule_at(7, 1u32);
        q.schedule_token(7, 2);
        q.schedule_at(7, 3);
        q.schedule_at(8, 4);
        let mut out = Vec::new();
        assert_eq!(q.pop_cycle_into(&mut out), Some(7));
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(q.pop_cycle_into(&mut out), Some(8));
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn peek_cycle_ignoring_token_skips_only_the_token() {
        let mut q = EventQueue::<u32>::new();
        q.schedule_token(2, 0);
        assert_eq!(q.peek_cycle(), Some(2));
        assert_eq!(q.peek_cycle_ignoring_token(), None);
        q.schedule_at(10, 1);
        q.schedule_at(300, 2); // far -> heap
        assert_eq!(q.peek_cycle_ignoring_token(), Some(10));
        assert_eq!(q.peek_cycle(), Some(2));
    }

    #[test]
    fn reset_and_clone_carry_the_token_state() {
        let mut q = EventQueue::new();
        q.schedule_token(6, "t");
        let mut cloned = q.clone();
        assert_eq!(cloned.pop(), Some((6, "t")));
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.token_cycle(), None);
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        for i in 0..200u64 {
            a.schedule_at(i / 3, i);
            b.schedule_at(i / 3, i);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
