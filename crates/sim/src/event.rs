//! Deterministic event queue.
//!
//! The logical structure is a priority queue keyed by `(cycle, seq)` where
//! `seq` is a monotonically increasing insertion counter. Two events
//! scheduled for the same cycle are therefore delivered in the order they
//! were scheduled, independent of the payload type and of queue internals —
//! the property that makes whole-system runs bit-reproducible.
//!
//! Physically the queue is split in two, calendar-queue style, because the
//! simulator overwhelmingly schedules into the near future (`now+1` network
//! steps, small wake-up delays) and those schedules don't need heap
//! plumbing:
//!
//! - **Front buckets**: a ring of [`BUCKETS`] FIFO buckets covering cycles
//!   `[now, now + BUCKETS)`. Bucket `c % BUCKETS` holds events for exactly
//!   one cycle at a time (all queued cycles are `>= now`, and the window is
//!   exactly one period wide), so push and pop are O(1); a `u64` occupancy
//!   bitmask finds the earliest non-empty bucket without scanning.
//! - **Far heap**: a binary min-heap for events `>= now + BUCKETS` away.
//!   Entries are *not* migrated as `now` advances; instead every pop
//!   compares the earliest bucket entry with the heap front under the exact
//!   `(cycle, seq)` order, so an old far-future schedule and a fresh
//!   near-future one interleave precisely as a single heap would.

use crate::clock::Cycle;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Width of the near-future calendar window, in cycles. Must stay at 64 so
/// the occupancy bitmask fits one machine word.
const BUCKETS: u64 = 64;

#[derive(Clone)]
struct Entry<E> {
    cycle: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get the earliest event first.
        (other.cycle, other.seq).cmp(&(self.cycle, self.seq))
    }
}

/// Priority queue of simulation events with deterministic tie-breaking.
#[derive(Clone)]
pub struct EventQueue<E> {
    /// Far-future events (cycle >= insertion-time `now + BUCKETS`).
    heap: BinaryHeap<Entry<E>>,
    /// Near-future ring: bucket `c % BUCKETS` holds `(seq, payload)` pairs
    /// for one cycle `c` in `[now, now + BUCKETS)`, in seq (FIFO) order.
    buckets: Vec<VecDeque<(u64, E)>>,
    /// Bit `b` set iff `buckets[b]` is non-empty.
    bucket_mask: u64,
    /// Total events across all buckets.
    bucket_len: usize,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size the queue for a system of roughly `capacity` concurrently
    /// scheduled events (e.g. the node count): the far heap and each front
    /// bucket reserve enough to avoid rehashing growth in the hot loop.
    pub fn with_capacity(capacity: usize) -> Self {
        let per_bucket = capacity.div_ceil(4);
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            buckets: (0..BUCKETS as usize)
                .map(|_| VecDeque::with_capacity(per_bucket))
                .collect(),
            bucket_mask: 0,
            bucket_len: 0,
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulated time: the cycle of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Reset to the freshly constructed state (clock 0, seq 0, no pending
    /// events) while keeping the heap and per-bucket allocations, so a
    /// recycled queue behaves bit-identically to a new one without paying
    /// construction cost.
    pub fn reset(&mut self) {
        self.heap.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.bucket_mask = 0;
        self.bucket_len = 0;
        self.next_seq = 0;
        self.now = 0;
    }

    /// Schedule `payload` at absolute cycle `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to `now` so the simulation still makes forward progress, and
    /// debug builds assert.
    #[inline]
    pub fn schedule_at(&mut self, at: Cycle, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.schedule_at_clamped(at, payload);
    }

    /// [`EventQueue::schedule_at`] without the debug assertion: a past `at`
    /// is silently clamped to `now`. The documented release-mode behaviour,
    /// callable directly where clamping is intended (and testable in debug
    /// builds).
    pub fn schedule_at_clamped(&mut self, at: Cycle, payload: E) {
        let cycle = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if cycle - self.now < BUCKETS {
            let idx = (cycle % BUCKETS) as usize;
            self.buckets[idx].push_back((seq, payload));
            self.bucket_mask |= 1 << idx;
            self.bucket_len += 1;
        } else {
            self.heap.push(Entry {
                cycle,
                seq,
                payload,
            });
        }
    }

    /// Schedule `payload` `delay` cycles from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: Cycle, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Earliest bucket cycle `>= now`, if any bucket is occupied.
    #[inline]
    fn front_bucket_cycle(&self) -> Option<Cycle> {
        if self.bucket_mask == 0 {
            return None;
        }
        // Rotate the mask so bit 0 corresponds to `now`'s bucket; the first
        // set bit is then the distance to the earliest occupied cycle.
        let rot = self.bucket_mask.rotate_right((self.now % BUCKETS) as u32);
        Some(self.now + rot.trailing_zeros() as u64)
    }

    /// `(cycle, seq)` of the earliest pending event, if any.
    #[inline]
    fn front_key(&self) -> Option<(Cycle, u64, bool)> {
        let bucket = self.front_bucket_cycle().map(|c| {
            let (seq, _) = self.buckets[(c % BUCKETS) as usize]
                .front()
                .expect("occupied bucket has a front");
            (c, *seq)
        });
        let heap = self.heap.peek().map(|e| (e.cycle, e.seq));
        match (bucket, heap) {
            (Some((bc, bs)), Some((hc, hs))) => {
                if (bc, bs) < (hc, hs) {
                    Some((bc, bs, true))
                } else {
                    Some((hc, hs, false))
                }
            }
            (Some((bc, bs)), None) => Some((bc, bs, true)),
            (None, Some((hc, hs))) => Some((hc, hs, false)),
            (None, None) => None,
        }
    }

    /// Pop the earliest event, advancing the clock to its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let (cycle, _, from_bucket) = self.front_key()?;
        debug_assert!(cycle >= self.now);
        self.now = cycle;
        let payload = if from_bucket {
            let idx = (cycle % BUCKETS) as usize;
            let (_, payload) = self.buckets[idx].pop_front().expect("front bucket entry");
            if self.buckets[idx].is_empty() {
                self.bucket_mask &= !(1 << idx);
            }
            self.bucket_len -= 1;
            payload
        } else {
            self.heap.pop().expect("front heap entry").payload
        };
        Some((cycle, payload))
    }

    /// Pop *every* event scheduled for the earliest pending cycle into
    /// `out` (cleared first), in exact `(cycle, seq)` order, and advance the
    /// clock to that cycle. Returns the cycle, or `None` if the queue is
    /// empty. One call replaces a run of single [`EventQueue::pop`]s that a
    /// same-cycle batch would need — events scheduled *while the batch is
    /// being processed* land at later seq numbers and are picked up by the
    /// next call, exactly as they would be by one-at-a-time popping.
    pub fn pop_cycle_into(&mut self, out: &mut Vec<E>) -> Option<Cycle> {
        out.clear();
        let (cycle, _, _) = self.front_key()?;
        self.now = cycle;
        while let Some((c, _, from_bucket)) = self.front_key() {
            if c != cycle {
                break;
            }
            if from_bucket {
                let idx = (cycle % BUCKETS) as usize;
                let (_, payload) = self.buckets[idx].pop_front().expect("front bucket entry");
                if self.buckets[idx].is_empty() {
                    self.bucket_mask &= !(1 << idx);
                }
                self.bucket_len -= 1;
                out.push(payload);
            } else {
                out.push(self.heap.pop().expect("front heap entry").payload);
            }
        }
        Some(cycle)
    }

    /// Cycle of the earliest pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.front_key().map(|(c, _, _)| c)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bucket_len == 0 && self.heap.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.bucket_len + self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(1, 1u32);
        q.schedule_at(5, 5);
        assert_eq!(q.pop(), Some((1, 1)));
        q.schedule_at(3, 3);
        q.schedule_at(2, 2);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 5)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_events_cross_into_the_bucket_window() {
        // Scheduled far (heap), popped after `now` has advanced to within
        // the bucket window — must interleave correctly with fresh
        // same-cycle bucket schedules by seq order.
        let mut q = EventQueue::new();
        q.schedule_at(1000, "far"); // heap (seq 0)
        q.schedule_at(1, "near");
        assert_eq!(q.pop(), Some((1, "near")));
        for c in 2..=999 {
            q.schedule_at(c, "tick");
            q.pop();
        }
        assert_eq!(q.now(), 999);
        q.schedule_at(1000, "bucketed"); // same cycle, later seq
        assert_eq!(q.pop(), Some((1000, "far")));
        assert_eq!(q.pop(), Some((1000, "bucketed")));
    }

    #[test]
    fn exact_bucket_window_boundary_goes_to_heap_and_still_pops_in_order() {
        let mut q = EventQueue::new();
        q.schedule_at(63, "in-window");
        q.schedule_at(64, "boundary"); // exactly now + BUCKETS -> heap
        q.schedule_at(65, "beyond");
        assert_eq!(q.pop(), Some((63, "in-window")));
        assert_eq!(q.pop(), Some((64, "boundary")));
        assert_eq!(q.pop(), Some((65, "beyond")));
    }

    #[test]
    fn pop_cycle_into_batches_exactly_one_cycle() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1u32);
        q.schedule_at(5, 2);
        q.schedule_at(200, 9); // far heap entry, different cycle
        q.schedule_at(5, 3);
        let mut out = vec![99]; // stale content must be cleared
        assert_eq!(q.pop_cycle_into(&mut out), Some(5));
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop_cycle_into(&mut out), Some(200));
        assert_eq!(out, vec![9]);
        assert_eq!(q.pop_cycle_into(&mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn pop_cycle_into_merges_heap_and_bucket_entries_by_seq() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "heap-first"); // seq 0, far -> heap
                                          // Advance to 50 so cycle 100 is now inside the bucket window.
        q.schedule_at(50, "mid");
        q.pop();
        q.schedule_at(100, "bucket-second"); // seq 2 -> bucket
        let mut out = Vec::new();
        assert_eq!(q.pop_cycle_into(&mut out), Some(100));
        assert_eq!(out, vec!["heap-first", "bucket-second"]);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "a");
        q.pop();
        q.schedule_at_clamped(3, "late"); // would assert via schedule_at
        assert_eq!(q.pop(), Some((10, "late")));
        assert_eq!(q.now(), 10);
    }

    #[test]
    fn reset_restores_fresh_behaviour() {
        let mut used = EventQueue::new();
        used.schedule_at(5, 1u64);
        used.schedule_at(500, 2); // far heap entry
        used.pop();
        used.reset();
        assert!(used.is_empty());
        assert_eq!(used.now(), 0);

        let mut fresh = EventQueue::new();
        for q in [&mut used, &mut fresh] {
            q.schedule_at(3, 10u64);
            q.schedule_at(3, 11);
            q.schedule_at(400, 12);
        }
        loop {
            let (x, y) = (used.pop(), fresh.pop());
            assert_eq!(x, y, "recycled queue must match fresh");
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        for i in 0..200u64 {
            a.schedule_at(i / 3, i);
            b.schedule_at(i / 3, i);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
