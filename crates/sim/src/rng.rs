//! Seedable, stable pseudo-random number generator.
//!
//! The simulator implements its own small generator — `xoshiro256**` seeded
//! through `SplitMix64` — instead of depending on `rand`'s default engines so
//! that experiment outputs can never change under us when a dependency bumps
//! its algorithm. The workload crates layer distribution helpers (ranges,
//! geometric, Zipf) on top.

/// `xoshiro256**` generator with `SplitMix64` seeding.
///
/// Period 2^256 - 1; passes BigCrush; four words of state. Plenty for
/// workload generation and randomized backoff modeling.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Identical seeds always yield
    /// identical streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derive an independent stream for a sub-component (e.g. per node).
    ///
    /// Mixing the label through SplitMix64 keeps sibling streams decorrelated
    /// even for adjacent labels.
    pub fn derive(&self, label: u64) -> Self {
        let mut sm = self.s[0]
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(label.wrapping_mul(0x9FB2_1C65_1E98_DF25));
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.gen_range(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 top bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Geometric-ish positive sample with mean approximately `mean`
    /// (exponential, rounded up). Used for think-time and transaction body
    /// length dispersion.
    pub fn gen_geometric(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let u = self.gen_f64().max(1e-12);
        (-mean * u.ln()).ceil() as u64
    }

    /// Zipf-distributed sample in `[0, n)` with exponent `theta` (0 =
    /// uniform; ~0.8-1.2 models skewed hot-spot sharing).
    ///
    /// Convenience wrapper that rebuilds the distribution constants on every
    /// call; loops should hoist a [`ZipfSampler`] instead (identical bits,
    /// without re-deriving the O(n) harmonic sum per sample).
    pub fn gen_zipf(&mut self, n: u64, theta: f64) -> u64 {
        ZipfSampler::new(n, theta).sample(self)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        for i in (1..n).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Pick one element uniformly.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty());
        &items[self.gen_range(items.len() as u64) as usize]
    }
}

/// Precomputed Zipf distribution over `[0, n)` with exponent `theta` —
/// the rejection-free approximation of Gray et al., with the generalized
/// harmonic constants derived once at construction. Sampling through this
/// struct is bit-identical to [`SimRng::gen_zipf`] (same arithmetic, same
/// single `gen_f64` draw) but O(1) per sample instead of O(n).
#[derive(Clone, Copy, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl ZipfSampler {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        if theta <= 0.0 {
            // Uniform: the constants are unused.
            return Self {
                n,
                theta,
                alpha: 0.0,
                zetan: 0.0,
                eta: 0.0,
                half_pow_theta: 0.0,
            };
        }
        // Inverse transform on the generalized harmonic CDF via the
        // standard two-constant approximation.
        let alpha = 1.0 / (1.0 - theta);
        let zetan = zeta(n, theta);
        let eta = (1.0 - (2.0f64 / n as f64).powf(1.0 - theta)) / (1.0 - zeta(2, theta) / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.theta <= 0.0 {
            return rng.gen_range(self.n);
        }
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let v = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for the small n used in unit tests; for large n the partial sum
    // converges quickly for theta < 1 relative to our accuracy needs, and
    // [`ZipfSampler`] evaluates it once per distribution, not per sample.
    let n = n.min(10_000);
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_decorrelated() {
        let root = SimRng::new(7);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut rng = SimRng::new(4);
        for _ in 0..100 {
            let v = rng.gen_range_inclusive(10, 12);
            assert!((10..=12).contains(&v));
        }
        assert_eq!(rng.gen_range_inclusive(5, 5), 5);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = SimRng::new(6);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.gen_geometric(50.0)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 50.0).abs() < 3.0,
            "geometric mean {mean} too far from 50"
        );
    }

    #[test]
    fn zipf_is_skewed_toward_small_indices() {
        let mut rng = SimRng::new(8);
        let mut hits = [0u64; 16];
        for _ in 0..20_000 {
            let v = rng.gen_zipf(16, 0.99);
            hits[v as usize] += 1;
        }
        assert!(
            hits[0] > hits[8] * 3,
            "zipf head {} tail {}",
            hits[0],
            hits[8]
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut rng = SimRng::new(9);
        let mut hits = [0u64; 4];
        for _ in 0..8000 {
            hits[rng.gen_zipf(4, 0.0) as usize] += 1;
        }
        for &h in &hits {
            assert!((1500..2500).contains(&h), "bucket {h} not uniform");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(10);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "shuffle should move things");
    }
}
