//! # puno-sim
//!
//! Deterministic discrete-event simulation kernel used by every other crate in
//! the PUNO reproduction.
//!
//! The kernel is intentionally minimal: a cycle-resolution clock, an event
//! queue with a *total* deterministic ordering (ties broken by insertion
//! sequence number), a seedable pseudo-random number generator with a stable
//! algorithm (`SplitMix64` seeding a `xoshiro256**` core), and the statistics
//! containers (counters, histograms, running means, EWMAs) shared by the
//! coherence, HTM, NoC and harness crates.
//!
//! Architecture simulators live and die by reproducibility: the same seed and
//! configuration must produce bit-identical metrics on every run and every
//! machine. Everything in this crate is therefore free of `HashMap` iteration
//! order, wall-clock time, and platform-dependent floating point (statistics
//! accumulate in integers wherever the experiment pipeline compares values).

pub mod clock;
pub mod event;
pub mod fault;
pub mod ids;
pub mod linemap;
pub mod rng;
pub mod stats;
pub mod trace;

pub use clock::{Cycle, Cycles};
pub use event::EventQueue;
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultStats};
pub use ids::{LineAddr, NodeId, StaticTxId, Timestamp, TxId};
pub use linemap::{LineKey, LineMap, LineSet};
pub use rng::{SimRng, ZipfSampler};
pub use stats::{Counter, Ewma, Histogram, RunningStats};
pub use trace::{
    AbortCauseCode, ChannelMask, CohMsgKind, DirLineState, TraceChannel, TraceConfig, TraceEvent,
    TraceRecord, TraceRing, Tracer,
};
