//! Bounded event tracing.
//!
//! A fixed-capacity ring of timestamped, formatted trace records. Tracing
//! is off by default (zero cost beyond a branch); when enabled the last N
//! events survive, which is what you want when a protocol assertion fires
//! two hundred million cycles into a run.

use crate::clock::Cycle;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Ring buffer of trace records.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    enabled: bool,
    records: VecDeque<(Cycle, String)>,
    dropped: u64,
}

impl TraceRing {
    /// A disabled ring (records are discarded without formatting).
    pub fn disabled() -> Self {
        Self {
            capacity: 0,
            enabled: false,
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled ring keeping the last `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            enabled: true,
            records: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event. The closure is only evaluated when tracing is on,
    /// so callers can pass format-heavy lambdas freely.
    #[inline]
    pub fn record(&mut self, now: Cycle, f: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back((now, f()));
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained window, oldest first.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier records dropped ...", self.dropped);
        }
        for (cycle, msg) in &self.records {
            let _ = writeln!(out, "[{cycle:>10}] {msg}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn disabled_ring_never_evaluates_the_closure() {
        let mut ring = TraceRing::disabled();
        let evaluated = Cell::new(false);
        ring.record(5, || {
            evaluated.set(true);
            "x".into()
        });
        assert!(!evaluated.get());
        assert!(ring.is_empty());
    }

    #[test]
    fn keeps_only_the_last_n() {
        let mut ring = TraceRing::enabled(3);
        for i in 0..10u64 {
            ring.record(i, || format!("event {i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let dump = ring.dump();
        assert!(dump.contains("event 9"));
        assert!(dump.contains("event 7"));
        assert!(!dump.contains("event 6"));
        assert!(dump.contains("7 earlier records dropped"));
    }

    #[test]
    fn dump_is_ordered_and_timestamped() {
        let mut ring = TraceRing::enabled(8);
        ring.record(100, || "first".into());
        ring.record(200, || "second".into());
        let dump = ring.dump();
        let first = dump.find("first").unwrap();
        let second = dump.find("second").unwrap();
        assert!(first < second);
        assert!(dump.contains("[       100]"));
    }
}
