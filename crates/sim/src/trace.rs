//! Typed, channel-filtered event tracing.
//!
//! Every observable protocol action is a [`TraceEvent`] tagged with a
//! [`TraceChannel`]. A [`Tracer`] filters events through a [`ChannelMask`]
//! (selectable at runtime via `PUNO_TRACE=htm,coh,...`) and fans the
//! survivors out to two sinks:
//!
//! * a bounded [`TraceRing`] keeping the last N events (what you want when
//!   a protocol assertion fires two hundred million cycles into a run —
//!   the ring still feeds `RunError` deadlock/livelock dumps), and
//! * an optional streaming JSONL writer, one [`TraceRecord`] per line,
//!   which the `trace_export` tool turns into a Chrome-trace timeline.
//!
//! Tracing is off by default and must stay zero-cost when off: emission
//! sites check the mask *before* constructing an event, so a disabled
//! tracer costs one branch per site.

use crate::clock::{Cycle, Cycles};
use crate::fault::FaultKind;
use crate::ids::{LineAddr, NodeId, StaticTxId, Timestamp, TxId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Default ring capacity for environment-enabled tracing.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Event channels, selectable independently via [`ChannelMask`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceChannel {
    /// Transaction lifecycle: begin/commit/abort/stall/nack-sent.
    Htm,
    /// Coherence messages entering and leaving nodes.
    Coh,
    /// Directory-side activity: transitions, delayed sends, memory fetches.
    Dir,
    /// Network fabric: injections and deliveries with vnet/flit detail.
    Noc,
    /// Unicast predictor decisions and misprediction feedback.
    Pred,
    /// Fault injections actually firing.
    Fault,
}

impl TraceChannel {
    pub const ALL: [TraceChannel; 6] = [
        TraceChannel::Htm,
        TraceChannel::Coh,
        TraceChannel::Dir,
        TraceChannel::Noc,
        TraceChannel::Pred,
        TraceChannel::Fault,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TraceChannel::Htm => "htm",
            TraceChannel::Coh => "coh",
            TraceChannel::Dir => "dir",
            TraceChannel::Noc => "noc",
            TraceChannel::Pred => "pred",
            TraceChannel::Fault => "fault",
        }
    }

    #[inline]
    pub fn index(self) -> usize {
        match self {
            TraceChannel::Htm => 0,
            TraceChannel::Coh => 1,
            TraceChannel::Dir => 2,
            TraceChannel::Noc => 3,
            TraceChannel::Pred => 4,
            TraceChannel::Fault => 5,
        }
    }

    #[inline]
    fn bit(self) -> u32 {
        1 << self.index()
    }
}

/// A set of [`TraceChannel`]s, encoded as a bitmask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ChannelMask(u32);

impl ChannelMask {
    pub const NONE: ChannelMask = ChannelMask(0);
    pub const ALL: ChannelMask = ChannelMask((1 << TraceChannel::ALL.len()) - 1);

    #[inline]
    pub fn contains(self, ch: TraceChannel) -> bool {
        self.0 & ch.bit() != 0
    }

    #[must_use]
    pub fn with(self, ch: TraceChannel) -> Self {
        ChannelMask(self.0 | ch.bit())
    }

    #[must_use]
    pub fn union(self, other: ChannelMask) -> Self {
        ChannelMask(self.0 | other.0)
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Channels in the mask, in canonical order.
    pub fn channels(self) -> impl Iterator<Item = TraceChannel> {
        TraceChannel::ALL
            .into_iter()
            .filter(move |c| self.contains(*c))
    }

    /// Canonical comma-separated spec (`"htm,coh"`); `"off"` when empty.
    pub fn spec(self) -> String {
        if self.is_empty() {
            return "off".to_string();
        }
        let names: Vec<&str> = self.channels().map(|c| c.name()).collect();
        names.join(",")
    }

    /// Parse a `PUNO_TRACE`-style spec: a comma-separated channel list
    /// (`"htm,coh"`), `"all"`/`"1"`/`"on"` for everything, or
    /// `""`/`"0"`/`"off"`/`"none"` for nothing.
    pub fn parse(spec: &str) -> Result<ChannelMask, String> {
        let spec = spec.trim();
        match spec.to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" => return Ok(ChannelMask::NONE),
            "1" | "on" | "all" => return Ok(ChannelMask::ALL),
            _ => {}
        }
        let mut mask = ChannelMask::NONE;
        for token in spec.split(',') {
            let token = token.trim().to_ascii_lowercase();
            if token.is_empty() {
                continue;
            }
            let ch = TraceChannel::ALL
                .into_iter()
                .find(|c| c.name() == token)
                .ok_or_else(|| {
                    let valid: Vec<&str> = TraceChannel::ALL.iter().map(|c| c.name()).collect();
                    format!(
                        "unknown trace channel {token:?} (valid: {}, all, off)",
                        valid.join(", ")
                    )
                })?;
            mask = mask.with(ch);
        }
        Ok(mask)
    }
}

/// Coherence message kinds, mirrored here so [`TraceEvent`] can name them
/// without a dependency on the coherence crate (which depends on this one).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CohMsgKind {
    Gets,
    Getx,
    Putx,
    Puts,
    FwdGets,
    FwdGetx,
    Inv,
    Data,
    UpgradeAck,
    Ack,
    Nack,
    Unblock,
    WbAck,
    WakeupHint,
    WbData,
}

/// Abort causes, mirrored from `puno_htm::AbortCause` for the same
/// layering reason as [`CohMsgKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortCauseCode {
    TxWriteInvalidation,
    TxReadConflict,
    NonTxConflict,
    Capacity,
    Injected,
}

/// Coarse directory line state, mirrored from the directory's (private)
/// stable states for the `DirState` transition event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirLineState {
    Uncached,
    Shared,
    Owned,
}

/// One traced protocol action. Everything is `Copy` so the ring can retain
/// events without allocation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A coherence message leaves `src` for `dst` (logical send time,
    /// before any fault jitter).
    CohSend {
        src: NodeId,
        dst: NodeId,
        kind: CohMsgKind,
        addr: LineAddr,
    },
    /// A coherence message is delivered to `dst`.
    CohRecv {
        dst: NodeId,
        kind: CohMsgKind,
        addr: LineAddr,
    },
    /// Directory state after handling `kind` for `addr` at `home`
    /// (`busy` marks an in-flight service episode).
    DirState {
        home: NodeId,
        kind: CohMsgKind,
        addr: LineAddr,
        state: DirLineState,
        busy: bool,
    },
    /// The directory scheduled a send `delay` cycles out (L2/dir access,
    /// P-Buffer decision latency).
    DirSend {
        home: NodeId,
        dst: NodeId,
        kind: CohMsgKind,
        addr: LineAddr,
        delay: Cycles,
    },
    /// Off-chip fetch started at `home` for `addr`.
    DirFetchMem {
        home: NodeId,
        addr: LineAddr,
        delay: Cycles,
    },
    /// TX_BEGIN (attempt = prior consecutive aborts of this instance).
    HtmBegin {
        node: NodeId,
        tx: TxId,
        static_tx: StaticTxId,
        timestamp: Timestamp,
        attempt: u32,
    },
    /// TX_END: the attempt committed after `length` wall cycles.
    HtmCommit {
        node: NodeId,
        tx: TxId,
        length: Cycles,
    },
    /// A nacked episode concluded; the node backs off for `backoff` cycles
    /// before retrying `addr`.
    HtmStall {
        node: NodeId,
        addr: LineAddr,
        backoff: Cycles,
    },
    /// This node refused a forwarded request from `requester`.
    HtmNackSent {
        node: NodeId,
        requester: NodeId,
        addr: LineAddr,
        notified: bool,
        mispredict: bool,
    },
    /// The running transaction aborted. `by`/`addr` name the requesting
    /// aborter node and conflicting line for conflict aborts (`None` for
    /// injected faults); `discarded` is the execution effort thrown away.
    HtmAbort {
        node: NodeId,
        tx: TxId,
        cause: AbortCauseCode,
        by: Option<NodeId>,
        addr: Option<LineAddr>,
        discarded: Cycles,
    },
    /// PUNO predicted a single target: the home unicasts instead of
    /// multicasting.
    PredUnicast {
        home: NodeId,
        addr: LineAddr,
        target: NodeId,
    },
    /// Misprediction feedback (MP-bit) arrived at the home.
    PredMispredict {
        home: NodeId,
        addr: LineAddr,
        node: NodeId,
    },
    /// A message entered the fabric.
    NocInject {
        src: NodeId,
        dst: NodeId,
        vnet: u8,
        flits: u32,
    },
    /// A message left the fabric at `dst`.
    NocDeliver { dst: NodeId, vnet: u8, flits: u32 },
    /// A fault fired at its hook point.
    FaultFired {
        kind: FaultKind,
        node: NodeId,
        magnitude: Cycles,
    },
}

impl TraceEvent {
    /// The channel this event belongs to.
    pub fn channel(&self) -> TraceChannel {
        match self {
            TraceEvent::CohSend { .. } | TraceEvent::CohRecv { .. } => TraceChannel::Coh,
            TraceEvent::DirState { .. }
            | TraceEvent::DirSend { .. }
            | TraceEvent::DirFetchMem { .. } => TraceChannel::Dir,
            TraceEvent::HtmBegin { .. }
            | TraceEvent::HtmCommit { .. }
            | TraceEvent::HtmStall { .. }
            | TraceEvent::HtmNackSent { .. }
            | TraceEvent::HtmAbort { .. } => TraceChannel::Htm,
            TraceEvent::PredUnicast { .. } | TraceEvent::PredMispredict { .. } => {
                TraceChannel::Pred
            }
            TraceEvent::NocInject { .. } | TraceEvent::NocDeliver { .. } => TraceChannel::Noc,
            TraceEvent::FaultFired { .. } => TraceChannel::Fault,
        }
    }

    /// Short event name (Chrome-trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::CohSend { .. } => "coh_send",
            TraceEvent::CohRecv { .. } => "coh_recv",
            TraceEvent::DirState { .. } => "dir_state",
            TraceEvent::DirSend { .. } => "dir_send",
            TraceEvent::DirFetchMem { .. } => "dir_fetch_mem",
            TraceEvent::HtmBegin { .. } => "tx_begin",
            TraceEvent::HtmCommit { .. } => "tx_commit",
            TraceEvent::HtmStall { .. } => "tx_stall",
            TraceEvent::HtmNackSent { .. } => "nack_sent",
            TraceEvent::HtmAbort { .. } => "tx_abort",
            TraceEvent::PredUnicast { .. } => "pred_unicast",
            TraceEvent::PredMispredict { .. } => "pred_mispredict",
            TraceEvent::NocInject { .. } => "noc_inject",
            TraceEvent::NocDeliver { .. } => "noc_deliver",
            TraceEvent::FaultFired { .. } => "fault",
        }
    }

    /// The node this event is primarily *about* (Chrome-trace `pid`).
    pub fn node(&self) -> NodeId {
        match *self {
            TraceEvent::CohSend { src, .. } => src,
            TraceEvent::CohRecv { dst, .. } => dst,
            TraceEvent::DirState { home, .. }
            | TraceEvent::DirSend { home, .. }
            | TraceEvent::DirFetchMem { home, .. } => home,
            TraceEvent::HtmBegin { node, .. }
            | TraceEvent::HtmCommit { node, .. }
            | TraceEvent::HtmStall { node, .. }
            | TraceEvent::HtmNackSent { node, .. }
            | TraceEvent::HtmAbort { node, .. } => node,
            TraceEvent::PredUnicast { home, .. } | TraceEvent::PredMispredict { home, .. } => home,
            TraceEvent::NocInject { src, .. } => src,
            TraceEvent::NocDeliver { dst, .. } => dst,
            TraceEvent::FaultFired { node, .. } => node,
        }
    }

    /// The memory line involved, when the event concerns one.
    pub fn addr(&self) -> Option<LineAddr> {
        match *self {
            TraceEvent::CohSend { addr, .. }
            | TraceEvent::CohRecv { addr, .. }
            | TraceEvent::DirState { addr, .. }
            | TraceEvent::DirSend { addr, .. }
            | TraceEvent::DirFetchMem { addr, .. }
            | TraceEvent::HtmStall { addr, .. }
            | TraceEvent::HtmNackSent { addr, .. }
            | TraceEvent::PredUnicast { addr, .. }
            | TraceEvent::PredMispredict { addr, .. } => Some(addr),
            TraceEvent::HtmAbort { addr, .. } => addr,
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::CohSend {
                src,
                dst,
                kind,
                addr,
            } => {
                write!(f, "{src:?} -> {dst:?} {kind:?} {addr:?}")
            }
            TraceEvent::CohRecv { dst, kind, addr } => {
                write!(f, "-> {dst:?}: {kind:?} {addr:?}")
            }
            TraceEvent::DirState {
                home,
                kind,
                addr,
                state,
                busy,
            } => {
                write!(
                    f,
                    "dir {home:?} {addr:?} after {kind:?}: {state:?}{}",
                    if busy { " (busy)" } else { "" }
                )
            }
            TraceEvent::DirSend {
                home,
                dst,
                kind,
                addr,
                delay,
            } => {
                write!(f, "dir {home:?} -> {dst:?} {kind:?} {addr:?} (+{delay})")
            }
            TraceEvent::DirFetchMem { home, addr, delay } => {
                write!(f, "dir {home:?} fetch {addr:?} (+{delay})")
            }
            TraceEvent::HtmBegin {
                node,
                tx,
                static_tx,
                timestamp,
                attempt,
            } => {
                write!(
                    f,
                    "{node:?} begin {tx:?} {static_tx:?} {timestamp:?} attempt {attempt}"
                )
            }
            TraceEvent::HtmCommit { node, tx, length } => {
                write!(f, "{node:?} commit {tx:?} after {length} cycles")
            }
            TraceEvent::HtmStall {
                node,
                addr,
                backoff,
            } => {
                write!(f, "{node:?} stall on {addr:?} for {backoff} cycles")
            }
            TraceEvent::HtmNackSent {
                node,
                requester,
                addr,
                notified,
                mispredict,
            } => {
                write!(
                    f,
                    "{node:?} nacks {requester:?} on {addr:?}{}{}",
                    if notified { " (notified)" } else { "" },
                    if mispredict { " (mp)" } else { "" }
                )
            }
            TraceEvent::HtmAbort {
                node,
                tx,
                cause,
                by,
                addr,
                discarded,
            } => {
                write!(f, "{node:?} abort {tx:?} cause {cause:?}")?;
                if let (Some(by), Some(addr)) = (by, addr) {
                    write!(f, " by {by:?} on {addr:?}")?;
                }
                write!(f, " discarding {discarded} cycles")
            }
            TraceEvent::PredUnicast { home, addr, target } => {
                write!(f, "pred {home:?} unicasts {addr:?} to {target:?}")
            }
            TraceEvent::PredMispredict { home, addr, node } => {
                write!(f, "pred {home:?} mispredicted {node:?} on {addr:?}")
            }
            TraceEvent::NocInject {
                src,
                dst,
                vnet,
                flits,
            } => {
                write!(f, "noc {src:?} -> {dst:?} vnet {vnet} ({flits} flits)")
            }
            TraceEvent::NocDeliver { dst, vnet, flits } => {
                write!(f, "noc deliver -> {dst:?} vnet {vnet} ({flits} flits)")
            }
            TraceEvent::FaultFired {
                kind,
                node,
                magnitude,
            } => {
                write!(f, "fault {kind:?} at {node:?} magnitude {magnitude}")
            }
        }
    }
}

/// One line of a JSONL trace stream.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    pub cycle: Cycle,
    pub channel: TraceChannel,
    pub event: TraceEvent,
}

/// Bounded ring of typed trace records.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    enabled: bool,
    records: VecDeque<(Cycle, TraceEvent)>,
    dropped: u64,
}

impl TraceRing {
    /// A disabled ring (records are discarded).
    pub fn disabled() -> Self {
        Self {
            capacity: 0,
            enabled: false,
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled ring keeping the last `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            enabled: true,
            records: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event, evicting the oldest when full.
    #[inline]
    pub fn record(&mut self, now: Cycle, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back((now, event));
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &(Cycle, TraceEvent)> {
        self.records.iter()
    }

    /// Render the retained window, oldest first. The header makes a
    /// truncated trace self-describing: ring capacity, records retained,
    /// and how many earlier records were dropped.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if !self.enabled {
            return out;
        }
        let _ = writeln!(
            out,
            "trace ring: capacity {}, retained {}, dropped {}",
            self.capacity,
            self.records.len(),
            self.dropped
        );
        for (cycle, event) in &self.records {
            let _ = writeln!(out, "[{cycle:>10}] {event}");
        }
        out
    }
}

/// Streaming JSONL sink. Write errors are reported once and disable the
/// sink; they never fail the simulation.
#[derive(Debug)]
struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
    lines: u64,
    failed: bool,
}

impl JsonlSink {
    fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            out: std::io::BufWriter::new(file),
            path: path.to_path_buf(),
            lines: 0,
            failed: false,
        })
    }

    fn write(&mut self, record: &TraceRecord) {
        if self.failed {
            return;
        }
        let json = serde::to_json_string(&serde::Serialize::to_json_value(record), false);
        if let Err(e) = writeln!(self.out, "{json}") {
            self.failed = true;
            eprintln!(
                "trace: write to {} failed: {e}; sink disabled",
                self.path.display()
            );
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if !self.failed {
            let _ = self.out.flush();
        }
    }
}

/// The front door of the tracing subsystem: filters events by channel and
/// feeds the ring and the optional JSONL stream.
#[derive(Debug)]
pub struct Tracer {
    mask: ChannelMask,
    ring: TraceRing,
    jsonl: Option<JsonlSink>,
}

impl Tracer {
    /// A disabled tracer: empty mask, disabled ring, no stream.
    pub fn off() -> Self {
        Self {
            mask: ChannelMask::NONE,
            ring: TraceRing::disabled(),
            jsonl: None,
        }
    }

    /// Ring-only tracer keeping the last `capacity` events on `mask`.
    pub fn ring(mask: ChannelMask, capacity: usize) -> Self {
        Self {
            mask,
            ring: if mask.is_empty() {
                TraceRing::disabled()
            } else {
                TraceRing::enabled(capacity)
            },
            jsonl: None,
        }
    }

    /// Attach a streaming JSONL sink writing one [`TraceRecord`] per line.
    pub fn set_jsonl_path(&mut self, path: &Path) -> std::io::Result<()> {
        self.jsonl = Some(JsonlSink::create(path)?);
        Ok(())
    }

    /// The active channel mask.
    pub fn mask(&self) -> ChannelMask {
        self.mask
    }

    /// Whether events on `ch` would be retained. Emission sites must check
    /// this (or an effective mask that includes it) *before* constructing
    /// an event, to keep tracing-off runs zero-cost.
    #[inline]
    pub fn wants(&self, ch: TraceChannel) -> bool {
        self.mask.contains(ch)
    }

    /// Record one event (filtered by the mask).
    #[inline]
    pub fn record(&mut self, now: Cycle, event: &TraceEvent) {
        let channel = event.channel();
        if !self.mask.contains(channel) {
            return;
        }
        self.ring.record(now, *event);
        if let Some(sink) = self.jsonl.as_mut() {
            sink.write(&TraceRecord {
                cycle: now,
                channel,
                event: *event,
            });
        }
    }

    /// The bounded ring sink.
    pub fn ring_ref(&self) -> &TraceRing {
        &self.ring
    }

    /// JSONL lines written so far (0 without a sink).
    pub fn jsonl_lines(&self) -> u64 {
        self.jsonl.as_ref().map_or(0, |s| s.lines)
    }

    /// Path of the attached JSONL sink, if any.
    pub fn jsonl_path(&self) -> Option<&Path> {
        self.jsonl.as_ref().map(|s| s.path.as_path())
    }

    /// Flush the JSONL stream (also happens on drop).
    pub fn flush(&mut self) {
        if let Some(sink) = self.jsonl.as_mut() {
            sink.flush();
        }
    }

    /// Render the ring's retained window.
    pub fn dump(&self) -> String {
        self.ring.dump()
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Environment-driven trace configuration (`PUNO_TRACE`, `PUNO_TRACE_OUT`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    pub mask: ChannelMask,
    /// Raw `PUNO_TRACE_OUT` value: a JSONL file path, or a directory to
    /// place per-run files in (the caller resolves which).
    pub out: Option<PathBuf>,
}

impl TraceConfig {
    /// Read `PUNO_TRACE`/`PUNO_TRACE_OUT`. Returns `Ok(None)` when tracing
    /// is off (unset or an empty/`off` spec), `Err` on an invalid spec.
    pub fn from_env() -> Result<Option<TraceConfig>, String> {
        let spec = match std::env::var("PUNO_TRACE") {
            Ok(s) => s,
            Err(_) => return Ok(None),
        };
        let mask = ChannelMask::parse(&spec).map_err(|e| format!("PUNO_TRACE: {e}"))?;
        if mask.is_empty() {
            return Ok(None);
        }
        let out = std::env::var("PUNO_TRACE_OUT").ok().map(PathBuf::from);
        Ok(Some(TraceConfig { mask, out }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(node: u16) -> TraceEvent {
        TraceEvent::HtmCommit {
            node: NodeId(node),
            tx: TxId(7),
            length: 100,
        }
    }

    #[test]
    fn mask_parse_accepts_lists_aliases_and_rejects_junk() {
        assert_eq!(ChannelMask::parse("").unwrap(), ChannelMask::NONE);
        assert_eq!(ChannelMask::parse("off").unwrap(), ChannelMask::NONE);
        assert_eq!(ChannelMask::parse("0").unwrap(), ChannelMask::NONE);
        assert_eq!(ChannelMask::parse("all").unwrap(), ChannelMask::ALL);
        assert_eq!(ChannelMask::parse("1").unwrap(), ChannelMask::ALL);
        let m = ChannelMask::parse("htm, coh").unwrap();
        assert!(m.contains(TraceChannel::Htm));
        assert!(m.contains(TraceChannel::Coh));
        assert!(!m.contains(TraceChannel::Noc));
        assert_eq!(m.spec(), "htm,coh");
        assert!(ChannelMask::parse("bogus").is_err());
        assert!(ChannelMask::parse("htm,bogus")
            .unwrap_err()
            .contains("bogus"));
    }

    #[test]
    fn every_channel_round_trips_through_its_name() {
        for ch in TraceChannel::ALL {
            let m = ChannelMask::parse(ch.name()).unwrap();
            assert!(m.contains(ch));
            assert_eq!(m.channels().count(), 1);
        }
    }

    #[test]
    fn disabled_ring_discards_and_dumps_empty() {
        let mut ring = TraceRing::disabled();
        ring.record(5, commit(1));
        assert!(ring.is_empty());
        assert_eq!(ring.dump(), "");
    }

    #[test]
    fn ring_keeps_only_the_last_n_and_header_is_self_describing() {
        let mut ring = TraceRing::enabled(3);
        for i in 0..10u64 {
            ring.record(
                i,
                TraceEvent::HtmCommit {
                    node: NodeId(i as u16),
                    tx: TxId(i),
                    length: i,
                },
            );
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let dump = ring.dump();
        assert!(dump.contains("capacity 3, retained 3, dropped 7"), "{dump}");
        assert!(dump.contains("Tx9"));
        assert!(dump.contains("Tx7"));
        assert!(!dump.contains("Tx6"));
    }

    #[test]
    fn tracer_filters_by_channel() {
        let mut t = Tracer::ring(ChannelMask::NONE.with(TraceChannel::Noc), 8);
        t.record(1, &commit(0));
        assert!(
            t.ring_ref().is_empty(),
            "htm event filtered by noc-only mask"
        );
        t.record(
            2,
            &TraceEvent::NocInject {
                src: NodeId(0),
                dst: NodeId(1),
                vnet: 0,
                flits: 1,
            },
        );
        assert_eq!(t.ring_ref().len(), 1);
        assert!(!t.wants(TraceChannel::Htm));
        assert!(t.wants(TraceChannel::Noc));
    }

    #[test]
    fn records_round_trip_through_serde() {
        let events = [
            TraceEvent::CohSend {
                src: NodeId(1),
                dst: NodeId(2),
                kind: CohMsgKind::Getx,
                addr: LineAddr(0x40),
            },
            TraceEvent::HtmAbort {
                node: NodeId(3),
                tx: TxId(9),
                cause: AbortCauseCode::TxWriteInvalidation,
                by: Some(NodeId(1)),
                addr: Some(LineAddr(0x40)),
                discarded: 250,
            },
            TraceEvent::HtmAbort {
                node: NodeId(3),
                tx: TxId(9),
                cause: AbortCauseCode::Injected,
                by: None,
                addr: None,
                discarded: 0,
            },
            TraceEvent::DirState {
                home: NodeId(0),
                kind: CohMsgKind::Unblock,
                addr: LineAddr(8),
                state: DirLineState::Owned,
                busy: false,
            },
            TraceEvent::FaultFired {
                kind: FaultKind::LinkStall,
                node: NodeId(5),
                magnitude: 12,
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let record = TraceRecord {
                cycle: 1000 + i as u64,
                channel: event.channel(),
                event,
            };
            let json = serde_json::to_string(&record).unwrap();
            let back: TraceRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, record, "round-trip mismatch for {json}");
            assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn trace_config_parses_the_env_shape() {
        // Exercise the parser directly (env vars are process-global; the
        // harness integration tests own the env-driven path).
        let mask = ChannelMask::parse("htm,noc").unwrap();
        assert_eq!(mask.channels().count(), 2);
        assert!(ChannelMask::parse("htm;noc").is_err());
    }
}
