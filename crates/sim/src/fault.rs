//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *which* faults to inject (per-kind rates plus an
//! explicit cycle-scheduled event list) and a [`FaultInjector`] decides *when*
//! each individual fault fires, drawing from per-kind RNG streams derived from
//! the plan's seed. Keeping one stream per fault kind means enabling one kind
//! never perturbs the draw sequence of another, and the same (plan, seed)
//! always yields the same fault schedule — fault-injected runs are as
//! reproducible as fault-free ones.
//!
//! Every fault kind is *abort-recoverable*: it perturbs timing or forces a
//! protocol-legal conservative outcome (a NACK, a transaction abort). Message
//! loss is deliberately excluded — the modeled hardware has no
//! timeout/retransmit machinery, so a dropped coherence message is an
//! unrecoverable hang, not a fault the protocol is expected to tolerate.
//!
//! The empty plan is free: [`FaultInjector::is_empty`] lets the hosting
//! simulator skip every hook, and each probe method itself returns before
//! touching its RNG when the corresponding rate is zero. A run with
//! `FaultPlan::none()` is bit-identical to a run with no injector at all.

use crate::clock::{Cycle, Cycles};
use crate::ids::NodeId;
use crate::rng::SimRng;
use crate::stats::Counter;
use serde::{Deserialize, Serialize};

/// The kinds of faults the injector can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Extra cycles added to a coherence message's network injection.
    DelayJitter,
    /// A router output link held busy, stalling flits queued behind it.
    LinkStall,
    /// A forward answered with a NACK even though the receiver would have
    /// complied — a conservative refusal the protocol already tolerates.
    SpuriousNack,
    /// A running transaction aborted as if a conflict had been detected.
    ForcedAbort,
}

impl FaultKind {
    pub const ALL: [FaultKind; 4] = [
        FaultKind::DelayJitter,
        FaultKind::LinkStall,
        FaultKind::SpuriousNack,
        FaultKind::ForcedAbort,
    ];
}

/// One explicitly scheduled fault: `kind` fires at cycle `at` on `node`.
///
/// Scheduled events complement the rate-based streams: rates model background
/// noise, scheduled events let a test aim a specific fault at a specific
/// moment (e.g. "abort node 3 mid-transaction at cycle 10_000").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub at: Cycle,
    pub kind: FaultKind,
    pub node: NodeId,
    /// Kind-specific magnitude: extra delay cycles for `DelayJitter`, stall
    /// cycles for `LinkStall`; ignored by the point-event kinds.
    pub magnitude: Cycles,
}

/// A declarative fault schedule. Rates are per-opportunity probabilities
/// (per message injection for jitter and stalls, per eligible forward for
/// spurious NACKs, per transactional begin for forced aborts).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seeds the per-kind RNG streams (independent of the workload seed, so
    /// the same fault schedule can be replayed against different runs).
    pub seed: u64,
    pub delay_jitter_rate: f64,
    /// Jitter magnitude is drawn uniformly from `1..=delay_jitter_max`.
    pub delay_jitter_max: Cycles,
    pub link_stall_rate: f64,
    /// Every rate-drawn stall holds the link for exactly this many cycles.
    pub link_stall_cycles: Cycles,
    pub spurious_nack_rate: f64,
    pub forced_abort_rate: f64,
    /// Explicit point events, in addition to the rate-based streams.
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing, perturbs nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            delay_jitter_rate: 0.0,
            delay_jitter_max: 8,
            link_stall_rate: 0.0,
            link_stall_cycles: 16,
            spurious_nack_rate: 0.0,
            forced_abort_rate: 0.0,
            events: Vec::new(),
        }
    }

    /// A mixed-background plan scaled by `intensity` in `[0, 1]`: at 1.0,
    /// 2% of messages jittered, 1% of injections stall a link, 2% of
    /// forwards spuriously nacked, 5% of transaction begins forced to abort
    /// once. These ceilings keep even the max intensity recoverable.
    pub fn background(seed: u64, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        Self {
            seed,
            delay_jitter_rate: 0.02 * i,
            delay_jitter_max: 8,
            link_stall_rate: 0.01 * i,
            link_stall_cycles: 16,
            spurious_nack_rate: 0.02 * i,
            forced_abort_rate: 0.05 * i,
            events: Vec::new(),
        }
    }

    /// True when no rate is positive and no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.delay_jitter_rate <= 0.0
            && self.link_stall_rate <= 0.0
            && self.spurious_nack_rate <= 0.0
            && self.forced_abort_rate <= 0.0
            && self.events.is_empty()
    }
}

/// Per-kind counts of faults actually fired during a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultStats {
    pub delay_jitters: Counter,
    /// Total extra cycles added by jitter faults.
    pub jitter_cycles: Counter,
    pub link_stalls: Counter,
    pub spurious_nacks: Counter,
    pub forced_aborts: Counter,
}

impl FaultStats {
    pub fn total(&self) -> u64 {
        self.delay_jitters.get()
            + self.link_stalls.get()
            + self.spurious_nacks.get()
            + self.forced_aborts.get()
    }

    pub fn merge(&mut self, other: &FaultStats) {
        self.delay_jitters.add(other.delay_jitters.get());
        self.jitter_cycles.add(other.jitter_cycles.get());
        self.link_stalls.add(other.link_stalls.get());
        self.spurious_nacks.add(other.spurious_nacks.get());
        self.forced_aborts.add(other.forced_aborts.get());
    }
}

/// Stateful fault source for one run. Construct from a plan; the hosting
/// simulator calls the probe methods at its hook points.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    jitter_rng: SimRng,
    stall_rng: SimRng,
    nack_rng: SimRng,
    abort_rng: SimRng,
    pub stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let root = SimRng::new(plan.seed);
        Self {
            jitter_rng: root.derive(0xFA01),
            stall_rng: root.derive(0xFA02),
            nack_rng: root.derive(0xFA03),
            abort_rng: root.derive(0xFA04),
            stats: FaultStats::default(),
            plan,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the plan can never fire; hosts use this to skip all hooks.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Scheduled point events, for the host to enqueue at startup.
    pub fn scheduled_events(&self) -> &[FaultEvent] {
        &self.plan.events
    }

    /// Probe at message injection: extra delay cycles, if this message is
    /// jittered. Never touches the RNG when the rate is zero.
    pub fn message_delay(&mut self) -> Option<Cycles> {
        if self.plan.delay_jitter_rate <= 0.0 {
            return None;
        }
        if !self.jitter_rng.gen_bool(self.plan.delay_jitter_rate) {
            return None;
        }
        let extra = 1 + self.jitter_rng.gen_range(self.plan.delay_jitter_max.max(1));
        self.record_jitter(extra);
        Some(extra)
    }

    /// Probe at message injection: stall the source router's links, if this
    /// injection trips a stall fault.
    pub fn link_stall(&mut self) -> Option<Cycles> {
        if self.plan.link_stall_rate <= 0.0 {
            return None;
        }
        if !self.stall_rng.gen_bool(self.plan.link_stall_rate) {
            return None;
        }
        self.record_link_stall();
        Some(self.plan.link_stall_cycles)
    }

    /// Probe at an incoming forward: true to arm a spurious NACK for it.
    /// The host records the fault (`record_spurious_nack`) only when the
    /// downgrade actually applies — a forward that would have been nacked
    /// anyway absorbs the fault.
    pub fn spurious_nack(&mut self) -> bool {
        if self.plan.spurious_nack_rate <= 0.0 {
            return false;
        }
        self.nack_rng.gen_bool(self.plan.spurious_nack_rate)
    }

    /// Probe at transaction begin: true to force this attempt to abort.
    /// The host records the abort itself when it actually fires.
    pub fn forced_abort(&mut self) -> bool {
        if self.plan.forced_abort_rate <= 0.0 {
            return false;
        }
        self.abort_rng.gen_bool(self.plan.forced_abort_rate)
    }

    /// Delay after the transaction begin at which a rate-drawn forced abort
    /// fires, so the attempt has speculative work to discard. Drawn from the
    /// same stream as the `forced_abort` probe; call only after it fired.
    pub fn forced_abort_delay(&mut self) -> Cycles {
        1 + self.abort_rng.gen_range(256)
    }

    // Accounting entry points, also used for scheduled events (which bypass
    // the rate probes).
    pub fn record_jitter(&mut self, cycles: Cycles) {
        self.stats.delay_jitters.inc();
        self.stats.jitter_cycles.add(cycles);
    }

    pub fn record_link_stall(&mut self) {
        self.stats.link_stalls.inc();
    }

    pub fn record_spurious_nack(&mut self) {
        self.stats.spurious_nacks.inc();
    }

    pub fn record_forced_abort(&mut self) {
        self.stats.forced_aborts.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        assert!(inj.is_empty());
        for _ in 0..1000 {
            assert_eq!(inj.message_delay(), None);
            assert_eq!(inj.link_stall(), None);
            assert!(!inj.spurious_nack());
            assert!(!inj.forced_abort());
        }
        assert_eq!(inj.stats.total(), 0);
    }

    #[test]
    fn same_plan_same_seed_is_deterministic() {
        let plan = FaultPlan::background(42, 1.0);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let mut fires = 0u64;
        for _ in 0..10_000 {
            assert_eq!(a.message_delay(), b.message_delay());
            assert_eq!(a.link_stall(), b.link_stall());
            let nack = a.spurious_nack();
            assert_eq!(nack, b.spurious_nack());
            let abort = a.forced_abort();
            assert_eq!(abort, b.forced_abort());
            fires += (nack as u64) + (abort as u64);
        }
        assert_eq!(a.stats.total(), b.stats.total());
        assert!(
            a.stats.total() + fires > 0,
            "intensity 1.0 must actually fire"
        );
    }

    #[test]
    fn kinds_draw_from_independent_streams() {
        // Enabling jitter must not change the spurious-nack decision
        // sequence: streams are derived per kind.
        let mut only_nack = FaultInjector::new(FaultPlan {
            spurious_nack_rate: 0.1,
            ..FaultPlan::none()
        });
        let mut both = FaultInjector::new(FaultPlan {
            spurious_nack_rate: 0.1,
            delay_jitter_rate: 0.5,
            ..FaultPlan::none()
        });
        for _ in 0..5_000 {
            let _ = both.message_delay();
            assert_eq!(only_nack.spurious_nack(), both.spurious_nack());
        }
    }

    #[test]
    fn intensity_scales_rates_monotonically() {
        let lo = FaultPlan::background(7, 0.1);
        let hi = FaultPlan::background(7, 1.0);
        assert!(lo.delay_jitter_rate < hi.delay_jitter_rate);
        assert!(lo.forced_abort_rate < hi.forced_abort_rate);
        assert!(!lo.is_empty());
        assert!(FaultPlan::background(7, 0.0).is_empty());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: 1000,
                kind: FaultKind::ForcedAbort,
                node: NodeId(3),
                magnitude: 0,
            }],
            ..FaultPlan::background(9, 0.5)
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, plan.seed);
        assert_eq!(back.events, plan.events);
        assert!((back.delay_jitter_rate - plan.delay_jitter_rate).abs() < 1e-12);
    }
}
