//! Cycle-resolution simulated time.

/// A point in simulated time, measured in core clock cycles.
///
/// All components of the simulated CMP (cores, caches, directory banks,
/// routers) share a single clock domain, matching the paper's single-frequency
/// 16-core system (Table II: 1 GHz cores).
pub type Cycle = u64;

/// A span of simulated time in cycles.
pub type Cycles = u64;

/// Saturating "cycles remaining until `deadline`" helper.
///
/// Returns zero when `deadline` is in the past, which is the behaviour the
/// notification rule of the paper needs (a nacker whose transaction has
/// already exceeded its average length reports zero remaining time).
#[inline]
pub fn remaining(now: Cycle, deadline: Cycle) -> Cycles {
    deadline.saturating_sub(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_saturates_at_zero() {
        assert_eq!(remaining(100, 150), 50);
        assert_eq!(remaining(150, 150), 0);
        assert_eq!(remaining(200, 150), 0);
    }
}
