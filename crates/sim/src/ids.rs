//! Strongly-typed identifiers shared across the simulator.
//!
//! Newtypes keep node indices, cache-line addresses and transaction ids from
//! being mixed up at call sites; all of them are `Copy` and order-comparable
//! so they can key `BTreeMap`s (deterministic iteration) without ceremony.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node (core + L1 + HTM unit + L2/directory bank) on the CMP.
///
/// The paper's system has 16 nodes arranged in a 4x4 mesh; the simulator
/// supports any `width * height` mesh.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Address of a 64-byte cache line (already shifted: one unit = one line).
///
/// The simulator never needs byte offsets; every data structure (read/write
/// sets, directory, caches) works at line granularity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Identity of one *dynamic* transaction instance.
///
/// A new `TxId` is minted for every `TX_BEGIN` that is not a retry of an
/// aborted instance; retries keep their id (and their timestamp) so that the
/// time-based conflict policy ages transactions toward victory, guaranteeing
/// progress exactly as in the paper's baseline [11].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(pub u64);

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tx{}", self.0)
    }
}

/// Identity of a *static* transaction: a `TX_BEGIN`/`TX_END` pair in the
/// program text. The paper's TxLB (Transaction Length Buffer) tracks average
/// dynamic length per static transaction (Section III-D).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StaticTxId(pub u32);

impl StaticTxId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StaticTxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Transaction timestamp used by the time-based conflict resolution policy
/// [Rajwar & Goodman]: assigned at first `TX_BEGIN`, *kept across retries* so
/// transactions age toward victory. **Smaller timestamp = older = higher
/// priority.**
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// True when `self` has priority over (is older than) `other`.
    #[inline]
    pub fn outranks(self, other: Timestamp) -> bool {
        self < other
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn older_timestamp_outranks() {
        assert!(Timestamp(10).outranks(Timestamp(20)));
        assert!(!Timestamp(20).outranks(Timestamp(10)));
        assert!(!Timestamp(10).outranks(Timestamp(10)));
    }

    #[test]
    fn node_id_ordering_and_index() {
        assert!(NodeId(3) < NodeId(12));
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", NodeId(4)), "N4");
        assert_eq!(format!("{:?}", LineAddr(0x40)), "L0x40");
        assert_eq!(format!("{:?}", TxId(9)), "Tx9");
        assert_eq!(format!("{:?}", StaticTxId(2)), "S2");
    }
}
