//! # puno-workloads
//!
//! Synthetic transactional workload generators standing in for STAMP.
//!
//! The paper evaluates PUNO on the eight STAMP benchmarks (Table I). The
//! original binaries are SPARC full-system images we cannot run; what the
//! evaluation actually depends on is each benchmark's **contention
//! signature** — transaction length distribution, read/write-set sizes, how
//! skewed the shared-data access pattern is, and how much read-read sharing
//! exists for transactional writers to trample on. Those signatures are well
//! documented (the STAMP paper's Table 4, the paper's own Table I abort
//! rates) and are what these generators reproduce:
//!
//! | workload  | signature reproduced |
//! |-----------|----------------------|
//! | bayes     | few, long txs; large rd/wr sets on a small hot region; ~97% abort |
//! | intruder  | short txs; queue-like RMW on a very hot region; ~78% abort |
//! | labyrinth | giant read set (whole-grid scan) + small writes; ~99% abort |
//! | yada      | medium txs, mixed sharing; ~48% abort |
//! | genome    | read-mostly hash inserts, sparse writes; ~1% abort |
//! | kmeans    | tiny RMW txs on many independent centers; ~7% abort |
//! | ssca2     | tiny txs on a huge array; ~0.3% abort |
//! | vacation  | tree lookups, read-heavy with scattered updates; ~38% abort |
//!
//! Every generator is deterministic given a seed, and every mechanism under
//! comparison replays the *same* per-node programs, so measured differences
//! come from the mechanism, not the offered load.

pub mod addresses;
pub mod genprog;
pub mod micro;
pub mod op;
pub mod params;
pub mod progcache;
pub mod stamp;
pub mod stats;

pub use addresses::AddressMap;
pub use genprog::generate_program;
pub use op::{DynTxSpec, NodeProgram, TxOp, WorkItem};
pub use params::{StaticTxParams, WorkloadParams};
pub use progcache::{fnv1a_64, params_digest, ProgramSet};
pub use stamp::{table1_rows, Table1Row, WorkloadId};
pub use stats::{characterize, ProgramStats};
