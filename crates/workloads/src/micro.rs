//! Micro-workloads for unit/property/integration tests and ablations.

use crate::params::{StaticTxParams, WorkloadParams};

/// All nodes increment lines of one tiny shared counter region with pure
/// RMW transactions — the serializability oracle workload: the sum of
/// committed increments must equal the final counter values.
pub fn counter(shared_lines: u64, tx_per_node: u32) -> WorkloadParams {
    WorkloadParams {
        name: "micro-counter".into(),
        static_txs: vec![StaticTxParams {
            weight: 1.0,
            reads: (1, 1),
            writes: (1, 1),
            rmw_fraction: 1.0,
            read_shared_fraction: 1.0,
            write_shared_fraction: 1.0,
            think_per_op: 3,
            scan_shared: 0,
            lead_reads: 0,
        }],
        shared_lines,
        zipf_theta: 0.0,
        private_lines_per_node: 16,
        tx_per_node,
        inter_tx_think: 20,
        non_tx_accesses: 0,
    }
}

/// Extreme hot spot: every transaction reads a handful of lines from a tiny
/// region and writes one — maximal false-aborting pressure.
pub fn hotspot(tx_per_node: u32) -> WorkloadParams {
    WorkloadParams {
        name: "micro-hotspot".into(),
        static_txs: vec![StaticTxParams {
            weight: 1.0,
            reads: (3, 6),
            writes: (1, 2),
            rmw_fraction: 0.5,
            read_shared_fraction: 1.0,
            write_shared_fraction: 1.0,
            think_per_op: 10,
            scan_shared: 0,
            lead_reads: 0,
        }],
        shared_lines: 8,
        zipf_theta: 0.8,
        private_lines_per_node: 16,
        tx_per_node,
        inter_tx_think: 30,
        non_tx_accesses: 0,
    }
}

/// Read-dominated sharing with rare writers: lots of read-read sharing for
/// the occasional writer to falsely abort.
pub fn read_mostly(tx_per_node: u32) -> WorkloadParams {
    WorkloadParams {
        name: "micro-read-mostly".into(),
        static_txs: vec![
            // Readers.
            StaticTxParams {
                weight: 8.0,
                reads: (4, 10),
                writes: (0, 0),
                rmw_fraction: 0.0,
                read_shared_fraction: 1.0,
                write_shared_fraction: 0.0,
                think_per_op: 12,
                scan_shared: 0,
                lead_reads: 0,
            },
            // Occasional writer.
            StaticTxParams {
                weight: 1.0,
                reads: (1, 2),
                writes: (1, 3),
                rmw_fraction: 0.3,
                read_shared_fraction: 1.0,
                write_shared_fraction: 1.0,
                think_per_op: 8,
                scan_shared: 0,
                lead_reads: 0,
            },
        ],
        shared_lines: 32,
        zipf_theta: 0.6,
        private_lines_per_node: 16,
        tx_per_node,
        inter_tx_think: 25,
        non_tx_accesses: 0,
    }
}

/// No sharing at all: each transaction touches only private lines. Zero
/// conflicts expected; pins down protocol/HTM overheads and asserts the
/// mechanisms are no-ops without contention.
pub fn private_only(tx_per_node: u32) -> WorkloadParams {
    WorkloadParams {
        name: "micro-private".into(),
        static_txs: vec![StaticTxParams {
            weight: 1.0,
            reads: (2, 4),
            writes: (1, 2),
            rmw_fraction: 0.5,
            read_shared_fraction: 0.0,
            write_shared_fraction: 0.0,
            think_per_op: 5,
            scan_shared: 0,
            lead_reads: 0,
        }],
        shared_lines: 1,
        zipf_theta: 0.0,
        private_lines_per_node: 64,
        tx_per_node,
        inter_tx_think: 20,
        non_tx_accesses: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_workloads_validate() {
        counter(4, 10).validate();
        hotspot(10).validate();
        read_mostly(10).validate();
        private_only(10).validate();
    }

    #[test]
    fn counter_is_pure_rmw() {
        let p = counter(2, 5);
        assert_eq!(p.static_txs[0].rmw_fraction, 1.0);
        assert_eq!(p.static_txs[0].reads, (1, 1));
        assert_eq!(p.static_txs[0].writes, (1, 1));
    }

    #[test]
    fn private_only_never_touches_shared() {
        let p = private_only(5);
        assert_eq!(p.static_txs[0].read_shared_fraction, 0.0);
        assert_eq!(p.static_txs[0].write_shared_fraction, 0.0);
    }
}
