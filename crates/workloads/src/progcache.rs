//! Shared program sets and workload-parameter digesting.
//!
//! A sweep runs every mechanism against the *same* offered load, so the
//! per-node programs for one `(params, seed)` pair are identical across all
//! mechanism cells — and across retries of the same cell. [`ProgramSet`]
//! generates them once and hands out immutable [`Arc`] clones, eliminating
//! the dominant per-cell setup cost without any behavioural change: each
//! program is produced by the exact same [`generate_program`] call a fresh
//! `System` would have made.
//!
//! [`params_digest`] gives a stable content digest of a `WorkloadParams`
//! used both as the program-cache key and as one component of the
//! persistent result-cache key in `puno-harness`.

use std::sync::Arc;

use crate::genprog::generate_program;
use crate::op::NodeProgram;
use crate::params::WorkloadParams;
use puno_sim::NodeId;

/// FNV-1a 64-bit over an arbitrary byte string. Hand-rolled so digests are
/// stable across runs and hosts without pulling in a hashing crate.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Stable content digest of a `WorkloadParams`.
///
/// Digests the `Debug` rendering, which spells out every field by name: any
/// parameter perturbation (count, fraction, name, a static-tx tweak) changes
/// the digest, while re-digesting unchanged params is always identical.
pub fn params_digest(params: &WorkloadParams) -> u64 {
    fnv1a_64(format!("{params:?}").as_bytes())
}

/// One workload trace, generated once per `(params-digest, seed)` and shared
/// immutably across every mechanism cell (and retry) that replays it.
#[derive(Clone, Debug)]
pub struct ProgramSet {
    /// Digest of the generating params (see [`params_digest`]).
    pub params_digest: u64,
    /// Seed the programs were derived from.
    pub seed: u64,
    programs: Vec<Arc<NodeProgram>>,
}

impl ProgramSet {
    /// Generate the per-node programs for `nodes` nodes. Bit-identical to
    /// calling [`generate_program`] per node, by construction.
    pub fn generate(params: &WorkloadParams, nodes: u16, seed: u64) -> Self {
        let programs = (0..nodes)
            .map(|i| Arc::new(generate_program(params, NodeId(i), seed)))
            .collect();
        ProgramSet {
            params_digest: params_digest(params),
            seed,
            programs,
        }
    }

    /// Number of node programs in the set.
    pub fn nodes(&self) -> u16 {
        self.programs.len() as u16
    }

    /// Node `node`'s program, shared.
    pub fn node(&self, node: NodeId) -> Arc<NodeProgram> {
        Arc::clone(&self.programs[node.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::WorkloadId;

    #[test]
    fn program_set_matches_fresh_generation() {
        let params = WorkloadId::Genome.params().scaled(0.05);
        let set = ProgramSet::generate(&params, 4, 42);
        assert_eq!(set.nodes(), 4);
        for i in 0..4 {
            let fresh = generate_program(&params, NodeId(i), 42);
            assert_eq!(*set.node(NodeId(i)), fresh, "node {i} program must match");
        }
    }

    #[test]
    fn digest_is_stable_across_calls() {
        let params = WorkloadId::Kmeans.params();
        assert_eq!(params_digest(&params), params_digest(&params));
        assert_eq!(params_digest(&params.clone()), params_digest(&params));
    }

    #[test]
    fn digest_distinguishes_workloads() {
        let mut seen = std::collections::BTreeSet::new();
        for w in WorkloadId::ALL {
            assert!(
                seen.insert(params_digest(&w.params())),
                "digest collision for {}",
                w.name()
            );
        }
    }

    #[test]
    fn digest_changes_on_any_perturbation() {
        let base = WorkloadId::Vacation.params();
        let d0 = params_digest(&base);

        let mut p = base.clone();
        p.tx_per_node += 1;
        assert_ne!(params_digest(&p), d0, "tx_per_node");

        let mut p = base.clone();
        p.shared_lines += 1;
        assert_ne!(params_digest(&p), d0, "shared_lines");

        let mut p = base.clone();
        p.zipf_theta += 1e-9;
        assert_ne!(params_digest(&p), d0, "zipf_theta");

        let mut p = base.clone();
        p.name.push('x');
        assert_ne!(params_digest(&p), d0, "name");

        let mut p = base.clone();
        p.static_txs[0].reads.1 += 1;
        assert_ne!(params_digest(&p), d0, "static tx reads");

        let mut p = base.clone();
        p.static_txs[0].rmw_fraction *= 0.999;
        assert_ne!(params_digest(&p), d0, "static tx rmw_fraction");
    }

    #[test]
    fn digest_changes_on_scaling() {
        let base = WorkloadId::Ssca2.params();
        assert_ne!(
            params_digest(&base.clone().scaled(0.05)),
            params_digest(&base),
            "scaled params must digest differently"
        );
    }
}
