//! Program generation: turn a `WorkloadParams` into one deterministic
//! `NodeProgram` per node.

use crate::addresses::AddressMap;
use crate::op::{DynTxSpec, NodeProgram, TxOp, WorkItem};
use crate::params::WorkloadParams;
use puno_sim::{LineAddr, NodeId, SimRng, StaticTxId, ZipfSampler};

/// Generate node `node`'s program for `params`, deterministically derived
/// from `seed`. The same `(params, node, seed)` always yields the same
/// program, so all mechanisms replay identical offered load.
pub fn generate_program(params: &WorkloadParams, node: NodeId, seed: u64) -> NodeProgram {
    params.validate();
    let map = AddressMap::new(params.shared_lines, params.private_lines_per_node.max(1));
    let mut rng = SimRng::new(seed).derive(0x9E3779B9 ^ node.0 as u64);
    let total_weight: f64 = params.static_txs.iter().map(|t| t.weight).sum();
    // Hoisted Zipf constants: one O(n) harmonic sum per program instead of
    // one per shared access (bit-identical samples to `rng.gen_zipf`).
    let zipf = ZipfSampler::new(params.shared_lines, params.zipf_theta);

    let mut items = Vec::new();
    for _ in 0..params.tx_per_node {
        // Inter-transaction non-transactional phase.
        if params.inter_tx_think > 0 {
            items.push(WorkItem::Think(
                rng.gen_geometric(params.inter_tx_think as f64).max(1),
            ));
        }
        for k in 0..params.non_tx_accesses {
            let idx = rng.gen_range(map.private_lines_per_node);
            items.push(WorkItem::Access {
                addr: map.private(node, idx),
                is_write: k % 2 == 0,
            });
        }

        // Pick the static transaction by weight.
        let mut pick = rng.gen_f64() * total_weight;
        let mut static_idx = 0;
        for (i, st) in params.static_txs.iter().enumerate() {
            if pick < st.weight {
                static_idx = i;
                break;
            }
            pick -= st.weight;
        }
        let st = &params.static_txs[static_idx];

        // Build the body: optional global scan, then reads, then writes
        // (read-compute-update, the dominant STAMP shape).
        let mut ops = Vec::new();
        let mut read_lines: Vec<LineAddr> = Vec::new();
        let think = |rng: &mut SimRng, ops: &mut Vec<TxOp>| {
            if st.think_per_op > 0 {
                ops.push(TxOp::Think(
                    rng.gen_geometric(st.think_per_op as f64).max(1),
                ));
            }
        };

        for _ in 0..st.lead_reads {
            let addr = map.shared(zipf.sample(&mut rng));
            ops.push(TxOp::Read(addr));
            read_lines.push(addr);
        }

        if st.scan_shared > 0 {
            // Evenly strided scan so the read set spans all home banks.
            let stride = (params.shared_lines / st.scan_shared as u64).max(1);
            for i in 0..st.scan_shared as u64 {
                let addr = map.shared((i * stride) % params.shared_lines);
                ops.push(TxOp::Read(addr));
                read_lines.push(addr);
            }
            think(&mut rng, &mut ops);
        }

        let n_reads = rng.gen_range_inclusive(st.reads.0 as u64, st.reads.1 as u64);
        for _ in 0..n_reads {
            think(&mut rng, &mut ops);
            let addr = if rng.gen_bool(st.read_shared_fraction) {
                map.shared(zipf.sample(&mut rng))
            } else {
                map.private(node, rng.gen_range(map.private_lines_per_node))
            };
            ops.push(TxOp::Read(addr));
            read_lines.push(addr);
        }

        let n_writes = rng.gen_range_inclusive(st.writes.0 as u64, st.writes.1 as u64);
        for _ in 0..n_writes {
            think(&mut rng, &mut ops);
            let addr = if !read_lines.is_empty() && rng.gen_bool(st.rmw_fraction) {
                *rng.choose(&read_lines)
            } else if rng.gen_bool(st.write_shared_fraction) {
                map.shared(zipf.sample(&mut rng))
            } else {
                map.private(node, rng.gen_range(map.private_lines_per_node))
            };
            ops.push(TxOp::Write(addr));
        }

        items.push(WorkItem::Transaction(DynTxSpec {
            static_tx: StaticTxId(static_idx as u32),
            ops,
        }));
    }
    NodeProgram { items }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::StaticTxParams;

    fn params() -> WorkloadParams {
        WorkloadParams {
            name: "gen-test".into(),
            static_txs: vec![
                StaticTxParams {
                    weight: 3.0,
                    ..StaticTxParams::simple()
                },
                StaticTxParams {
                    weight: 1.0,
                    reads: (10, 12),
                    ..StaticTxParams::simple()
                },
            ],
            shared_lines: 128,
            zipf_theta: 0.9,
            private_lines_per_node: 32,
            tx_per_node: 200,
            inter_tx_think: 30,
            non_tx_accesses: 2,
        }
    }

    #[test]
    fn deterministic_per_node_and_seed() {
        let a = generate_program(&params(), NodeId(3), 42);
        let b = generate_program(&params(), NodeId(3), 42);
        assert_eq!(a, b);
        let c = generate_program(&params(), NodeId(4), 42);
        assert_ne!(a, c, "different nodes draw different programs");
        let d = generate_program(&params(), NodeId(3), 43);
        assert_ne!(a, d, "different seeds draw different programs");
    }

    #[test]
    fn produces_requested_transaction_count() {
        let p = generate_program(&params(), NodeId(0), 1);
        assert_eq!(p.tx_count(), 200);
    }

    #[test]
    fn static_tx_mix_respects_weights() {
        let p = generate_program(&params(), NodeId(0), 7);
        let s0 = p
            .transactions()
            .filter(|t| t.static_tx == StaticTxId(0))
            .count();
        let s1 = p.tx_count() - s0;
        // weight 3:1 -> roughly 150:50.
        assert!(s0 > 2 * s1, "mix {s0}:{s1} should skew to static tx 0");
        assert!(s1 > 10, "static tx 1 must still appear");
    }

    #[test]
    fn read_write_set_sizes_in_range() {
        let p = generate_program(&params(), NodeId(0), 9);
        for t in p.transactions() {
            let reads = t.ops.iter().filter(|o| matches!(o, TxOp::Read(_))).count() as u32;
            let writes = t.ops.iter().filter(|o| matches!(o, TxOp::Write(_))).count() as u32;
            match t.static_tx {
                StaticTxId(0) => {
                    assert!((2..=4).contains(&reads));
                }
                StaticTxId(1) => {
                    assert!((10..=12).contains(&reads));
                }
                _ => unreachable!(),
            }
            assert!((1..=2).contains(&writes));
        }
    }

    #[test]
    fn rmw_writes_come_from_read_lines() {
        let mut p = params();
        p.static_txs.truncate(1);
        p.static_txs[0].rmw_fraction = 1.0;
        let prog = generate_program(&p, NodeId(0), 11);
        for t in prog.transactions() {
            let reads: Vec<LineAddr> = t
                .ops
                .iter()
                .filter_map(|o| match o {
                    TxOp::Read(a) => Some(*a),
                    _ => None,
                })
                .collect();
            for op in &t.ops {
                if let TxOp::Write(a) = op {
                    assert!(reads.contains(a), "pure-RMW write must target a read line");
                }
            }
        }
    }

    #[test]
    fn scan_reads_span_the_shared_region() {
        let mut p = params();
        p.static_txs.truncate(1);
        p.static_txs[0].scan_shared = 32;
        p.static_txs[0].reads = (0, 0);
        let prog = generate_program(&p, NodeId(0), 3);
        let t = prog.transactions().next().unwrap();
        let reads: Vec<u64> = t
            .ops
            .iter()
            .filter_map(|o| match o {
                TxOp::Read(a) => Some(a.0),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 32);
        // Strided: consecutive reads differ by shared_lines / scan = 4.
        assert_eq!(reads[1] - reads[0], 4);
        let max = reads.iter().max().unwrap();
        assert!(*max >= 124, "scan should reach the top of the region");
    }

    #[test]
    fn private_accesses_stay_private() {
        let p = generate_program(&params(), NodeId(5), 13);
        let map = AddressMap::new(128, 32);
        for item in &p.items {
            if let WorkItem::Access { addr, .. } = item {
                assert!(map.is_private_of(*addr, NodeId(5)));
            }
        }
    }
}
