//! The operation/trace vocabulary consumed by the core model.

use puno_sim::{Cycles, LineAddr, StaticTxId};
use serde::{Deserialize, Serialize};

/// One step inside a transaction body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxOp {
    /// Transactional load of a line.
    Read(LineAddr),
    /// Transactional store to a line.
    Write(LineAddr),
    /// Local computation (no memory traffic).
    Think(Cycles),
}

/// A dynamic transaction instance: a fixed body replayed identically on
/// retry (synthetic analogue of a deterministic STAMP transaction).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynTxSpec {
    pub static_tx: StaticTxId,
    pub ops: Vec<TxOp>,
}

impl DynTxSpec {
    /// Number of memory operations in the body.
    pub fn mem_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, TxOp::Read(_) | TxOp::Write(_)))
            .count()
    }

    /// Sum of think cycles in the body (zero-contention lower bound on the
    /// transaction's length).
    pub fn think_cycles(&self) -> Cycles {
        self.ops
            .iter()
            .map(|o| if let TxOp::Think(c) = o { *c } else { 0 })
            .sum()
    }
}

/// One unit of a node's program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkItem {
    /// Execute (and retry until commit) a transaction.
    Transaction(DynTxSpec),
    /// Non-transactional compute between transactions.
    Think(Cycles),
    /// Non-transactional access to the node's private region.
    Access { addr: LineAddr, is_write: bool },
}

/// Everything one node executes during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeProgram {
    pub items: Vec<WorkItem>,
}

impl NodeProgram {
    pub fn transactions(&self) -> impl Iterator<Item = &DynTxSpec> {
        self.items.iter().filter_map(|i| match i {
            WorkItem::Transaction(t) => Some(t),
            _ => None,
        })
    }

    pub fn tx_count(&self) -> usize {
        self.transactions().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyn_tx_accounting() {
        let t = DynTxSpec {
            static_tx: StaticTxId(0),
            ops: vec![
                TxOp::Think(5),
                TxOp::Read(LineAddr(1)),
                TxOp::Think(3),
                TxOp::Write(LineAddr(1)),
            ],
        };
        assert_eq!(t.mem_ops(), 2);
        assert_eq!(t.think_cycles(), 8);
    }

    #[test]
    fn program_tx_count() {
        let p = NodeProgram {
            items: vec![
                WorkItem::Think(10),
                WorkItem::Transaction(DynTxSpec {
                    static_tx: StaticTxId(0),
                    ops: vec![],
                }),
                WorkItem::Access {
                    addr: LineAddr(5),
                    is_write: true,
                },
                WorkItem::Transaction(DynTxSpec {
                    static_tx: StaticTxId(1),
                    ops: vec![],
                }),
            ],
        };
        assert_eq!(p.tx_count(), 2);
    }
}
