//! Address-space layout shared by all generators.
//!
//! Lines `[0, shared_lines)` form the transactionally shared region; each
//! node additionally owns a private region used for non-transactional work
//! (stack/locals), placed far above the shared region so home-node mappings
//! of the two never interact in surprising ways.

use puno_sim::{LineAddr, NodeId};
use serde::{Deserialize, Serialize};

/// Base of the private regions, far above any shared region we configure.
const PRIVATE_BASE: u64 = 1 << 24;

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AddressMap {
    pub shared_lines: u64,
    pub private_lines_per_node: u64,
}

impl AddressMap {
    pub fn new(shared_lines: u64, private_lines_per_node: u64) -> Self {
        assert!(shared_lines > 0);
        assert!(shared_lines < PRIVATE_BASE);
        Self {
            shared_lines,
            private_lines_per_node,
        }
    }

    /// The `idx`-th shared line.
    pub fn shared(&self, idx: u64) -> LineAddr {
        debug_assert!(idx < self.shared_lines);
        LineAddr(idx)
    }

    /// The `idx`-th private line of `node`.
    pub fn private(&self, node: NodeId, idx: u64) -> LineAddr {
        debug_assert!(idx < self.private_lines_per_node.max(1));
        LineAddr(PRIVATE_BASE + node.0 as u64 * self.private_lines_per_node + idx)
    }

    pub fn is_shared(&self, addr: LineAddr) -> bool {
        addr.0 < self.shared_lines
    }

    pub fn is_private_of(&self, addr: LineAddr, node: NodeId) -> bool {
        let base = PRIVATE_BASE + node.0 as u64 * self.private_lines_per_node;
        (base..base + self.private_lines_per_node).contains(&addr.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let m = AddressMap::new(1024, 64);
        assert!(m.is_shared(m.shared(0)));
        assert!(m.is_shared(m.shared(1023)));
        let p = m.private(NodeId(3), 5);
        assert!(!m.is_shared(p));
        assert!(m.is_private_of(p, NodeId(3)));
        assert!(!m.is_private_of(p, NodeId(4)));
    }

    #[test]
    fn private_regions_do_not_overlap_across_nodes() {
        let m = AddressMap::new(16, 64);
        let last_of_0 = m.private(NodeId(0), 63);
        let first_of_1 = m.private(NodeId(1), 0);
        assert_eq!(first_of_1.0 - last_of_0.0, 1);
    }
}
