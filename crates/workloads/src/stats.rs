//! Workload characterization: static analysis of generated programs.
//!
//! The harness's Table I check validates the *dynamic* abort rate; these
//! statistics validate the *static* shape (footprints, sharing degree,
//! read/write mix) and power the workload-description tables in the docs.

use crate::op::{NodeProgram, TxOp, WorkItem};
use puno_sim::LineAddr;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Aggregate shape of a set of per-node programs.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ProgramStats {
    pub transactions: u64,
    pub mean_reads_per_tx: f64,
    pub mean_writes_per_tx: f64,
    pub mean_think_per_tx: f64,
    /// Distinct shared lines read, across all nodes.
    pub shared_lines_read: u64,
    /// Distinct shared lines written.
    pub shared_lines_written: u64,
    /// Mean number of distinct nodes whose transactions read each shared
    /// line that is written by anyone — the "readers per contended line"
    /// figure that drives false aborting.
    pub mean_readers_of_written_lines: f64,
    /// Fraction of transactional writes whose line is also in the same
    /// transaction's read set (read-modify-write).
    pub rmw_write_fraction: f64,
}

/// Characterize programs (one per node). `shared_limit` bounds the address
/// range considered shared (lines below it).
pub fn characterize(programs: &[NodeProgram], shared_limit: u64) -> ProgramStats {
    let mut stats = ProgramStats::default();
    let mut total_reads = 0u64;
    let mut total_writes = 0u64;
    let mut total_think = 0u64;
    let mut rmw_writes = 0u64;
    let mut read_lines: BTreeSet<LineAddr> = BTreeSet::new();
    let mut written_lines: BTreeSet<LineAddr> = BTreeSet::new();
    // line -> set of nodes that read it transactionally
    let mut readers: BTreeMap<LineAddr, BTreeSet<usize>> = BTreeMap::new();

    for (node, program) in programs.iter().enumerate() {
        for item in &program.items {
            let WorkItem::Transaction(tx) = item else {
                continue;
            };
            stats.transactions += 1;
            let mut tx_reads: BTreeSet<LineAddr> = BTreeSet::new();
            for op in &tx.ops {
                match *op {
                    TxOp::Read(a) => {
                        total_reads += 1;
                        if a.0 < shared_limit {
                            read_lines.insert(a);
                            readers.entry(a).or_default().insert(node);
                        }
                        tx_reads.insert(a);
                    }
                    TxOp::Write(a) => {
                        total_writes += 1;
                        if a.0 < shared_limit {
                            written_lines.insert(a);
                        }
                        if tx_reads.contains(&a) {
                            rmw_writes += 1;
                        }
                    }
                    TxOp::Think(c) => total_think += c,
                }
            }
        }
    }

    let n_tx = stats.transactions.max(1) as f64;
    stats.mean_reads_per_tx = total_reads as f64 / n_tx;
    stats.mean_writes_per_tx = total_writes as f64 / n_tx;
    stats.mean_think_per_tx = total_think as f64 / n_tx;
    stats.shared_lines_read = read_lines.len() as u64;
    stats.shared_lines_written = written_lines.len() as u64;
    stats.rmw_write_fraction = if total_writes == 0 {
        0.0
    } else {
        rmw_writes as f64 / total_writes as f64
    };
    let contended: Vec<usize> = written_lines
        .iter()
        .filter_map(|l| readers.get(l).map(|r| r.len()))
        .collect();
    stats.mean_readers_of_written_lines = if contended.is_empty() {
        0.0
    } else {
        contended.iter().sum::<usize>() as f64 / contended.len() as f64
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::generate_program;
    use crate::stamp::WorkloadId;
    use puno_sim::NodeId;

    fn programs(w: WorkloadId, nodes: u16) -> (Vec<NodeProgram>, u64) {
        let params = w.params().scaled(0.2);
        let progs = (0..nodes)
            .map(|i| generate_program(&params, NodeId(i), 11))
            .collect();
        (progs, params.shared_lines)
    }

    #[test]
    fn bayes_has_large_footprints_and_crowded_lines() {
        let (progs, shared) = programs(WorkloadId::Bayes, 16);
        let s = characterize(&progs, shared);
        assert!(s.mean_reads_per_tx > 15.0, "{}", s.mean_reads_per_tx);
        assert!(
            s.mean_readers_of_written_lines > 4.0,
            "written lines must be widely read-shared: {}",
            s.mean_readers_of_written_lines
        );
    }

    #[test]
    fn ssca2_is_sparse() {
        let (progs, shared) = programs(WorkloadId::Ssca2, 16);
        let s = characterize(&progs, shared);
        assert!(s.mean_reads_per_tx < 4.0);
        assert!(
            s.mean_readers_of_written_lines < 4.0,
            "{}",
            s.mean_readers_of_written_lines
        );
    }

    #[test]
    fn kmeans_is_rmw_dominated() {
        let (progs, shared) = programs(WorkloadId::Kmeans, 16);
        let s = characterize(&progs, shared);
        assert!(s.rmw_write_fraction > 0.8, "{}", s.rmw_write_fraction);
    }

    #[test]
    fn labyrinth_reads_the_whole_grid() {
        let (progs, shared) = programs(WorkloadId::Labyrinth, 16);
        let s = characterize(&progs, shared);
        // Scan of 96 strided lines + extra reads.
        assert!(s.mean_reads_per_tx > 90.0, "{}", s.mean_reads_per_tx);
        assert!(s.shared_lines_read >= 90);
    }

    #[test]
    fn contention_ranking_matches_table_one() {
        let crowd = |w| {
            let (progs, shared) = programs(w, 16);
            characterize(&progs, shared).mean_readers_of_written_lines
        };
        let intruder = crowd(WorkloadId::Intruder);
        let genome = crowd(WorkloadId::Genome);
        assert!(
            intruder > 2.0 * genome,
            "intruder {intruder} should dwarf genome {genome}"
        );
    }

    #[test]
    fn empty_programs_are_harmless() {
        let s = characterize(&[NodeProgram::default()], 100);
        assert_eq!(s.transactions, 0);
        assert_eq!(s.mean_readers_of_written_lines, 0.0);
    }
}
