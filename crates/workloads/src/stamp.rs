//! The eight STAMP-analogue workloads of Table I.
//!
//! Parameter choices encode each benchmark's published contention signature
//! (STAMP characterization + the paper's Table I abort rates). The
//! `expected_abort_band` on each row is deliberately wide: the harness's
//! characterization test asserts the *baseline* lands inside it, pinning the
//! high/low-contention split the paper's analysis depends on without
//! pretending to reproduce exact percentages from a different substrate.

use crate::params::{StaticTxParams, WorkloadParams};
use serde::{Deserialize, Serialize};

/// The benchmark suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WorkloadId {
    Bayes,
    Intruder,
    Labyrinth,
    Yada,
    Genome,
    Kmeans,
    Ssca2,
    Vacation,
}

impl WorkloadId {
    pub const ALL: [WorkloadId; 8] = [
        WorkloadId::Bayes,
        WorkloadId::Intruder,
        WorkloadId::Labyrinth,
        WorkloadId::Yada,
        WorkloadId::Genome,
        WorkloadId::Kmeans,
        WorkloadId::Ssca2,
        WorkloadId::Vacation,
    ];

    /// The paper's "high contention benchmarks" (the group over which the
    /// headline 61% abort / 32% traffic reductions are averaged).
    pub const HIGH_CONTENTION: [WorkloadId; 4] = [
        WorkloadId::Bayes,
        WorkloadId::Intruder,
        WorkloadId::Labyrinth,
        WorkloadId::Yada,
    ];

    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Bayes => "bayes",
            WorkloadId::Intruder => "intruder",
            WorkloadId::Labyrinth => "labyrinth",
            WorkloadId::Yada => "yada",
            WorkloadId::Genome => "genome",
            WorkloadId::Kmeans => "kmeans",
            WorkloadId::Ssca2 => "ssca2",
            WorkloadId::Vacation => "vacation",
        }
    }

    pub fn is_high_contention(self) -> bool {
        Self::HIGH_CONTENTION.contains(&self)
    }

    /// The synthetic parameterization reproducing this benchmark's
    /// contention signature.
    pub fn params(self) -> WorkloadParams {
        match self {
            // Bayes: learns Bayesian network structure; few static txs, very
            // long transactions with large read AND write sets over a small
            // shared structure (the network being learned). 97% abort.
            WorkloadId::Bayes => WorkloadParams {
                name: "bayes".into(),
                static_txs: vec![
                    StaticTxParams {
                        weight: 2.0,
                        reads: (18, 40),
                        writes: (3, 8),
                        rmw_fraction: 0.3,
                        read_shared_fraction: 0.9,
                        write_shared_fraction: 0.85,
                        think_per_op: 20,
                        scan_shared: 0,
                        lead_reads: 3,
                    },
                    StaticTxParams {
                        weight: 1.0,
                        reads: (26, 56),
                        writes: (5, 12),
                        rmw_fraction: 0.35,
                        read_shared_fraction: 0.9,
                        write_shared_fraction: 0.85,
                        think_per_op: 24,
                        scan_shared: 0,
                        lead_reads: 4,
                    },
                ],
                shared_lines: 192,
                zipf_theta: 0.4,
                private_lines_per_node: 64,
                tx_per_node: 36,
                inter_tx_think: 60,
                non_tx_accesses: 2,
            },
            // Intruder: network intrusion detection; short transactions
            // popping/pushing shared queues — RMW on a very hot, tiny
            // region. 78% abort.
            WorkloadId::Intruder => WorkloadParams {
                name: "intruder".into(),
                static_txs: vec![
                    // Queue pop: read-modify-write the head slots.
                    StaticTxParams {
                        weight: 3.0,
                        reads: (3, 6),
                        writes: (2, 4),
                        rmw_fraction: 0.85,
                        read_shared_fraction: 0.95,
                        write_shared_fraction: 0.9,
                        think_per_op: 5,
                        scan_shared: 0,
                        lead_reads: 2,
                    },
                    // Fragment reassembly: a bit wider.
                    StaticTxParams {
                        weight: 2.0,
                        reads: (5, 10),
                        writes: (3, 6),
                        rmw_fraction: 0.6,
                        read_shared_fraction: 0.9,
                        write_shared_fraction: 0.85,
                        think_per_op: 6,
                        scan_shared: 0,
                        lead_reads: 2,
                    },
                    // Detector step.
                    StaticTxParams {
                        weight: 1.0,
                        reads: (2, 4),
                        writes: (1, 2),
                        rmw_fraction: 0.8,
                        read_shared_fraction: 0.95,
                        write_shared_fraction: 0.95,
                        think_per_op: 4,
                        scan_shared: 0,
                        lead_reads: 1,
                    },
                ],
                shared_lines: 24,
                zipf_theta: 0.9,
                private_lines_per_node: 64,
                tx_per_node: 160,
                inter_tx_think: 40,
                non_tx_accesses: 2,
            },
            // Labyrinth: path routing in a shared 3-D grid; each transaction
            // reads the *whole* grid then writes the handful of cells on its
            // chosen path. 99% abort; the giant read set is what makes
            // directory blocking (Figure 12) and false aborting extreme.
            WorkloadId::Labyrinth => WorkloadParams {
                name: "labyrinth".into(),
                static_txs: vec![StaticTxParams {
                    weight: 1.0,
                    reads: (4, 8),
                    writes: (6, 14),
                    rmw_fraction: 0.9,
                    read_shared_fraction: 1.0,
                    write_shared_fraction: 1.0,
                    think_per_op: 2,
                    scan_shared: 96,
                    lead_reads: 0,
                }],
                shared_lines: 384, // 32x32x3 cells / 8 cells per 64B line
                zipf_theta: 0.0,   // paths are uniform over the grid
                private_lines_per_node: 64,
                tx_per_node: 16,
                inter_tx_think: 200,
                non_tx_accesses: 2,
            },
            // Yada: Delaunay mesh refinement; medium transactions re-
            // triangulating a neighborhood. 48% abort.
            WorkloadId::Yada => WorkloadParams {
                name: "yada".into(),
                static_txs: vec![
                    StaticTxParams {
                        weight: 3.0,
                        reads: (10, 22),
                        writes: (2, 5),
                        rmw_fraction: 0.35,
                        read_shared_fraction: 0.85,
                        write_shared_fraction: 0.7,
                        think_per_op: 9,
                        scan_shared: 0,
                        lead_reads: 2,
                    },
                    StaticTxParams {
                        weight: 1.0,
                        reads: (5, 10),
                        writes: (1, 3),
                        rmw_fraction: 0.4,
                        read_shared_fraction: 0.8,
                        write_shared_fraction: 0.7,
                        think_per_op: 7,
                        scan_shared: 0,
                        lead_reads: 1,
                    },
                ],
                shared_lines: 256,
                zipf_theta: 0.55,
                private_lines_per_node: 64,
                tx_per_node: 80,
                inter_tx_think: 80,
                non_tx_accesses: 2,
            },
            // Genome: gene sequencing; hash-set inserts of segments —
            // read-mostly, writes scattered over a large table. 1.3% abort.
            WorkloadId::Genome => WorkloadParams {
                name: "genome".into(),
                static_txs: vec![
                    StaticTxParams {
                        weight: 3.0,
                        reads: (3, 8),
                        writes: (1, 2),
                        rmw_fraction: 0.2,
                        read_shared_fraction: 0.8,
                        write_shared_fraction: 0.9,
                        think_per_op: 6,
                        scan_shared: 0,
                        lead_reads: 0,
                    },
                    StaticTxParams {
                        weight: 1.0,
                        reads: (2, 5),
                        writes: (1, 1),
                        rmw_fraction: 0.3,
                        read_shared_fraction: 0.7,
                        write_shared_fraction: 0.9,
                        think_per_op: 5,
                        scan_shared: 0,
                        lead_reads: 0,
                    },
                ],
                shared_lines: 4096,
                zipf_theta: 0.1,
                private_lines_per_node: 64,
                tx_per_node: 200,
                inter_tx_think: 60,
                non_tx_accesses: 2,
            },
            // Kmeans: clustering; tiny RMW transactions updating one of
            // many independent cluster centers. 7.4% abort; RMW-Pred's
            // best case.
            WorkloadId::Kmeans => WorkloadParams {
                name: "kmeans".into(),
                static_txs: vec![StaticTxParams {
                    weight: 1.0,
                    reads: (1, 3),
                    writes: (1, 2),
                    rmw_fraction: 0.95,
                    read_shared_fraction: 1.0,
                    write_shared_fraction: 1.0,
                    think_per_op: 4,
                    scan_shared: 0,
                    lead_reads: 0,
                }],
                shared_lines: 256, // the cluster centers
                zipf_theta: 0.2,
                private_lines_per_node: 64,
                tx_per_node: 300,
                inter_tx_think: 40,
                non_tx_accesses: 3,
            },
            // SSCA2: graph kernel; tiny transactions adding edges into a
            // huge array — conflicts nearly nonexistent. 0.3% abort.
            WorkloadId::Ssca2 => WorkloadParams {
                name: "ssca2".into(),
                static_txs: vec![StaticTxParams {
                    weight: 1.0,
                    reads: (1, 2),
                    writes: (1, 2),
                    rmw_fraction: 0.5,
                    read_shared_fraction: 1.0,
                    write_shared_fraction: 1.0,
                    think_per_op: 3,
                    scan_shared: 0,
                    lead_reads: 0,
                }],
                shared_lines: 8192,
                zipf_theta: 0.0,
                private_lines_per_node: 64,
                tx_per_node: 400,
                inter_tx_think: 30,
                non_tx_accesses: 3,
            },
            // Vacation: travel reservation system; tree lookups with
            // scattered updates, read-heavy. 38% abort; the workload where
            // RMW-Pred backfires (converts read-read sharing into
            // write-read conflicts).
            WorkloadId::Vacation => WorkloadParams {
                name: "vacation".into(),
                static_txs: vec![
                    // Reservation: many reads (tree walk), few writes.
                    StaticTxParams {
                        weight: 3.0,
                        reads: (10, 22),
                        writes: (2, 5),
                        rmw_fraction: 0.5,
                        read_shared_fraction: 0.9,
                        write_shared_fraction: 0.8,
                        think_per_op: 6,
                        scan_shared: 0,
                        lead_reads: 2,
                    },
                    // Customer update.
                    StaticTxParams {
                        weight: 1.0,
                        reads: (6, 12),
                        writes: (3, 7),
                        rmw_fraction: 0.5,
                        read_shared_fraction: 0.85,
                        write_shared_fraction: 0.8,
                        think_per_op: 7,
                        scan_shared: 0,
                        lead_reads: 2,
                    },
                ],
                shared_lines: 1024,
                zipf_theta: 0.55,
                private_lines_per_node: 64,
                tx_per_node: 120,
                inter_tx_think: 70,
                non_tx_accesses: 2,
            },
        }
    }
}

/// One row of the paper's Table I. Serialize-only: the `&'static str` input
/// description cannot be deserialized into, and nothing reads this back.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    pub workload: WorkloadId,
    /// The paper's benchmark input parameters (verbatim, for the table).
    pub paper_inputs: &'static str,
    /// The paper's measured abort rate.
    pub paper_abort_pct: f64,
    /// Band our baseline must land in for the contention split to hold.
    pub expected_abort_band: (f64, f64),
}

/// Table I contents.
pub fn table1_rows() -> Vec<Table1Row> {
    vec![
        Table1Row {
            workload: WorkloadId::Bayes,
            paper_inputs: "32 var, 1024 records, 2 edge/var",
            paper_abort_pct: 97.1,
            expected_abort_band: (60.0, 99.5),
        },
        Table1Row {
            workload: WorkloadId::Intruder,
            paper_inputs: "2k flow, 10 attack, 4 pkt/flow",
            paper_abort_pct: 77.6,
            expected_abort_band: (45.0, 95.0),
        },
        Table1Row {
            workload: WorkloadId::Labyrinth,
            paper_inputs: "32*32*3 maze, 96 paths",
            paper_abort_pct: 98.6,
            expected_abort_band: (60.0, 99.9),
        },
        Table1Row {
            workload: WorkloadId::Yada,
            paper_inputs: "1264 elements, min-angle 20",
            paper_abort_pct: 47.9,
            expected_abort_band: (25.0, 85.0),
        },
        Table1Row {
            workload: WorkloadId::Genome,
            paper_inputs: "32 var, 1024 records",
            paper_abort_pct: 1.3,
            expected_abort_band: (0.0, 12.0),
        },
        Table1Row {
            workload: WorkloadId::Kmeans,
            paper_inputs: "16K seg, 256 gene, 16 sample",
            paper_abort_pct: 7.4,
            expected_abort_band: (0.5, 25.0),
        },
        Table1Row {
            workload: WorkloadId::Ssca2,
            paper_inputs: "8k nodes, 3 len, 3 para edge",
            paper_abort_pct: 0.3,
            expected_abort_band: (0.0, 5.0),
        },
        Table1Row {
            workload: WorkloadId::Vacation,
            paper_inputs: "16K record, 4K req, 60% coverage",
            paper_abort_pct: 38.0,
            expected_abort_band: (15.0, 65.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_validate() {
        for w in WorkloadId::ALL {
            w.params().validate();
        }
    }

    #[test]
    fn table1_covers_all_workloads_once() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 8);
        for w in WorkloadId::ALL {
            assert_eq!(rows.iter().filter(|r| r.workload == w).count(), 1);
        }
    }

    #[test]
    fn high_contention_group_matches_paper() {
        assert!(WorkloadId::Bayes.is_high_contention());
        assert!(WorkloadId::Labyrinth.is_high_contention());
        assert!(!WorkloadId::Genome.is_high_contention());
        assert!(!WorkloadId::Vacation.is_high_contention());
    }

    #[test]
    fn contention_ordering_is_plausible() {
        // Shared-region pressure proxy: (hot-region smallness) x (write
        // volume). Labyrinth/bayes/intruder must exert far more pressure
        // per line than ssca2/genome.
        fn pressure(w: WorkloadId) -> f64 {
            let p = w.params();
            let writes: f64 = p
                .static_txs
                .iter()
                .map(|t| (t.writes.0 + t.writes.1) as f64 / 2.0 * t.write_shared_fraction)
                .sum::<f64>()
                / p.static_txs.len() as f64;
            writes * p.tx_per_node as f64 / p.shared_lines as f64
        }
        assert!(pressure(WorkloadId::Intruder) > 10.0 * pressure(WorkloadId::Ssca2));
        assert!(pressure(WorkloadId::Bayes) > 5.0 * pressure(WorkloadId::Genome));
    }

    #[test]
    fn paper_abort_rates_recorded_faithfully() {
        let rows = table1_rows();
        let bayes = rows
            .iter()
            .find(|r| r.workload == WorkloadId::Bayes)
            .unwrap();
        assert!((bayes.paper_abort_pct - 97.1).abs() < 1e-9);
        for r in &rows {
            assert!(r.expected_abort_band.0 < r.expected_abort_band.1);
            assert!(
                r.paper_abort_pct >= r.expected_abort_band.0 * 0.0 && r.paper_abort_pct <= 100.0
            );
        }
    }
}
