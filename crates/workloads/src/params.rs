//! Workload parameterization.

use serde::{Deserialize, Serialize};

/// Shape of one static transaction (a `TX_BEGIN`/`TX_END` site).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StaticTxParams {
    /// Relative frequency of this static transaction in the dynamic mix.
    pub weight: f64,
    /// Uniform range of transactional reads per instance (inclusive).
    pub reads: (u32, u32),
    /// Uniform range of transactional writes per instance (inclusive).
    pub writes: (u32, u32),
    /// Fraction of writes that hit a line the instance already read
    /// (read-modify-write upgrades — RMW-Pred's happy path and the classic
    /// conflict amplifier).
    pub rmw_fraction: f64,
    /// Fraction of reads that target the shared region (rest go private).
    pub read_shared_fraction: f64,
    /// Fraction of writes that target the shared region.
    pub write_shared_fraction: f64,
    /// Mean think cycles between consecutive operations (geometric).
    pub think_per_op: u64,
    /// Labyrinth-style global scan: read this many evenly-strided shared
    /// lines at transaction start (0 = none).
    pub scan_shared: u32,
    /// Hot reads issued back-to-back at the very start of the transaction
    /// with no think time — the "read the shared structure's entry point
    /// first" pattern (queue head, tree root, adtree index) that makes
    /// restarted victims re-enter the sharer lists almost immediately.
    pub lead_reads: u32,
}

impl StaticTxParams {
    /// A small, tame default useful in tests.
    pub fn simple() -> Self {
        Self {
            weight: 1.0,
            reads: (2, 4),
            writes: (1, 2),
            rmw_fraction: 0.5,
            read_shared_fraction: 1.0,
            write_shared_fraction: 1.0,
            think_per_op: 5,
            scan_shared: 0,
            lead_reads: 0,
        }
    }
}

/// Full description of a synthetic workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadParams {
    pub name: String,
    pub static_txs: Vec<StaticTxParams>,
    /// Size of the transactionally shared region, in lines.
    pub shared_lines: u64,
    /// Zipf exponent for shared-line selection (0 = uniform; ~1 = heavily
    /// skewed hot spot).
    pub zipf_theta: f64,
    /// Private lines per node (non-transactional working set).
    pub private_lines_per_node: u64,
    /// Dynamic transactions each node commits before finishing.
    pub tx_per_node: u32,
    /// Mean non-transactional think cycles between transactions.
    pub inter_tx_think: u64,
    /// Non-transactional private accesses between transactions.
    pub non_tx_accesses: u32,
}

impl WorkloadParams {
    /// Scale the run length (used by quick tests and the figure harness's
    /// `--scale` knob) without changing the contention signature.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.tx_per_node = ((self.tx_per_node as f64 * factor).round() as u32).max(1);
        self
    }

    pub fn validate(&self) {
        assert!(
            !self.static_txs.is_empty(),
            "{}: no static transactions",
            self.name
        );
        assert!(self.shared_lines > 0);
        for (i, st) in self.static_txs.iter().enumerate() {
            assert!(
                st.weight > 0.0,
                "{}: static tx {i} has zero weight",
                self.name
            );
            assert!(st.reads.0 <= st.reads.1);
            assert!(st.writes.0 <= st.writes.1);
            assert!((0.0..=1.0).contains(&st.rmw_fraction));
            assert!((0.0..=1.0).contains(&st.read_shared_fraction));
            assert!((0.0..=1.0).contains(&st.write_shared_fraction));
            assert!(
                (st.scan_shared as u64) <= self.shared_lines,
                "{}: scan larger than shared region",
                self.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadParams {
        WorkloadParams {
            name: "test".into(),
            static_txs: vec![StaticTxParams::simple()],
            shared_lines: 64,
            zipf_theta: 0.5,
            private_lines_per_node: 32,
            tx_per_node: 100,
            inter_tx_think: 50,
            non_tx_accesses: 2,
        }
    }

    #[test]
    fn validate_accepts_sane_params() {
        base().validate();
    }

    #[test]
    #[should_panic(expected = "scan larger")]
    fn validate_rejects_oversized_scan() {
        let mut p = base();
        p.static_txs[0].scan_shared = 1000;
        p.validate();
    }

    #[test]
    fn scaling_changes_only_tx_count() {
        let p = base().scaled(0.25);
        assert_eq!(p.tx_per_node, 25);
        let p = base().scaled(0.001);
        assert_eq!(p.tx_per_node, 1, "floors at one transaction");
    }
}
