//! Shared plumbing for the per-table/per-figure regenerator binaries.
//!
//! Every binary accepts `[scale] [seed]` positional arguments (defaults
//! `0.5` and `1`): `scale` multiplies each workload's per-node transaction
//! count, so `1.0` is a paper-sized run and `0.1` a quick smoke run. Results
//! are printed as aligned text tables in the shape of the paper's artifact
//! and, when `PUNO_JSON_DIR` is set, also saved as JSON for downstream
//! plotting.

use puno_harness::report::{FigureMetric, NormalizedFigure};
use puno_harness::sweep::{sweep, sweep_seeds, SweepResult};
use puno_harness::Mechanism;
use puno_workloads::WorkloadId;
use std::path::PathBuf;

/// Common CLI arguments.
#[derive(Clone, Copy, Debug)]
pub struct Args {
    pub scale: f64,
    pub seed: u64,
    /// Repetitions: seeds `seed..seed + nseeds` are swept and figures
    /// geomean the per-seed normalized ratios.
    pub nseeds: u64,
}

pub fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    Args {
        scale: argv.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.5),
        seed: argv.get(2).and_then(|s| s.parse().ok()).unwrap_or(1),
        nseeds: argv.get(3).and_then(|s| s.parse().ok()).unwrap_or(1).max(1),
    }
}

/// Run the full workload x mechanism sweep for every requested seed.
pub fn full_sweep(args: Args) -> Vec<Vec<SweepResult>> {
    let seeds: Vec<u64> = (args.seed..args.seed + args.nseeds).collect();
    sweep_seeds(&WorkloadId::ALL, &Mechanism::ALL, &seeds, args.scale)
}

/// Run the baseline only (for the characterization artifacts: Table I,
/// Figures 2 and 3).
pub fn baseline_sweep(args: Args) -> Vec<SweepResult> {
    sweep(
        &WorkloadId::ALL,
        &[Mechanism::Baseline],
        args.seed,
        args.scale,
    )
}

/// Build, print and (optionally) save one normalized figure, aggregating
/// across seeds when more than one sweep is supplied.
pub fn emit_figure(name: &str, metric: FigureMetric, per_seed: &[Vec<SweepResult>]) {
    let fig = NormalizedFigure::build_multi(metric, per_seed, &WorkloadId::ALL, &Mechanism::ALL);
    println!("== {name}: {} ==", metric.name());
    print!("{}", fig.render());
    save_json(name, &figure_json(&fig));
}

fn figure_json(fig: &NormalizedFigure) -> serde_json::Value {
    serde_json::json!({
        "metric": fig.metric.name(),
        "mechanisms": fig.mechanisms.iter().map(|m| m.name()).collect::<Vec<_>>(),
        "workloads": fig.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
        "values": fig.values,
    })
}

/// Save a JSON artifact when `PUNO_JSON_DIR` is set.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let Ok(dir) = std::env::var("PUNO_JSON_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("could not create {dir:?}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_are_sane() {
        let a = parse_args();
        assert!(a.scale > 0.0);
        let _ = full_sweep; // type-check the public API
        let _ = baseline_sweep;
        let _ = emit_figure;
    }
}
