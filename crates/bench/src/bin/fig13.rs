//! Figure 13: execution time (cycles to complete the fixed offered load),
//! normalized to the baseline.

use puno_bench::{emit_figure, full_sweep, parse_args};
use puno_harness::report::FigureMetric;

fn main() {
    let args = parse_args();
    let results = full_sweep(args);
    emit_figure("fig13", FigureMetric::ExecutionTime, &results);
    println!("Paper: PUNO improves execution time by 12% in high-contention");
    println!("workloads (8% across all); random backoff over-serializes");
    println!("Labyrinth; RMW-Pred suffers a 1.83x slowdown in high contention.");
}
