//! Figure 14: the G/D ratio — good (committed) transaction effort over
//! discarded (aborted) effort — normalized to the baseline. Larger is
//! better.

use puno_bench::{emit_figure, full_sweep, parse_args};
use puno_harness::report::FigureMetric;

fn main() {
    let args = parse_args();
    let results = full_sweep(args);
    emit_figure("fig14", FigureMetric::GdRatio, &results);
    println!("Paper: PUNO's G/D ratio exceeds baseline / random backoff /");
    println!("RMW-Pred by 1.65x / 1.24x / 2.11x on average.");
}
