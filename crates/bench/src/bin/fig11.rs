//! Figure 11: on-chip network traffic in router traversals by all flits,
//! normalized to the baseline.

use puno_bench::{emit_figure, full_sweep, parse_args};
use puno_harness::report::FigureMetric;

fn main() {
    let args = parse_args();
    let results = full_sweep(args);
    emit_figure("fig11", FigureMetric::NetworkTraffic, &results);
    println!("Paper: PUNO eliminates 33% of traffic in high-contention workloads");
    println!("(17% across all) via unicast, throttled polling, and fewer aborts.");
}
