//! Figure 12: cycles directory entries spend in a blocking transient state
//! while servicing transactional GETX, normalized to the baseline.

use puno_bench::{emit_figure, full_sweep, parse_args};
use puno_harness::report::FigureMetric;

fn main() {
    let args = parse_args();
    let results = full_sweep(args);
    emit_figure("fig12", FigureMetric::DirectoryBlocking, &results);
    println!("Paper: PUNO eliminates 18% of blocking (42% in Labyrinth, whose");
    println!("whole-grid read sets make writers wait on many sharers).");
}
