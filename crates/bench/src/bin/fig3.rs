//! Figure 3: distribution of the number of transactions aborted
//! unnecessarily per false-aborting request (baseline).

use puno_bench::{baseline_sweep, parse_args, save_json};
use puno_harness::sweep::find_expect;
use puno_harness::Mechanism;
use puno_workloads::WorkloadId;

fn main() {
    let args = parse_args();
    let results = baseline_sweep(args);
    println!(
        "Figure 3 — victims per false-aborting request (baseline, scale {}, seed {})",
        args.scale, args.seed
    );
    let mut json = Vec::new();
    for &w in &WorkloadId::ALL {
        let m = find_expect(&results, w, Mechanism::Baseline);
        let h = &m.oracle.victims_per_episode;
        if h.count() == 0 {
            println!("{:<11} (no false aborting)", w.name());
            continue;
        }
        print!("{:<11}", w.name());
        let mut dist = Vec::new();
        for victims in 1..=8usize {
            let frac = h.fraction(victims) * 100.0;
            print!(" {victims}:{frac:>5.1}%");
            dist.push(frac);
        }
        let tail: f64 = (9..17).map(|v| h.fraction(v)).sum::<f64>() * 100.0
            + h.overflow() as f64 / h.count() as f64 * 100.0;
        println!("  9+:{tail:>5.1}%  mean {:.2}", h.mean());
        json.push(serde_json::json!({
            "workload": w.name(),
            "pct_by_victims_1_to_8": dist,
            "tail_pct": tail,
            "mean": h.mean(),
        }));
    }
    println!("\nThe long tail mirrors the paper's observation that a single nacked");
    println!("request can disrupt many concurrent transactions.");
    save_json("fig3", &serde_json::Value::Array(json));
}
