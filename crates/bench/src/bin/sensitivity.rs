//! Design-space sensitivity sweeps over PUNO's tunables, on the
//! high-contention group. Complements `ablation` with full curves.
//!
//! Usage: sensitivity [scale] [seed]

use puno_bench::{parse_args, save_json};
use puno_harness::sensitivity::{
    sweep_notification_cap, sweep_rollover_factor, sweep_validity_threshold, SensitivityPoint,
};
use puno_workloads::WorkloadId;

fn print_points(title: &str, pts: &[SensitivityPoint]) {
    println!("\n== {title} ==");
    println!(
        "{:<16}{:>10}{:>12}{:>12}{:>10}{:>9}{:>10}",
        "point", "aborts", "cycles", "traffic", "unicasts", "acc %", "victims"
    );
    for p in pts {
        println!(
            "{:<16}{:>10}{:>12}{:>12}{:>10}{:>9.1}{:>10}",
            p.label,
            p.aborts,
            p.cycles,
            p.traffic,
            p.unicasts,
            p.accuracy() * 100.0,
            p.false_victims
        );
    }
}

fn main() {
    let args = parse_args();
    let hc = WorkloadId::HIGH_CONTENTION;
    println!(
        "PUNO sensitivity on the high-contention group (scale {}, seed {})",
        args.scale, args.seed
    );

    let rollover = sweep_rollover_factor(&[1, 2, 4, 8], &hc, args.scale, args.seed);
    print_points("rollover factor (priority freshness window)", &rollover);

    let validity = sweep_validity_threshold(&[1, 2, 3], &hc, args.scale, args.seed);
    print_points("validity threshold (trust bar for prediction)", &validity);

    let ncap = sweep_notification_cap(&[100, 400, 1600, u64::MAX], &hc, args.scale, args.seed);
    print_points("notification backoff cap", &ncap);

    save_json(
        "sensitivity",
        &serde_json::json!({
            "rollover_factor": rollover,
            "validity_threshold": validity,
            "notification_cap": ncap,
        }),
    );
}
