//! Table III: VLSI area and power overhead of the PUNO structures,
//! from the calibrated analytic SRAM model, normalized against the Sun
//! Rock per-core figures.

use puno_bench::save_json;
use puno_vlsi::table3;

fn main() {
    let t = table3();
    println!("Table III — area and power overhead (65 nm, 2.3 GHz, 0.9 V)");
    println!(
        "{:<14}{:>12}{:>12}{:>14}{:>12}",
        "component", "area um^2", "power mW", "paper um^2", "paper mW"
    );
    for row in &t.rows {
        println!(
            "{:<14}{:>12.0}{:>12.2}{:>14.0}{:>12.2}",
            row.component, row.area_um2, row.power_mw, row.paper_area_um2, row.paper_power_mw
        );
    }
    println!(
        "{:<14}{:>12.0}{:>12.2}",
        "overall", t.total_area_um2, t.total_power_mw
    );
    println!(
        "overhead vs one Rock core: area {:.2}%  power {:.2}%  (paper: 0.41% / 0.31%)",
        t.area_overhead_pct, t.power_overhead_pct
    );
    save_json("table3", &serde_json::to_value(&t).unwrap());
}
