//! Figure 10: transaction aborts under the four mechanisms, normalized to
//! the baseline.

use puno_bench::{emit_figure, full_sweep, parse_args};
use puno_harness::report::FigureMetric;

fn main() {
    let args = parse_args();
    let results = full_sweep(args);
    emit_figure("fig10", FigureMetric::Aborts, &results);
    println!("Paper: PUNO reduces aborts by 61% on average in high-contention");
    println!("workloads (43% across all), beats random backoff by 17%, and");
    println!("RMW-Pred helps only the low-contention kmeans/ssca2.");
}
