//! Table I: benchmark input parameters and baseline abort rates,
//! paper-reported vs measured on this simulator.

use puno_bench::{baseline_sweep, parse_args, save_json};
use puno_harness::sweep::find_expect;
use puno_harness::Mechanism;
use puno_workloads::table1_rows;

fn main() {
    let args = parse_args();
    let results = baseline_sweep(args);
    println!(
        "Table I — benchmark inputs and abort rates (scale {}, seed {})",
        args.scale, args.seed
    );
    println!(
        "{:<11}{:<36}{:>10}{:>10}  {:>6}",
        "benchmark", "paper input parameters", "paper %", "ours %", "band"
    );
    let mut rows_json = Vec::new();
    for row in table1_rows() {
        let m = find_expect(&results, row.workload, Mechanism::Baseline);
        let rate = m.htm.abort_rate() * 100.0;
        let in_band = rate >= row.expected_abort_band.0 && rate <= row.expected_abort_band.1;
        println!(
            "{:<11}{:<36}{:>10.1}{:>10.1}  {:>6}",
            row.workload.name(),
            row.paper_inputs,
            row.paper_abort_pct,
            rate,
            if in_band { "ok" } else { "MISS" }
        );
        rows_json.push(serde_json::json!({
            "workload": row.workload.name(),
            "paper_inputs": row.paper_inputs,
            "paper_abort_pct": row.paper_abort_pct,
            "measured_abort_pct": rate,
            "in_band": in_band,
        }));
    }
    save_json("table1", &serde_json::Value::Array(rows_json));
}
