//! Table II: the simulated system configuration.

use puno_harness::{Mechanism, SystemConfig};

fn main() {
    let c = SystemConfig::paper(Mechanism::Puno);
    println!("Table II — system configuration");
    let rows: Vec<(&str, String)> = vec![
        (
            "Core",
            format!("{} in-order cores (SPARC-class), single clock domain", c.nodes()),
        ),
        (
            "L1 Cache",
            format!(
                "{} KB, {}-way associative, write-back, 1-cycle",
                c.l1.sets * c.l1.ways * 64 / 1024,
                c.l1.ways
            ),
        ),
        (
            "L2 Cache",
            format!("8 MB shared, static NUCA banks, {}-cycle latency", c.dir.l2_latency),
        ),
        (
            "Coherence",
            "MESI protocol, static cache bank directory (blocking)".to_string(),
        ),
        (
            "Memory",
            format!("{}-cycle latency", c.dir.mem_latency),
        ),
        (
            "Network",
            format!(
                "{}x{} 2D mesh, XY DOR, VC flow control, {}-stage routers",
                c.mesh.width, c.mesh.height, c.noc.pipeline_depth
            ),
        ),
        (
            "HTM",
            format!(
                "eager version mgmt + eager conflict detection, timestamp policy, {}-cycle nack backoff",
                c.backoff.fixed_nack
            ),
        ),
        (
            "PUNO",
            format!(
                "{}-entry P-Buffer/bank, {}-entry TxLB/node, {}-cycle prediction",
                c.puno.pbuffer_entries, c.puno.txlb_entries, c.puno.decision_latency
            ),
        ),
    ];
    for (k, v) in rows {
        println!("{k:<11} {v}");
    }
}
