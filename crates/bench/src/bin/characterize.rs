//! Workload characterization report: the static program shape of every
//! STAMP-analogue generator next to its measured baseline behaviour —
//! Table I, Figure 2 and Figure 3 in one place, plus the NoC hotspot skew
//! that the aggregate figures hide.
//!
//! Usage: characterize [scale] [seed]

use puno_bench::{parse_args, save_json};
use puno_harness::{run_workload, Mechanism};
use puno_sim::NodeId;
use puno_workloads::{characterize, generate_program, WorkloadId};

fn main() {
    let args = parse_args();
    println!(
        "workload characterization (scale {}, seed {})\n",
        args.scale, args.seed
    );
    println!(
        "{:<11}{:>7}{:>8}{:>8}{:>10}{:>8}{:>9}{:>9}{:>10}{:>8}",
        "workload",
        "rd/tx",
        "wr/tx",
        "rmw%",
        "readers*",
        "abort%",
        "false%",
        "vict/ep",
        "linkskew",
        "Mcycles"
    );
    let mut json = Vec::new();
    for w in WorkloadId::ALL {
        let params = w.params().scaled(args.scale);
        let programs: Vec<_> = (0..16)
            .map(|i| generate_program(&params, NodeId(i), args.seed))
            .collect();
        let shape = characterize(&programs, params.shared_lines);
        let run = run_workload(Mechanism::Baseline, &params, args.seed);
        println!(
            "{:<11}{:>7.1}{:>8.1}{:>7.0}%{:>10.1}{:>7.1}%{:>8.1}%{:>9.2}{:>10.2}{:>8.2}",
            w.name(),
            shape.mean_reads_per_tx,
            shape.mean_writes_per_tx,
            shape.rmw_write_fraction * 100.0,
            shape.mean_readers_of_written_lines,
            run.htm.abort_rate() * 100.0,
            run.oracle.false_abort_fraction() * 100.0,
            run.oracle.victims_per_episode.mean(),
            run.traffic_link_skew,
            run.cycles as f64 / 1e6,
        );
        json.push(serde_json::json!({
            "workload": w.name(),
            "shape": shape,
            "abort_rate": run.htm.abort_rate(),
            "false_abort_fraction": run.oracle.false_abort_fraction(),
            "link_skew": run.traffic_link_skew,
            "cycles": run.cycles,
        }));
    }
    println!("\n* mean distinct reader nodes per written shared line");
    save_json("characterize", &serde_json::Value::Array(json));
}
