//! Figure 2: percentage of transactional GETX requests that trigger false
//! aborts, measured on the baseline HTM.

use puno_bench::{baseline_sweep, parse_args, save_json};
use puno_harness::sweep::find_expect;
use puno_harness::Mechanism;
use puno_workloads::WorkloadId;

fn main() {
    let args = parse_args();
    let results = baseline_sweep(args);
    println!(
        "Figure 2 — transactional GETX requests incurring false aborting (baseline, scale {}, seed {})",
        args.scale, args.seed
    );
    println!(
        "{:<11}{:>12}{:>14}{:>12}",
        "workload", "false %", "nacked %", "episodes"
    );
    let mut json = Vec::new();
    let mut sum = 0.0;
    for &w in &WorkloadId::ALL {
        let m = find_expect(&results, w, Mechanism::Baseline);
        let frac = m.oracle.false_abort_fraction() * 100.0;
        sum += frac;
        println!(
            "{:<11}{:>11.1}%{:>13.1}%{:>12}",
            w.name(),
            frac,
            m.oracle.nack_fraction() * 100.0,
            m.oracle.tx_getx_episodes
        );
        json.push(serde_json::json!({
            "workload": w.name(),
            "false_abort_pct": frac,
            "nacked_pct": m.oracle.nack_fraction() * 100.0,
        }));
    }
    println!(
        "{:<11}{:>11.1}%   (paper reports 41% average)",
        "average",
        sum / 8.0
    );
    save_json("fig2", &serde_json::Value::Array(json));
}
