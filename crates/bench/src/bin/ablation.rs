//! Ablation study over PUNO's design choices (the DESIGN.md A1/A2 index):
//!
//! * full PUNO vs unicast-only (no notification) vs shared-state-only
//!   prediction (no owner-state probes);
//! * validity threshold 2 (the paper's rule) vs 3 (live-transaction
//!   discrimination);
//! * rollover factor 1 / 2 / 4 (priority freshness window);
//! * misprediction feedback on/off (stale priorities never invalidated).
//!
//! Run on the high-contention group, where the mechanism matters.

use puno_bench::{parse_args, save_json};
use puno_harness::run::run_with_config;
use puno_harness::{Mechanism, SystemConfig};
use puno_workloads::WorkloadId;

struct Variant {
    name: &'static str,
    config: SystemConfig,
}

fn variants() -> Vec<Variant> {
    let base = SystemConfig::paper(Mechanism::Puno);
    let mut v = vec![Variant {
        name: "puno-full",
        config: base,
    }];
    {
        let mut c = base;
        c.puno.notification_enabled = false;
        v.push(Variant {
            name: "unicast-only",
            config: c,
        });
    }
    {
        let mut c = base;
        c.puno.predict_owner_state = false;
        v.push(Variant {
            name: "shared-state-only",
            config: c,
        });
    }
    {
        let mut c = base;
        c.puno.validity_threshold = 3;
        v.push(Variant {
            name: "validity-3",
            config: c,
        });
    }
    for factor in [1u64, 4] {
        let mut c = base;
        c.puno.rollover_factor = factor;
        v.push(Variant {
            name: if factor == 1 {
                "rollover-1x"
            } else {
                "rollover-4x"
            },
            config: c,
        });
    }
    {
        let mut c = base;
        c.puno.age_gate_factor = 2;
        v.push(Variant {
            name: "age-gate-2x",
            config: c,
        });
    }
    {
        // §VI future-work extension: finish-time wake-up hints.
        let mut c = base;
        c.puno.wakeup_hints = true;
        v.push(Variant {
            name: "wakeup-hints",
            config: c,
        });
    }
    v.push(Variant {
        name: "baseline",
        config: SystemConfig::paper(Mechanism::Baseline),
    });
    v
}

fn main() {
    let args = parse_args();
    println!(
        "PUNO ablations on the high-contention group (scale {}, seed {})",
        args.scale, args.seed
    );
    println!(
        "{:<18}{:>10}{:>12}{:>12}{:>10}{:>10}",
        "variant", "aborts", "cycles", "traffic", "unicasts", "acc %"
    );
    let mut json = Vec::new();
    for variant in variants() {
        let mut aborts = 0u64;
        let mut cycles = 0u64;
        let mut traffic = 0u64;
        let mut unicasts = 0u64;
        let mut mispred = 0u64;
        for &w in &WorkloadId::HIGH_CONTENTION {
            let m = run_with_config(variant.config, &w.params().scaled(args.scale), args.seed);
            aborts += m.htm.aborts.get();
            cycles += m.cycles;
            traffic += m.traffic_router_traversals;
            unicasts += m.puno.unicasts.get();
            mispred += m.puno.mispredictions.get();
        }
        let acc = if unicasts > 0 {
            (1.0 - mispred as f64 / unicasts as f64) * 100.0
        } else {
            f64::NAN
        };
        println!(
            "{:<18}{:>10}{:>12}{:>12}{:>10}{:>10.1}",
            variant.name, aborts, cycles, traffic, unicasts, acc
        );
        json.push(serde_json::json!({
            "variant": variant.name,
            "aborts": aborts,
            "cycles": cycles,
            "traffic": traffic,
            "unicasts": unicasts,
            "accuracy_pct": acc,
        }));
    }
    save_json("ablation", &serde_json::Value::Array(json));
}
