//! Criterion microbenchmarks of the simulation substrate: the event queue,
//! the NoC, the directory state machine, and the PUNO predictor structures.
//! These pin the cost of the building blocks so regressions in simulator
//! throughput are caught separately from changes in simulated behaviour.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use puno_coherence::directory::{DirConfig, DirectoryBank};
use puno_coherence::msg::{CoherenceMsg, TxInfo};
use puno_coherence::predictor::NullPredictor;
use puno_coherence::sharers::SharerSet;
use puno_core::{PBuffer, PunoConfig, PunoPredictor, TxLengthBuffer};
use puno_noc::{Mesh, Network, NocConfig, VirtualNetwork, CONTROL_FLITS};
use puno_sim::{EventQueue, LineAddr, NodeId, SimRng, StaticTxId, Timestamp, TxId};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_at(i % 97, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc/uniform_random_256_packets", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut net: Network<u32> = Network::new(Mesh::paper(), NocConfig::default());
            for i in 0..256u32 {
                let src = NodeId(rng.gen_range(16) as u16);
                let dst = NodeId(rng.gen_range(16) as u16);
                net.inject(0, src, dst, VirtualNetwork::Request, CONTROL_FLITS, i);
            }
            let mut now = 0;
            let mut delivered = 0;
            while !net.is_idle() {
                delivered += net.step(now).len();
                now += 1;
            }
            black_box(delivered)
        })
    });
}

fn bench_directory(c: &mut Criterion) {
    c.bench_function("directory/gets_getx_unblock_cycle", |b| {
        b.iter(|| {
            let mut bank = DirectoryBank::new(NodeId(0), DirConfig::default());
            let mut p = NullPredictor;
            let info = TxInfo {
                tx: TxId(1),
                timestamp: Timestamp(1),
                static_tx: StaticTxId(0),
                avg_len_hint: 100,
            };
            // First touch: memory fetch, then unblock, then a GETX cycle.
            bank.handle(
                0,
                CoherenceMsg::Gets {
                    addr: LineAddr(1),
                    requester: NodeId(1),
                    tx: Some(info),
                },
                &mut p,
            );
            bank.mem_ready(200, LineAddr(1), &mut p);
            bank.handle(
                220,
                CoherenceMsg::Unblock {
                    addr: LineAddr(1),
                    requester: NodeId(1),
                    success: true,
                    nackers: SharerSet::EMPTY,
                    mp_node: None,
                    tx: None,
                },
                &mut p,
            );
            black_box(bank.holders_of(LineAddr(1)))
        })
    });
}

fn bench_pbuffer(c: &mut Criterion) {
    c.bench_function("pbuffer/update_and_ud_scan", |b| {
        let mut pb = PBuffer::new(16);
        for i in 0..16u16 {
            pb.update(NodeId(i), Timestamp(i as u64 * 10));
        }
        let holders: Vec<NodeId> = (0..16).map(NodeId).collect();
        b.iter(|| {
            pb.update(NodeId(3), Timestamp(black_box(42)));
            black_box(pb.highest_priority_among(holders.iter().copied()))
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("puno_predictor/predict_unicast", |b| {
        let mut p = PunoPredictor::new(PunoConfig::default());
        use puno_coherence::UnicastPredictor;
        let info = |ts| TxInfo {
            tx: TxId(ts),
            timestamp: Timestamp(ts),
            static_tx: StaticTxId(0),
            avg_len_hint: 500,
        };
        for i in 0..16u16 {
            p.observe_request(0, NodeId(i), &info(i as u64 * 100 + 10));
        }
        let holders: SharerSet = (1..8u16).map(NodeId).collect();
        b.iter(|| {
            black_box(p.predict_unicast(
                black_box(50),
                LineAddr(9),
                NodeId(0),
                &info(5000),
                holders,
                false,
            ))
        })
    });
}

fn bench_txlb(c: &mut Criterion) {
    c.bench_function("txlb/record_and_estimate", |b| {
        let mut txlb = TxLengthBuffer::paper();
        let mut i = 0u32;
        b.iter(|| {
            txlb.record_commit(StaticTxId(i % 8), 100 + (i as u64 % 50));
            i += 1;
            black_box(txlb.estimate(StaticTxId(i % 8)))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_noc,
    bench_directory,
    bench_pbuffer,
    bench_predictor,
    bench_txlb
);
criterion_main!(benches);
